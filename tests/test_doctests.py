"""Run the executable doctests embedded in module/class docstrings.

Most docstring examples are marked ``# doctest: +SKIP`` (they need a
pre-built graph); the ones below are self-contained and double as
regression tests for the documented behaviour.
"""

import doctest

import pytest

import repro
import repro.hin.graph
import repro.hin.schema


@pytest.mark.parametrize(
    "module",
    [repro, repro.hin.schema, repro.hin.graph],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )
    assert results.attempted > 0, (
        f"{module.__name__} was expected to carry runnable doctests"
    )
