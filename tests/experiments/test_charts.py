"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.experiments.charts import bar_chart, grouped_bar_chart
from repro.hin.errors import ReportError


class TestBarChart:
    def test_bars_scale_to_max(self):
        text = bar_chart([("a", 1.0), ("b", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title(self):
        text = bar_chart([("a", 1.0)], title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_values_printed(self):
        text = bar_chart([("a", 0.125)])
        assert "0.125" in text

    def test_empty_data(self):
        assert "(no data)" in bar_chart([])

    def test_all_zero_values(self):
        text = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in text

    def test_negative_values_render_empty(self):
        text = bar_chart([("a", -1.0), ("b", 2.0)])
        lines = text.splitlines()
        assert "#" not in lines[0]

    def test_bad_width(self):
        with pytest.raises(ReportError):
            bar_chart([("a", 1.0)], width=0)

    def test_labels_aligned(self):
        text = bar_chart([("short", 1.0), ("a-much-longer-label", 0.5)])
        lines = text.splitlines()
        first_bar = lines[0].index("#")
        second_bar = lines[1].index("#")
        assert first_bar == second_bar


class TestGroupedBarChart:
    def test_shared_scale_across_series(self):
        text = grouped_bar_chart(
            ["g1"], {"a": [1.0], "b": [0.5]}, width=10
        )
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_group_headers_present(self):
        text = grouped_bar_chart(
            ["KDD", "SIGMOD"], {"HeteSim": [1.0, 2.0], "PCRW": [2.0, 3.0]}
        )
        assert "KDD" in text and "SIGMOD" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReportError):
            grouped_bar_chart(["g1", "g2"], {"a": [1.0]})

    def test_empty_groups(self):
        assert "(no data)" in grouped_bar_chart([], {"a": []})

    def test_bad_width(self):
        with pytest.raises(ReportError):
            grouped_bar_chart(["g"], {"a": [1.0]}, width=-1)
