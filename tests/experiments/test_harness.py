"""Tests for the harness plumbing: shared data, the report generator,
and the registry's significance annotations."""

import pytest

from repro.experiments import data as shared_data
from repro.experiments.registry import all_experiments, get_experiment
from repro.experiments.report import generate_report


class TestSharedData:
    def test_networks_memoised_per_seed(self):
        assert shared_data.acm(0) is shared_data.acm(0)
        assert shared_data.dblp(0) is shared_data.dblp(0)

    def test_different_seeds_different_networks(self):
        assert shared_data.acm(0) is not shared_data.acm(1)

    def test_engine_shares_network(self):
        network, engine = shared_data.acm_engine(0)
        assert engine.graph is network.graph
        # Same tuple on repeat calls (warm caches preserved).
        assert shared_data.acm_engine(0)[1] is engine


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(seed=0)

    def test_covers_every_table_and_figure(self, report):
        for token in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
            "Table 6", "Table 7", "Fig. 5", "Fig. 6", "Fig. 7",
            "complexity",
        ):
            assert token in report, f"report missing {token}"

    def test_paper_and_measured_lines_paired(self, report):
        assert report.count("**Paper") == report.count("**Measured")

    def test_mentions_substitution_policy(self, report):
        assert "synthetic" in report
        assert "DESIGN.md" in report

    def test_seed_recorded(self):
        assert "seed 3" in generate_report(seed=3)


class TestSignificanceAnnotations:
    def test_table5_reports_sign_test(self):
        result = get_experiment("table5")(seed=0)
        assert 0 <= result.data["sign_test_p"] <= 1
        assert "sign test" in result.text

    def test_fig6_reports_sign_test(self):
        result = get_experiment("fig6")(seed=0)
        assert 0 <= result.data["sign_test_p"] <= 1

    def test_table5_unanimity_is_significant(self):
        result = get_experiment("table5")(seed=0)
        if result.data["wins"] == 9:
            assert result.data["sign_test_p"] < 0.05
