"""Focused tests on the experiment modules' internal helpers."""

import numpy as np
import pytest

from repro.experiments import data as shared_data


class TestFig6Internals:
    def test_pcrw_forward_scores_match_matrix_column(self):
        from repro.baselines.pcrw import pcrw_matrix
        from repro.experiments.fig6_rank_difference import (
            _pcrw_forward_scores,
        )

        network, engine = shared_data.acm_engine(0)
        graph = network.graph
        forward = engine.path("APVC")
        matrix = pcrw_matrix(graph, forward)
        kdd = graph.node_index("conference", "KDD")
        scores = dict(_pcrw_forward_scores(graph, forward, "KDD"))
        for i, author in enumerate(graph.node_keys("author")):
            assert scores[author] == pytest.approx(matrix[i, kdd])


class TestTable6Internals:
    def test_clustering_nmi_uses_labeled_subset_only(self):
        from repro.experiments.table6_clustering import _clustering_nmi

        # A block similarity where only half the objects carry labels.
        keys = [f"x{i}" for i in range(8)]
        labels = {keys[i]: i // 2 for i in range(4)}  # 4 labelled, 2 areas
        similarity = np.eye(8)
        similarity[:2, :2] = 1.0
        similarity[2:4, 2:4] = 1.0
        nmi = _clustering_nmi(similarity, keys, labels, runs=2)
        assert 0 <= nmi <= 1

    def test_perfect_blocks_give_perfect_nmi(self):
        from repro.experiments.table6_clustering import _clustering_nmi

        keys = [f"x{i}" for i in range(8)]
        labels = {key: i // 4 for i, key in enumerate(keys)}
        similarity = np.zeros((8, 8))
        similarity[:4, :4] = 1.0
        similarity[4:, 4:] = 1.0
        # Two clusters planted but the harness asks NCut for 4: use a
        # four-block matrix instead for an exact match.
        similarity = np.zeros((8, 8))
        for block in range(4):
            similarity[
                2 * block: 2 * block + 2, 2 * block: 2 * block + 2
            ] = 1.0
        labels = {key: i // 2 for i, key in enumerate(keys)}
        nmi = _clustering_nmi(similarity, keys, labels, runs=2)
        assert nmi == pytest.approx(1.0)


class TestComplexityInternals:
    def test_three_type_schema_shape(self):
        from repro.experiments.complexity import _three_type_schema

        schema = _three_type_schema()
        assert [t.code for t in schema.object_types] == ["A", "B", "C"]
        assert schema.path("ABCBA").is_symmetric

    def test_timer_returns_positive(self):
        from repro.experiments.complexity import _time

        elapsed = _time(lambda: sum(range(1000)), repeats=2)
        assert elapsed > 0


class TestTable3Internals:
    def test_pairs_for_covers_roles(self):
        from repro.experiments.table3_expert_finding import pairs_for

        network = shared_data.acm(0)
        pairs = pairs_for(network)
        roles = [role for role, _, _ in pairs]
        assert roles.count("influential") == 4
        assert roles.count("young") == 2
        for _, author, conference in pairs:
            assert network.graph.has_node("author", author)
            assert network.graph.has_node("conference", conference)
