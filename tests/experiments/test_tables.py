"""Unit tests for the text-table renderer and the CLI runner."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.tables import format_score, render_table
from repro.hin.errors import ReportError


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["A", "Bee"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "Bee" in lines[0]
        assert lines[1].startswith("-")
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["A"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_non_string_cells(self):
        text = render_table(["Rank", "Score"], [[1, 0.5]])
        assert "1" in text and "0.5" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReportError):
            render_table(["A", "B"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestFormatScore:
    def test_default_four_digits(self):
        assert format_score(0.123456) == "0.1235"

    def test_custom_digits(self):
        assert format_score(3.14159, digits=2) == "3.14"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed in" in out

    def test_seed_flag(self, capsys):
        assert main(["table1", "--seed", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out
