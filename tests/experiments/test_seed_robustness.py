"""Seed robustness: the paper's shapes must not depend on one lucky seed.

Runs the sharpest shape assertions of each experiment on two additional
dataset seeds.  (The full shape battery runs on seed 0 in
``test_experiments.py``; here we check the load-bearing claims only, to
keep runtime bounded.)
"""

import pytest

from repro.experiments.registry import get_experiment

SEEDS = [1, 2]


@pytest.fixture(scope="module", params=SEEDS)
def seed(request):
    return request.param


class TestShapeStability:
    def test_table1_home_conference_first(self, seed):
        result = get_experiment("table1")(seed=seed)
        assert result.data["profiles"]["APVC"][0][0] == "KDD"

    def test_table3_pcrw_conflict(self, seed):
        records = get_experiment("table3")(seed=seed).data["records"]
        young = [r for r in records if r["role"] == "young"]
        stars = [r for r in records if r["role"] == "influential"]
        assert all(
            y["pcrw_apvc"] >= max(s["pcrw_apvc"] for s in stars)
            for y in young
        )

    def test_table4_pcrw_self_maximum_violation(self, seed):
        result = get_experiment("table4")(seed=seed)
        assert result.data["pcrw_self_rank"] > 1
        assert result.data["hetesim"][0][1] == pytest.approx(1.0)

    def test_table5_hetesim_wins_on_average(self, seed):
        # Per-conference wins get noisy on small synthetic networks at
        # unlucky seeds; the robust form of the claim is the mean margin
        # (the full 9/9 pattern is asserted at seed 0).
        records = get_experiment("table5")(seed=seed).data["records"]
        mean_hetesim = sum(r["hetesim"] for r in records) / len(records)
        mean_pcrw = sum(r["pcrw"] for r in records) / len(records)
        assert mean_hetesim > mean_pcrw
        assert get_experiment("table5")(seed=seed).data["wins"] >= 5

    def test_table7_group_author_jump(self, seed):
        result = get_experiment("table7")(seed=seed)
        assert result.data["group_rank_cvpapa"] < result.data[
            "group_rank_cvpa"
        ]

    def test_fig6_hetesim_lower_on_most(self, seed):
        result = get_experiment("fig6")(seed=seed)
        assert result.data["wins"] >= 9

    def test_fig7_peers_hug_hub(self, seed):
        cosines = get_experiment("fig7")(seed=seed).data["cosines_to_hub"]
        peer = max(cosines["peer-author-1"], cosines["peer-author-2"])
        broad = max(cosines["broad-author-1"], cosines["broad-author-2"])
        assert peer > broad
