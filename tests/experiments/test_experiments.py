"""Integration tests: every experiment runs and reproduces the paper's
qualitative shapes (see DESIGN.md, 'Expected shapes')."""

import pytest

from repro.experiments.registry import all_experiments, get_experiment
from repro.hin.errors import QueryError


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (seed 0) and cache the results."""
    return {
        experiment_id: get_experiment(experiment_id)(seed=0)
        for experiment_id in all_experiments()
    }


class TestRegistry:
    def test_all_experiments_registered(self):
        assert all_experiments() == [
            "citations", "complexity", "fig5", "fig6", "fig7",
            "measures", "robustness",
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7",
        ]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(QueryError):
            get_experiment("table99")

    def test_every_result_has_text_and_data(self, results):
        for experiment_id, result in results.items():
            assert result.experiment_id == experiment_id
            assert result.title
            assert result.text
            assert result.data


class TestTable1Shape:
    def test_home_conference_first(self, results):
        profiles = results["table1"].data["profiles"]
        assert profiles["APVC"][0][0] == "KDD"

    def test_data_conferences_follow(self, results):
        top5 = [key for key, _ in results["table1"].data["profiles"]["APVC"]]
        assert set(top5[1:]) <= {"SIGMOD", "VLDB", "WWW", "CIKM", "SIGIR"}

    def test_signature_terms_surface(self, results):
        from repro.datasets.acm import HUB_TERMS

        terms = [key for key, _ in results["table1"].data["profiles"]["APT"]]
        assert set(terms) <= set(HUB_TERMS)

    def test_database_subject_first(self, results):
        subjects = results["table1"].data["profiles"]["APS"]
        assert subjects[0][0].startswith("H.2")

    def test_self_tops_coauthors_with_score_one(self, results):
        coauthors = results["table1"].data["profiles"]["APA"]
        author = results["table1"].data["author"]
        assert coauthors[0][0] == author
        assert coauthors[0][1] == pytest.approx(1.0)

    def test_students_among_top_coauthors(self, results):
        coauthors = [k for k, _ in results["table1"].data["profiles"]["APA"]]
        assert any(k.startswith("student-") for k in coauthors[1:])


class TestTable2Shape:
    def test_conference_similar_to_itself(self, results):
        similar = results["table2"].data["profiles"]["CVPAPVC"]
        assert similar[0][0] == "KDD"
        assert similar[0][1] == pytest.approx(1.0)

    def test_similar_conferences_share_data_area(self, results):
        similar = [k for k, _ in results["table2"].data["profiles"]["CVPAPVC"]]
        assert set(similar[1:]) <= {"SIGMOD", "VLDB", "WWW", "CIKM", "SIGIR"}

    def test_top_author_is_heavy_kdd_publisher(self, results):
        authors = [k for k, _ in results["table2"].data["profiles"]["CVPA"]]
        assert authors[0] == "KDD-star"

    def test_subjects_database_first(self, results):
        subjects = results["table2"].data["profiles"]["CVPS"]
        assert subjects[0][0].startswith("H.2")


class TestTable3Shape:
    def test_hetesim_symmetric_across_directions(self, results):
        for record in results["table3"].data["records"]:
            assert record["hetesim"] == pytest.approx(
                record["hetesim_reverse"], abs=1e-12
            )

    def test_influential_scores_similar(self, results):
        stars = [
            r["hetesim"]
            for r in results["table3"].data["records"]
            if r["role"] == "influential"
        ]
        assert max(stars) / min(stars) < 2.0

    def test_young_scores_lower_but_nonzero(self, results):
        records = results["table3"].data["records"]
        min_star = min(
            r["hetesim"] for r in records if r["role"] == "influential"
        )
        for record in records:
            if record["role"] == "young":
                assert 0 < record["hetesim"] < min_star

    def test_pcrw_directions_conflict_for_young(self, results):
        """Young authors top the forward column yet trail backward."""
        records = results["table3"].data["records"]
        young = [r for r in records if r["role"] == "young"]
        stars = [r for r in records if r["role"] == "influential"]
        assert all(
            y["pcrw_apvc"] >= max(s["pcrw_apvc"] for s in stars)
            for y in young
        )
        assert all(
            y["pcrw_cvpa"] <= max(s["pcrw_cvpa"] for s in stars)
            for y in young
        )


class TestTable4Shape:
    def test_hetesim_and_pathsim_self_first(self, results):
        data = results["table4"].data
        assert data["hetesim"][0][0] == data["author"]
        assert data["hetesim"][0][1] == pytest.approx(1.0)
        assert data["pathsim"][0][0] == data["author"]
        assert data["pathsim"][0][1] == pytest.approx(1.0)

    def test_pcrw_violates_self_maximum(self, results):
        data = results["table4"].data
        assert data["pcrw"][0][0] != data["author"]
        assert data["pcrw_self_rank"] > 1

    def test_hetesim_prefers_distribution_peers(self, results):
        top = [k for k, _ in results["table4"].data["hetesim"][1:4]]
        assert "peer-author-1" in top and "peer-author-2" in top

    def test_pathsim_prefers_high_volume_authors(self, results):
        top = [k for k, _ in results["table4"].data["pathsim"][1:8]]
        assert any(k.startswith("broad-author") or k.startswith("kdd-senior")
                   for k in top)

    def test_pcrw_tops_broad_authors(self, results):
        top2 = [k for k, _ in results["table4"].data["pcrw"][:2]]
        assert set(top2) == {"broad-author-1", "broad-author-2"}


class TestTable5Shape:
    def test_nine_conferences(self, results):
        assert len(results["table5"].data["records"]) == 9

    def test_hetesim_wins_on_most(self, results):
        assert results["table5"].data["wins"] >= 8

    def test_auc_well_above_chance(self, results):
        for record in results["table5"].data["records"]:
            assert record["hetesim"] > 0.7
            assert record["pcrw"] > 0.7


class TestTable6Shape:
    def test_three_tasks(self, results):
        assert set(results["table6"].data["records"]) == {
            "venue", "author", "paper",
        }

    def test_hetesim_at_least_pathsim_on_authors_and_papers(self, results):
        records = results["table6"].data["records"]
        assert records["author"]["hetesim"] >= records["author"]["pathsim"] - 1e-9
        assert records["paper"]["hetesim"] >= records["paper"]["pathsim"]

    def test_paper_clustering_is_hardest(self, results):
        records = results["table6"].data["records"]
        assert records["paper"]["hetesim"] < records["venue"]["hetesim"]
        assert records["paper"]["hetesim"] < records["author"]["hetesim"]

    def test_venue_clustering_near_perfect(self, results):
        records = results["table6"].data["records"]
        assert records["venue"]["hetesim"] > 0.9


class TestTable7Shape:
    def test_group_author_jumps_under_coauthor_path(self, results):
        data = results["table7"].data
        assert data["group_rank_cvpapa"] < data["group_rank_cvpa"]
        assert data["group_rank_cvpapa"] <= 3

    def test_heavy_publisher_tops_cvpa(self, results):
        assert results["table7"].data["cvpa"][0][0] == "KDD-star"


class TestFig5Shape:
    def test_raw_matrix_matches_paper(self, results):
        import numpy as np

        raw = np.asarray(results["fig5"].data["raw"])
        expected = np.array(
            [
                [1 / 2, 1 / 4, 0.0, 0.0],
                [0.0, 1 / 6, 1 / 3, 1 / 6],
                [0.0, 0.0, 0.0, 1 / 2],
            ]
        )
        np.testing.assert_allclose(raw, expected)

    def test_normalisation_fixes_self_relatedness(self, results):
        data = results["fig5"].data
        assert data["raw_self_below_one"] > 0
        assert data["normalized_self_below_one"] == 0

    def test_a2_raw_self_is_one_third(self, results):
        """The paper's headline complaint: raw(a2, a2) = 0.33."""
        assert results["fig5"].data["raw_a2_self"] == pytest.approx(1 / 3)


class TestFig6Shape:
    def test_fourteen_conferences(self, results):
        assert len(results["fig6"].data["records"]) == 14

    def test_hetesim_lower_on_most(self, results):
        assert results["fig6"].data["wins"] >= 10


class TestFig7Shape:
    def test_distributions_sum_to_one(self, results):
        for author, dist in results["fig7"].data["distributions"].items():
            assert sum(dist) == pytest.approx(1.0, abs=1e-9), author

    def test_peers_closest_to_hub(self, results):
        cosines = results["fig7"].data["cosines_to_hub"]
        peer_best = max(cosines["peer-author-1"], cosines["peer-author-2"])
        broad_best = max(
            cosines["broad-author-1"], cosines["broad-author-2"]
        )
        assert peer_best > broad_best


class TestRobustnessShape:
    def test_three_signal_levels(self, results):
        assert len(results["robustness"].data["records"]) == 3

    def test_auc_ordering_noise_stable(self, results):
        assert results["robustness"].data["auc_stable"]

    def test_quality_degrades_with_signal(self, results):
        records = results["robustness"].data["records"]
        by_signal = sorted(records, key=lambda r: r["signal"])
        assert by_signal[0]["auc_hetesim"] < by_signal[-1]["auc_hetesim"]


class TestCitationsShape:
    def test_symmetry_across_citation_directions(self, results):
        assert results["citations"].data["symmetry_error"] < 1e-10

    def test_three_rankings_reported(self, results):
        assert len(results["citations"].data["rankings"]) == 3

    def test_citation_semantics_differ_from_copublication(self, results):
        rankings = results["citations"].data["rankings"]
        citing = [k for k, _ in rankings["citing"]]
        copub = [k for k, _ in rankings["co-publication (APVCVPA)"]]
        assert citing != copub


class TestComplexityShape:
    def test_simrank_grows_faster(self, results):
        scaling = results["complexity"].data["scaling"]
        ratios = [row["ratio"] for row in scaling]
        assert ratios[-1] > ratios[0]

    def test_materialisation_speeds_up_queries(self, results):
        material = results["complexity"].data["materialization"]
        assert material["warm_s"] < material["cold_s"]


class TestMeasuresShape:
    def test_every_registered_measure_ranked(self, results):
        from repro.core.measures import available_measures

        rankings = results["measures"].data["rankings"]
        assert set(rankings) == set(available_measures())

    def test_hetesim_and_pathsim_rank_query_author_first(self, results):
        data = results["measures"].data
        for name in ("hetesim", "pathsim"):
            assert data["rankings"][name][0][0] == data["author"]

    def test_pcrw_violates_self_maximum(self, results):
        data = results["measures"].data
        assert data["rankings"]["pcrw"][0][0] != data["author"]

    def test_reachprob_matches_pcrw(self, results):
        rankings = results["measures"].data["rankings"]
        assert rankings["reachprob"] == rankings["pcrw"]

    def test_hetesim_overlap_is_reference(self, results):
        assert results["measures"].data["overlaps"]["hetesim"] == 10
