"""Tests for the synthetic DBLP four-area generator."""

import pytest

from repro.datasets.dblp import FOUR_AREAS, make_dblp_four_area


class TestStructure:
    def test_twenty_conferences(self, dblp):
        assert dblp.graph.num_nodes("conference") == 20
        assert len(dblp.conferences) == 20

    def test_four_areas_of_five(self):
        assert len(FOUR_AREAS) == 4
        for confs in FOUR_AREAS.values():
            assert len(confs) == 5

    def test_schema_types(self, dblp):
        names = {t.name for t in dblp.graph.schema.object_types}
        assert names == {"author", "paper", "conference", "term"}

    def test_every_paper_has_conference_author_terms(self, dblp):
        graph = dblp.graph
        for paper in graph.node_keys("paper")[:40]:
            assert len(graph.out_neighbors("published_in", paper)) == 1
            assert graph.in_neighbors("writes", paper)
            assert graph.out_neighbors("contains", paper)


class TestLabels:
    def test_all_conferences_labelled(self, dblp):
        assert set(dblp.conference_labels) == set(
            dblp.graph.node_keys("conference")
        )

    def test_all_authors_labelled(self, dblp):
        assert set(dblp.author_labels) == set(dblp.graph.node_keys("author"))

    def test_paper_label_subset(self, dblp):
        assert 0 < len(dblp.paper_labels) < dblp.graph.num_nodes("paper")
        for paper in dblp.paper_labels:
            assert dblp.graph.has_node("paper", paper)

    def test_labels_in_range(self, dblp):
        for label in dblp.conference_labels.values():
            assert 0 <= label < 4
        assert set(dblp.conference_labels.values()) == {0, 1, 2, 3}

    def test_paper_labels_match_conference_area(self, dblp):
        graph = dblp.graph
        for paper, label in list(dblp.paper_labels.items())[:20]:
            conf = graph.out_neighbors("published_in", paper)[0][0]
            assert dblp.conference_labels[conf] == label

    def test_area_names_align_with_labels(self, dblp):
        assert len(dblp.area_names) == 4
        for conf, label in dblp.conference_labels.items():
            area = dblp.area_names[label]
            assert conf in FOUR_AREAS[area]


class TestSignal:
    def test_authors_publish_mostly_at_home(self, dblp):
        """The planted within-area signal the AUC/NMI tasks rely on."""
        graph = dblp.graph
        home, away = 0, 0
        for author in graph.node_keys("author"):
            area = dblp.author_labels[author]
            for paper, _ in graph.out_neighbors("writes", author):
                conf = graph.out_neighbors("published_in", paper)[0][0]
                if dblp.conference_labels[conf] == area:
                    home += 1
                else:
                    away += 1
        assert home > away

    def test_deterministic(self):
        kwargs = dict(
            seed=5, authors_per_area=10, papers_per_conference=8,
            labeled_papers_per_area=4,
        )
        first = make_dblp_four_area(**kwargs)
        second = make_dblp_four_area(**kwargs)
        assert first.graph.num_edges() == second.graph.num_edges()
        assert first.author_labels == second.author_labels
