"""Unit tests for the paper's reconstructed toy networks."""

import pytest

from repro.datasets.toy import fig4_network, fig5_network


class TestFig4:
    def test_sizes(self, fig4):
        assert fig4.num_nodes("author") == 3
        assert fig4.num_nodes("paper") == 4
        assert fig4.num_nodes("conference") == 2

    def test_tom_wrote_p1_p2(self, fig4):
        papers = {k for k, _ in fig4.out_neighbors("writes", "Tom")}
        assert papers == {"p1", "p2"}

    def test_kdd_papers(self, fig4):
        papers = {k for k, _ in fig4.in_neighbors("published_in", "KDD")}
        assert papers == {"p1", "p2"}

    def test_mary_bridges_conferences(self, fig4):
        papers = {k for k, _ in fig4.out_neighbors("writes", "Mary")}
        venues = set()
        for paper in papers:
            venues.update(
                k for k, _ in fig4.out_neighbors("published_in", paper)
            )
        assert venues == {"KDD", "SIGMOD"}

    def test_fresh_instance_per_call(self):
        first = fig4_network()
        second = fig4_network()
        assert first is not second


class TestFig5:
    def test_sizes(self, fig5):
        assert fig5.num_nodes("a") == 3
        assert fig5.num_nodes("b") == 4
        assert fig5.num_edges("r") == 6

    def test_b3_links_only_a2(self, fig5):
        sources = {k for k, _ in fig5.in_neighbors("r", "b3")}
        assert sources == {"a2"}

    def test_a2_links_three_objects(self, fig5):
        targets = {k for k, _ in fig5.out_neighbors("r", "a2")}
        assert targets == {"b2", "b3", "b4"}

    def test_schema_is_single_relation(self, fig5):
        assert len(fig5.schema.relations) == 1
        assert fig5.schema.is_heterogeneous  # two object types
