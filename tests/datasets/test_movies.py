"""Tests for the synthetic movie-network generator."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.datasets.movies import GENRES, make_movie_network


@pytest.fixture(scope="module")
def movies():
    return make_movie_network(
        seed=0, users_per_genre=8, movies_per_genre=6, watches_per_user=6
    )


class TestStructure:
    def test_genre_count(self, movies):
        assert movies.graph.num_nodes("genre") == len(GENRES)

    def test_every_movie_has_genre_and_director(self, movies):
        graph = movies.graph
        for movie in graph.node_keys("movie"):
            assert len(graph.out_neighbors("has_genre", movie)) == 1
            assert len(graph.out_neighbors("directed_by", movie)) == 1

    def test_every_user_watches(self, movies):
        graph = movies.graph
        for user in graph.node_keys("user"):
            assert graph.out_neighbors("watched", user)

    def test_labels_cover_all_users_and_movies(self, movies):
        assert set(movies.user_genre) == set(movies.graph.node_keys("user"))
        assert set(movies.movie_genre) == set(
            movies.graph.node_keys("movie")
        )

    def test_deterministic(self):
        kwargs = dict(seed=3, users_per_genre=4, movies_per_genre=4)
        first = make_movie_network(**kwargs)
        second = make_movie_network(**kwargs)
        assert first.graph.num_edges() == second.graph.num_edges()


class TestPlantedSignal:
    def test_users_prefer_their_genre(self, movies):
        """HeteSim over UMG recovers the planted taste for most users."""
        engine = HeteSimEngine(movies.graph)
        correct = 0
        users = movies.graph.node_keys("user")
        for user in users:
            top_genre = engine.top_k(user, "UMG", k=1)[0][0]
            if top_genre == movies.user_genre[user]:
                correct += 1
        assert correct / len(users) > 0.8

    def test_low_fidelity_weakens_signal(self):
        noisy = make_movie_network(
            seed=0, users_per_genre=8, movies_per_genre=6,
            taste_fidelity=0.25,
        )
        engine = HeteSimEngine(noisy.graph)
        users = noisy.graph.node_keys("user")
        correct = sum(
            1
            for user in users
            if engine.top_k(user, "UMG", k=1)[0][0] == noisy.user_genre[user]
        )
        assert correct / len(users) < 0.8
