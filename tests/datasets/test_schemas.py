"""Tests for the Fig. 3 schemas: every paper path must parse."""

import pytest

from repro.datasets.schemas import (
    acm_schema,
    bipartite_schema,
    dblp_schema,
    toy_apc_schema,
)

#: Every compact path string the paper uses on the ACM dataset.
ACM_PAPER_PATHS = [
    "APVC", "APT", "APS", "APA",
    "CVPA", "CVPAF", "CVPS", "CVPAPVC",
    "APVCVPA", "CVPAPA",
]

#: Every compact path string the paper uses on the DBLP dataset.
DBLP_PAPER_PATHS = ["CPA", "CPAPC", "APCPA", "PAPCPAP"]


class TestAcmSchema:
    @pytest.mark.parametrize("spec", ACM_PAPER_PATHS)
    def test_paper_path_parses(self, spec):
        schema = acm_schema()
        path = schema.path(spec)
        assert path.code() == spec

    def test_seven_types(self):
        assert len(acm_schema().object_types) == 7

    def test_six_relations(self):
        assert len(acm_schema().relations) == 6

    def test_symmetric_paper_paths(self):
        schema = acm_schema()
        assert schema.path("APVCVPA").is_symmetric
        assert schema.path("APA").is_symmetric
        assert not schema.path("APVC").is_symmetric


class TestDblpSchema:
    @pytest.mark.parametrize("spec", DBLP_PAPER_PATHS)
    def test_paper_path_parses(self, spec):
        schema = dblp_schema()
        path = schema.path(spec)
        assert path.code() == spec

    def test_four_types(self):
        assert len(dblp_schema().object_types) == 4

    def test_clustering_paths_symmetric(self):
        schema = dblp_schema()
        for spec in ("CPAPC", "APCPA", "PAPCPAP"):
            assert schema.path(spec).is_symmetric


class TestSmallSchemas:
    def test_toy_apc(self):
        schema = toy_apc_schema()
        assert schema.path("APC").length == 2

    def test_bipartite(self):
        schema = bipartite_schema()
        assert schema.path("AB").length == 1
        assert schema.path("ABA").is_symmetric
