"""Tests for the synthetic ACM-like generator and its planted structure."""

import pytest

from repro.datasets.acm import (
    AREAS,
    CONFERENCES,
    PERSONAS,
    make_acm_network,
)


class TestStructure:
    def test_fourteen_conferences(self, acm):
        assert len(acm.conferences) == 14
        assert acm.graph.num_nodes("conference") == 14

    def test_schema_types(self, acm):
        names = {t.name for t in acm.graph.schema.object_types}
        assert names == {
            "author", "paper", "venue", "conference",
            "term", "subject", "affiliation",
        }

    def test_each_conference_has_venues(self, acm):
        for conf in acm.conferences:
            venues = acm.graph.in_neighbors("belongs_to", conf)
            assert len(venues) >= 1

    def test_every_paper_has_one_venue(self, acm):
        graph = acm.graph
        for paper in graph.node_keys("paper"):
            assert len(graph.out_neighbors("published_in", paper)) == 1

    def test_every_paper_has_authors_terms_subject(self, acm):
        graph = acm.graph
        for paper in graph.node_keys("paper")[:50]:
            assert graph.in_neighbors("writes", paper)
            assert graph.out_neighbors("contains", paper)
            assert graph.out_neighbors("has_subject", paper)

    def test_every_author_has_affiliation(self, acm):
        graph = acm.graph
        for author in graph.node_keys("author"):
            assert len(graph.out_neighbors("affiliated_with", author)) >= 1

    def test_area_partition_covers_conferences(self):
        assert set(CONFERENCES) == {
            conf for confs in AREAS.values() for conf in confs
        }
        assert len(CONFERENCES) == 14


class TestPersonas:
    def test_all_personas_exist(self, acm):
        for role, author in PERSONAS.items():
            assert acm.graph.has_node("author", author), role

    def test_hub_dominates_kdd(self, acm):
        hub = acm.personas["hub_author"]
        counts = acm.publication_counts[hub]
        assert counts["KDD"] == max(
            pubs.get("KDD", 0) for pubs in acm.publication_counts.values()
        )

    def test_young_authors_publish_only_at_home(self, acm):
        for role, conf in (("young_sigir", "SIGIR"), ("young_sigcomm", "SIGCOMM")):
            author = acm.personas[role]
            counts = acm.publication_counts[author]
            assert set(counts) == {conf}

    def test_broad_authors_publish_widely(self, acm):
        counts = acm.publication_counts[acm.personas["broad_author_1"]]
        assert len(counts) >= 6

    def test_peer_distribution_mimics_hub(self, acm):
        peer = acm.publication_counts[acm.personas["peer_author_1"]]
        assert max(peer, key=peer.get) == "KDD"


class TestGroundTruth:
    def test_counts_match_graph_degrees(self, acm):
        graph = acm.graph
        for author, counts in list(acm.publication_counts.items())[:20]:
            assert sum(counts.values()) == len(
                graph.out_neighbors("writes", author)
            )

    def test_ranking_sorted_by_count(self, acm):
        ranking = acm.ground_truth_ranking("KDD", top_n=50)
        counts = [
            acm.publication_counts[a].get("KDD", 0) for a in ranking
        ]
        assert counts == sorted(counts, reverse=True)

    def test_ranking_excludes_non_publishers(self, acm):
        ranking = acm.ground_truth_ranking("KDD")
        for author in ranking:
            assert acm.publication_counts[author].get("KDD", 0) > 0

    def test_ranking_respects_top_n(self, acm):
        assert len(acm.ground_truth_ranking("KDD", top_n=5)) == 5


class TestDeterminism:
    def test_same_seed_same_network(self):
        first = make_acm_network(
            seed=3, venues_per_conference=2, papers_per_venue=5,
            authors_per_community=5,
        )
        second = make_acm_network(
            seed=3, venues_per_conference=2, papers_per_venue=5,
            authors_per_community=5,
        )
        assert first.graph.num_edges() == second.graph.num_edges()
        assert first.publication_counts == second.publication_counts

    def test_different_seed_differs(self):
        first = make_acm_network(
            seed=1, venues_per_conference=2, papers_per_venue=5,
            authors_per_community=5,
        )
        second = make_acm_network(
            seed=2, venues_per_conference=2, papers_per_venue=5,
            authors_per_community=5,
        )
        assert first.publication_counts != second.publication_counts


class TestHomeConferenceLabels:
    def test_every_author_labelled(self, acm):
        assert set(acm.home_conference) == set(
            acm.graph.node_keys("author")
        )

    def test_community_members_home_matches_name(self, acm):
        for author in acm.graph.node_keys("author"):
            if ".auth" in author:
                conf = author.split(".auth")[0]
                assert acm.home_conference[author] == conf

    def test_author_area_resolves(self, acm):
        assert acm.author_area("KDD-star") == "data"
        assert acm.author_area("SOSP-star") == "systems"


class TestCitations:
    @pytest.fixture(scope="class")
    def cited(self):
        return make_acm_network(
            seed=0, venues_per_conference=2, papers_per_venue=8,
            authors_per_community=6, with_citations=True,
        )

    def test_default_has_no_citations(self, acm):
        assert not acm.graph.schema.has_relation("cites")

    def test_citation_edges_exist(self, cited):
        assert cited.graph.num_edges("cites") > 0

    def test_no_self_citations(self, cited):
        adjacency = cited.graph.adjacency("cites")
        assert adjacency.diagonal().sum() == 0

    def test_citations_mostly_within_area(self, cited):
        graph = cited.graph

        def paper_area(paper):
            venue = graph.out_neighbors("published_in", paper)[0][0]
            conf = graph.out_neighbors("belongs_to", venue)[0][0]
            return cited.area_of[conf]
        coo = graph.adjacency("cites").tocoo()
        same = other = 0
        papers = graph.node_keys("paper")
        for i, j in zip(coo.row[:400], coo.col[:400]):
            if paper_area(papers[int(i)]) == paper_area(papers[int(j)]):
                same += 1
            else:
                other += 1
        assert same > other

    def test_compact_pp_path_is_ambiguous(self, cited):
        """'PP' could be cites or cites^-1: the parser must refuse."""
        from repro.hin.errors import PathError

        with pytest.raises(PathError):
            cited.graph.schema.path("APPA")

    def test_relation_name_path_works(self, cited):
        path = cited.graph.schema.path(["writes", "cites", "writes^-1"])
        assert path.source_type.name == "author"
        assert path.target_type.name == "author"

    def test_citation_relevance_symmetric(self, cited):
        """Property 3 holds on the odd-length citation path too."""
        from repro.core.hetesim import hetesim_matrix
        import numpy as np

        graph = cited.graph
        path = graph.schema.path(["writes", "cites", "writes^-1"])
        forward = hetesim_matrix(graph, path)
        backward = hetesim_matrix(graph, path.reverse())
        np.testing.assert_allclose(forward, backward.T, atol=1e-10)

    def test_experiment_shapes_unaffected(self, cited):
        """Adding citations must not disturb the APVC-based results."""
        from repro.core.engine import HeteSimEngine

        engine = HeteSimEngine(cited.graph)
        assert engine.top_k("KDD-star", "APVC", k=1)[0][0] == "KDD"
