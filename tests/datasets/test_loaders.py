"""Tests for the four-area text-format loader/writer."""

import numpy as np
import pytest

from repro.datasets.dblp import make_dblp_four_area
from repro.datasets.loaders import load_dblp_four_area, save_dblp_four_area
from repro.hin.errors import GraphError


@pytest.fixture()
def format_dir(tmp_path):
    """A tiny hand-written four-area directory."""
    (tmp_path / "author.txt").write_text(
        "0\tTom\n1\tMary\n", encoding="utf-8"
    )
    (tmp_path / "paper.txt").write_text(
        "10\tGraph Mining\n11\tIR Basics\n", encoding="utf-8"
    )
    (tmp_path / "conf.txt").write_text("20\tKDD\n", encoding="utf-8")
    (tmp_path / "term.txt").write_text(
        "30\tmining\n31\tgraphs\n", encoding="utf-8"
    )
    (tmp_path / "paper_author.txt").write_text(
        "10\t0\n10\t1\n11\t1\n", encoding="utf-8"
    )
    (tmp_path / "paper_conf.txt").write_text(
        "10\t20\n11\t20\n", encoding="utf-8"
    )
    (tmp_path / "paper_term.txt").write_text(
        "10\t30\n10\t31\n11\t30\n", encoding="utf-8"
    )
    return tmp_path


class TestLoad:
    def test_counts(self, format_dir):
        graph = load_dblp_four_area(format_dir)
        assert graph.num_nodes("author") == 2
        assert graph.num_nodes("paper") == 2
        assert graph.num_nodes("conference") == 1
        assert graph.num_edges("writes") == 3

    def test_edge_direction(self, format_dir):
        """paper_author.txt columns are (paper, author) but the writes
        relation runs author -> paper."""
        graph = load_dblp_four_area(format_dir)
        papers = dict(graph.out_neighbors("writes", "Tom"))
        assert papers == {"Graph Mining": 1.0}

    def test_names_are_keys(self, format_dir):
        graph = load_dblp_four_area(format_dir)
        assert graph.has_node("conference", "KDD")
        assert graph.has_node("term", "mining")

    def test_hetesim_runs_on_loaded_graph(self, format_dir):
        from repro.core.hetesim import hetesim_pair

        graph = load_dblp_four_area(format_dir)
        path = graph.schema.path("APC")
        assert hetesim_pair(graph, path, "Tom", "KDD") > 0

    def test_missing_file_rejected(self, format_dir):
        (format_dir / "term.txt").unlink()
        with pytest.raises(GraphError):
            load_dblp_four_area(format_dir)

    def test_unknown_id_rejected(self, format_dir):
        (format_dir / "paper_conf.txt").write_text(
            "10\t99\n", encoding="utf-8"
        )
        with pytest.raises(GraphError) as excinfo:
            load_dblp_four_area(format_dir)
        assert "paper_conf.txt:1" in str(excinfo.value)

    def test_malformed_line_rejected(self, format_dir):
        (format_dir / "author.txt").write_text(
            "0\tTom\tExtra\n", encoding="utf-8"
        )
        with pytest.raises(GraphError):
            load_dblp_four_area(format_dir)

    def test_duplicate_id_rejected(self, format_dir):
        (format_dir / "author.txt").write_text(
            "0\tTom\n0\tMary\n", encoding="utf-8"
        )
        with pytest.raises(GraphError):
            load_dblp_four_area(format_dir)

    def test_not_a_directory_rejected(self, tmp_path):
        with pytest.raises(GraphError):
            load_dblp_four_area(tmp_path / "nope")


class TestRoundTrip:
    def test_synthetic_network_roundtrips(self, tmp_path):
        original = make_dblp_four_area(
            seed=1, authors_per_area=8, papers_per_conference=6,
        ).graph
        save_dblp_four_area(original, tmp_path / "export")
        reloaded = load_dblp_four_area(tmp_path / "export")
        assert reloaded.num_nodes() == original.num_nodes()
        for relation in ("writes", "published_in", "contains"):
            np.testing.assert_allclose(
                reloaded.adjacency(relation).toarray(),
                original.adjacency(relation).toarray(),
            )

    def test_scores_survive_roundtrip(self, tmp_path):
        from repro.core.engine import HeteSimEngine

        original = make_dblp_four_area(
            seed=2, authors_per_area=6, papers_per_conference=5,
        ).graph
        save_dblp_four_area(original, tmp_path / "export")
        reloaded = load_dblp_four_area(tmp_path / "export")
        a = HeteSimEngine(original).relevance_matrix("CPA")
        b = HeteSimEngine(reloaded).relevance_matrix("CPA")
        # Node order may differ; compare via key lookup.
        conf = original.node_keys("conference")[0]
        author = original.node_keys("author")[0]
        assert HeteSimEngine(original).relevance(
            conf, author, "CPA"
        ) == pytest.approx(
            HeteSimEngine(reloaded).relevance(conf, author, "CPA")
        )
        assert a.shape == b.shape

    def test_wrong_schema_rejected(self, fig5, tmp_path):
        with pytest.raises(GraphError):
            save_dblp_four_area(fig5, tmp_path / "bad")

    def test_parallel_edges_written_per_unit(self, tmp_path):
        from repro.hin.graph import HeteroGraph
        from repro.datasets.schemas import dblp_schema

        graph = HeteroGraph(dblp_schema())
        graph.add_edge("writes", "Tom", "p1")
        graph.add_edge("writes", "Tom", "p1")
        graph.add_node("conference", "KDD")
        graph.add_node("term", "x")
        save_dblp_four_area(graph, tmp_path / "dup")
        content = (tmp_path / "dup" / "paper_author.txt").read_text()
        assert content.count("\n") == 2

    def test_fractional_weight_rejected(self, tmp_path):
        from repro.hin.graph import HeteroGraph
        from repro.datasets.schemas import dblp_schema

        graph = HeteroGraph(dblp_schema())
        graph.add_edge("writes", "Tom", "p1", weight=0.5)
        graph.add_node("conference", "KDD")
        graph.add_node("term", "x")
        with pytest.raises(GraphError):
            save_dblp_four_area(graph, tmp_path / "frac")
