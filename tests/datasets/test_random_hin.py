"""Tests for the random-HIN generators."""

import pytest

from repro.datasets.random_hin import make_random_bipartite, make_random_hin
from repro.datasets.schemas import toy_apc_schema
from repro.hin.errors import GraphError


class TestMakeRandomHin:
    def test_sizes_respected(self):
        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 5, "paper": 7, "conference": 3},
            seed=0,
        )
        assert graph.num_nodes("author") == 5
        assert graph.num_nodes("paper") == 7
        assert graph.num_nodes("conference") == 3

    def test_deterministic_per_seed(self):
        kwargs = dict(
            sizes={"author": 6, "paper": 6, "conference": 2}, edge_prob=0.3
        )
        a = make_random_hin(toy_apc_schema(), seed=4, **kwargs)
        b = make_random_hin(toy_apc_schema(), seed=4, **kwargs)
        assert a.num_edges() == b.num_edges()

    def test_edge_prob_zero_gives_no_edges(self):
        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 4, "paper": 4, "conference": 2},
            edge_prob=0.0,
            seed=0,
        )
        assert graph.num_edges() == 0

    def test_edge_prob_one_gives_complete_bipartite(self):
        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 3, "paper": 4, "conference": 2},
            edge_prob=1.0,
            seed=0,
        )
        assert graph.num_edges("writes") == 12
        assert graph.num_edges("published_in") == 8

    def test_per_relation_override(self):
        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 4, "paper": 4, "conference": 2},
            edge_prob=0.0,
            edge_probs={"writes": 1.0},
            seed=0,
        )
        assert graph.num_edges("writes") == 16
        assert graph.num_edges("published_in") == 0

    def test_ensure_connected_rows(self):
        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 10, "paper": 10, "conference": 3},
            edge_prob=0.01,
            seed=0,
            ensure_connected_rows=True,
        )
        for author in graph.node_keys("author"):
            assert graph.out_neighbors("writes", author)

    def test_missing_size_rejected(self):
        with pytest.raises(GraphError):
            make_random_hin(
                toy_apc_schema(), sizes={"author": 3, "paper": 3}, seed=0
            )

    def test_zero_size_rejected(self):
        with pytest.raises(GraphError):
            make_random_hin(
                toy_apc_schema(),
                sizes={"author": 0, "paper": 3, "conference": 1},
                seed=0,
            )


class TestMakeRandomBipartite:
    def test_shape(self, bipartite):
        assert bipartite.num_nodes("a") == 12
        assert bipartite.num_nodes("b") == 9

    def test_single_relation(self, bipartite):
        assert [r.name for r in bipartite.schema.relations] == ["r"]

    def test_connected_rows_default(self):
        graph = make_random_bipartite(20, 5, edge_prob=0.01, seed=1)
        for key in graph.node_keys("a"):
            assert graph.out_neighbors("r", key)


class TestZipfDegrees:
    def test_popular_targets_get_more_edges(self):
        import numpy as np

        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 200, "paper": 50, "conference": 2},
            edge_prob=0.1,
            seed=0,
            degree_exponent=1.5,
        )
        in_degrees = np.asarray(
            graph.adjacency("writes").sum(axis=0)
        ).ravel()
        first_quarter = in_degrees[: len(in_degrees) // 4].sum()
        last_quarter = in_degrees[-len(in_degrees) // 4:].sum()
        assert first_quarter > 3 * last_quarter

    def test_uniform_when_exponent_unset(self):
        import numpy as np

        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 200, "paper": 50, "conference": 2},
            edge_prob=0.1,
            seed=0,
        )
        in_degrees = np.asarray(
            graph.adjacency("writes").sum(axis=0)
        ).ravel()
        first_quarter = in_degrees[: len(in_degrees) // 4].sum()
        last_quarter = in_degrees[-len(in_degrees) // 4:].sum()
        assert first_quarter < 2 * last_quarter

    def test_deterministic(self):
        kwargs = dict(
            sizes={"author": 20, "paper": 10, "conference": 2},
            edge_prob=0.2,
            degree_exponent=1.0,
        )
        a = make_random_hin(toy_apc_schema(), seed=7, **kwargs)
        b = make_random_hin(toy_apc_schema(), seed=7, **kwargs)
        assert a.num_edges() == b.num_edges()
