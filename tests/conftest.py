"""Shared fixtures: the paper's toy graphs and small generated networks.

Session-scoped where generation is non-trivial; the graphs are treated as
immutable by every test (mutating tests build their own).
"""

from __future__ import annotations

import pytest

from repro.datasets.acm import AcmNetwork, make_acm_network
from repro.datasets.dblp import DblpNetwork, make_dblp_four_area
from repro.datasets.random_hin import make_random_bipartite, make_random_hin
from repro.datasets.schemas import acm_schema, dblp_schema, toy_apc_schema
from repro.datasets.toy import fig4_network, fig5_network
from repro.core.engine import HeteSimEngine


@pytest.fixture()
def fig4():
    """The Fig. 4 / Example 2 toy network (fresh per test)."""
    return fig4_network()


@pytest.fixture()
def fig5():
    """The Fig. 5(a) bipartite toy network (fresh per test)."""
    return fig5_network()


@pytest.fixture(scope="session")
def acm() -> AcmNetwork:
    """A small synthetic ACM-like network (shared; do not mutate)."""
    return make_acm_network(
        seed=0,
        venues_per_conference=3,
        papers_per_venue=12,
        authors_per_community=10,
    )


@pytest.fixture(scope="session")
def acm_full() -> AcmNetwork:
    """The default-size ACM network used by the experiment tests."""
    return make_acm_network(seed=0)


@pytest.fixture(scope="session")
def dblp() -> DblpNetwork:
    """A small synthetic DBLP-like network (shared; do not mutate)."""
    return make_dblp_four_area(
        seed=0,
        authors_per_area=25,
        papers_per_conference=20,
        labeled_papers_per_area=10,
    )


@pytest.fixture(scope="session")
def bipartite():
    """A random bipartite network (shared; do not mutate)."""
    return make_random_bipartite(n_a=12, n_b=9, edge_prob=0.35, seed=3)


@pytest.fixture()
def fig4_engine(fig4) -> HeteSimEngine:
    return HeteSimEngine(fig4)
