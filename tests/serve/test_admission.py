"""Admission control: token buckets, queue bounds, tenant config.

Every timing-sensitive assertion drives the bucket with a fake
monotonic clock, so refill arithmetic is exact and the suite never
sleeps.
"""

from __future__ import annotations

import math

import pytest

from repro.hin.errors import QueryError
from repro.runtime.limits import ExecutionLimits
from repro.serve.admission import (
    AdmissionController,
    Tenant,
    TokenBucket,
    load_tenants,
    tenants_from_config,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available == 3.0

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1.0, clock=clock)
        bucket.try_acquire()
        # 1 token at 0.5 tokens/s -> 2 seconds.
        assert bucket.try_acquire() == pytest.approx(2.0)

    def test_infinite_rate_always_admits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=math.inf, burst=1.0, clock=clock)
        for _ in range(100):
            assert bucket.try_acquire() == 0.0

    def test_failed_acquire_leaves_tokens_untouched(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        clock.advance(0.5)
        before = bucket.available
        bucket.try_acquire()  # refused: only 0.5 tokens
        assert bucket.available == pytest.approx(before)

    def test_validation(self):
        with pytest.raises(QueryError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(QueryError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenant:
    def test_validation(self):
        with pytest.raises(QueryError):
            Tenant("")
        with pytest.raises(QueryError):
            Tenant("t", rate=0)
        with pytest.raises(QueryError):
            Tenant("t", burst=0)

    def test_resolved_limits_intersects_with_default(self):
        tenant = Tenant(
            "t", limits=ExecutionLimits(deadline_ms=10, max_nnz=100)
        )
        default = ExecutionLimits(deadline_ms=50, max_bytes=4096)
        merged = tenant.resolved_limits(default)
        assert merged.deadline_ms == 10
        assert merged.max_nnz == 100
        assert merged.max_bytes == 4096

    def test_resolved_limits_without_tenant_limits_is_default(self):
        default = ExecutionLimits(deadline_ms=50)
        assert Tenant("t").resolved_limits(default) is default
        assert Tenant("t").resolved_limits(None) is None


class TestAdmissionController:
    def controller(self, clock=None, **kwargs):
        tenants = {
            "key-a": Tenant("alpha", rate=1.0, burst=2.0),
            "key-b": Tenant("beta"),
        }
        return (
            AdmissionController(
                tenants, clock=clock or FakeClock(), **kwargs
            ),
            tenants,
        )

    def test_authenticate_known_key(self):
        controller, tenants = self.controller()
        assert controller.authenticate("key-a") is tenants["key-a"]

    def test_authenticate_unknown_key_is_refused(self):
        controller, _ = self.controller()
        assert controller.authenticate("nope") is None

    def test_missing_key_without_anonymous_is_refused(self):
        controller, _ = self.controller()
        assert controller.authenticate(None) is None
        assert controller.authenticate("") is None

    def test_missing_key_with_anonymous_resolves(self):
        anonymous = Tenant("anonymous")
        controller = AdmissionController(
            {}, anonymous=anonymous, clock=FakeClock()
        )
        assert controller.authenticate(None) is anonymous
        # An unknown key still never falls back to anonymous.
        assert controller.authenticate("wrong") is None

    def test_rate_limit_refusal_carries_retry_after(self):
        clock = FakeClock()
        controller, tenants = self.controller(clock=clock)
        tenant = tenants["key-a"]
        assert controller.admit(tenant).admitted
        assert controller.admit(tenant).admitted
        refusal = controller.admit(tenant)
        assert not refusal.admitted
        assert refusal.reason == "rate"
        assert refusal.retry_after == pytest.approx(1.0)
        # No queue slot was burned by the refusal.
        assert controller.depth == 2

    def test_queue_capacity_sheds(self):
        controller, tenants = self.controller(queue_capacity=1)
        tenant = tenants["key-b"]
        assert controller.admit(tenant).admitted
        refusal = controller.admit(tenant)
        assert not refusal.admitted
        assert refusal.reason == "queue"
        controller.release()
        assert controller.admit(tenant).admitted

    def test_zero_capacity_sheds_everything(self):
        controller, tenants = self.controller(queue_capacity=0)
        refusal = controller.admit(tenants["key-b"])
        assert refusal.reason == "queue"

    def test_release_balances_depth(self):
        controller, tenants = self.controller()
        controller.admit(tenants["key-b"])
        assert controller.depth == 1
        controller.release()
        assert controller.depth == 0
        with pytest.raises(QueryError):
            controller.release()

    def test_shed_draining(self):
        controller, _ = self.controller()
        refusal = controller.shed_draining()
        assert not refusal.admitted
        assert refusal.reason == "draining"

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(QueryError):
            AdmissionController(
                {"k1": Tenant("same"), "k2": Tenant("same")}
            )


class TestTenantConfig:
    CONFIG = {
        "tenants": {
            "key-alpha": {
                "name": "alpha",
                "rate": 50,
                "burst": 10,
                "deadline_ms": 200,
                "max_bytes": 1 << 20,
            },
            "key-beta": {"name": "beta"},
        }
    }

    def test_parses_rates_and_limits(self):
        tenants = tenants_from_config(self.CONFIG)
        alpha = tenants["key-alpha"]
        assert alpha.name == "alpha"
        assert alpha.rate == 50.0
        assert alpha.burst == 10.0
        assert alpha.limits.deadline_ms == 200
        assert alpha.limits.max_bytes == 1 << 20
        beta = tenants["key-beta"]
        assert beta.rate == math.inf
        assert beta.limits is None

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown"):
            tenants_from_config(
                {"tenants": {"k": {"name": "t", "nope": 1}}}
            )

    def test_missing_name_rejected(self):
        with pytest.raises(QueryError, match="name"):
            tenants_from_config({"tenants": {"k": {"rate": 5}}})

    def test_empty_config_rejected(self):
        with pytest.raises(QueryError):
            tenants_from_config({})
        with pytest.raises(QueryError):
            tenants_from_config({"tenants": {}})

    def test_load_tenants_round_trip(self, tmp_path):
        import json

        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(self.CONFIG))
        tenants = load_tenants(path)
        assert set(tenants) == {"key-alpha", "key-beta"}

    def test_load_tenants_bad_file(self, tmp_path):
        with pytest.raises(QueryError):
            load_tenants(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(QueryError):
            load_tenants(bad)
