"""Socket-level integration tests for the HTTP serving tier.

Every test drives a real ``HttpServer`` bound to an ephemeral
127.0.0.1 port through ``http.client`` -- request parsing, routing,
admission, degradation provenance and drain are all exercised over the
wire, not by calling handlers directly.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.core.engine import HeteSimEngine
from repro.datasets.toy import fig4_network
from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.runtime.limits import ExecutionLimits
from repro.serve import (
    AdmissionController,
    HttpServer,
    Tenant,
)


def request(
    server, method, path, body=None, headers=None, key=None
):
    """One request over a fresh connection; returns (status, headers,
    parsed-JSON-or-bytes)."""
    connection = HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        send_headers = dict(headers or {})
        if key is not None:
            send_headers["X-API-Key"] = key
        raw = (
            json.dumps(body).encode() if isinstance(body, dict) else body
        )
        connection.request(method, path, body=raw, headers=send_headers)
        response = connection.getresponse()
        payload = response.read()
        header_map = {
            name.lower(): value for name, value in response.getheaders()
        }
        if header_map.get("content-type", "").startswith(
            "application/json"
        ):
            payload = json.loads(payload)
        return response.status, header_map, payload
    finally:
        connection.close()


@pytest.fixture()
def engine():
    return HeteSimEngine(fig4_network())


@pytest.fixture()
def server(engine):
    with HttpServer(engine) as running:
        yield running


class TestRouting:
    def test_healthz(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_metrics_content_type_is_prometheus(self, server):
        status, headers, body = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        assert b"# TYPE" in body

    def test_metrics_json(self, server):
        request(
            server,
            "POST",
            "/query",
            {"source": "Tom", "target": "KDD", "path": "APC"},
        )
        status, headers, body = request(server, "GET", "/metrics/json")
        assert status == 200
        assert "repro_http_requests_total" in body

    def test_request_metrics_recorded(self, server):
        request(
            server,
            "POST",
            "/query",
            {"source": "Tom", "target": "KDD", "path": "APC"},
        )
        _, _, text = request(server, "GET", "/metrics")
        assert (
            b'repro_http_requests_total{endpoint="query",status="200"}'
            in text
        )

    def test_doctor_in_memory(self, server):
        status, _, body = request(server, "GET", "/doctor")
        assert status == 200
        assert body["ok"] is True

    def test_unknown_route_404(self, server):
        status, _, body = request(server, "GET", "/nope")
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_method_405(self, server):
        status, headers, _ = request(server, "GET", "/query")
        assert status == 405
        assert headers["allow"] == "POST"
        status, headers, _ = request(server, "POST", "/healthz", {})
        assert status == 405
        assert headers["allow"] == "GET"

    def test_malformed_json_400(self, server):
        status, _, body = request(server, "POST", "/query", b"oops")
        assert status == 400
        assert "invalid JSON" in body["detail"]

    def test_missing_field_400(self, server):
        status, _, body = request(
            server, "POST", "/query", {"source": "Tom"}
        )
        assert status == 400

    def test_unknown_source_is_400_not_500(self, server):
        status, _, body = request(
            server,
            "POST",
            "/query",
            {"source": "Nobody", "target": "KDD", "path": "APC"},
        )
        assert status == 400
        assert body["error"] == "QueryError"

    def test_keep_alive_serves_sequential_requests(self, server):
        connection = HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestQueryEndpoints:
    def test_query_matches_engine(self, server, engine):
        status, headers, body = request(
            server,
            "POST",
            "/query",
            {"source": "Tom", "target": "KDD", "path": "APC"},
        )
        assert status == 200
        assert body["score"] == pytest.approx(
            engine.relevance("Tom", "KDD", "APC")
        )
        assert headers["x-repro-strategy"] == "exact"
        assert headers["x-repro-degraded"] == "false"
        assert "x-repro-tripped" not in headers

    def test_topk_matches_engine(self, server, engine):
        status, _, body = request(
            server,
            "POST",
            "/topk",
            {"source": "Tom", "path": "APC", "k": 2},
        )
        assert status == 200
        expected = engine.top_k("Tom", "APC", k=2)
        assert [tuple(item) for item in body["ranking"]] == [
            (key, pytest.approx(score)) for key, score in expected
        ]

    def test_topk_nonpositive_k_is_empty_200(self, server):
        status, _, body = request(
            server,
            "POST",
            "/topk",
            {"source": "Tom", "path": "APC", "k": 0},
        )
        assert status == 200
        assert body["ranking"] == []

    def test_batch_matches_query_server(self, server, engine):
        status, _, body = request(
            server,
            "POST",
            "/batch",
            {
                "queries": [
                    {"source": "Tom", "path": "APC", "k": 3},
                    {"source": "Mary", "path": "APC", "k": 3},
                ]
            },
        )
        assert status == 200
        assert body["stats"]["num_queries"] == 2
        assert body["stats"]["num_groups"] == 1
        tom = body["results"][0]["ranking"]
        assert [tuple(item) for item in tom] == [
            (key, pytest.approx(score))
            for key, score in engine.top_k("Tom", "APC", k=3)
        ]

    def test_empty_batch_answers_200(self, server):
        status, _, body = request(
            server, "POST", "/batch", {"queries": []}
        )
        assert status == 200
        assert body["results"] == []
        assert body["stats"]["num_queries"] == 0

    def test_warm(self, server):
        status, _, body = request(
            server, "POST", "/warm", {"paths": ["APC", "APCPA"]}
        )
        assert status == 200
        assert body["paths"] == ["APC", "APCPA"]


class TestAdmission:
    @pytest.fixture()
    def auth_server(self, engine):
        tenants = {
            "key-burst1": Tenant("burst1", rate=0.01, burst=1.0),
            "key-open": Tenant("open"),
        }
        with HttpServer(
            engine,
            admission=AdmissionController(tenants, queue_capacity=8),
        ) as running:
            yield running

    BODY = {"source": "Tom", "target": "KDD", "path": "APC"}

    def test_missing_key_401(self, auth_server):
        status, headers, body = request(
            auth_server, "POST", "/query", self.BODY
        )
        assert status == 401
        assert headers["www-authenticate"] == "ApiKey"
        assert body["error"] == "unauthorized"

    def test_unknown_key_401(self, auth_server):
        status, _, _ = request(
            auth_server, "POST", "/query", self.BODY, key="wrong"
        )
        assert status == 401

    def test_bearer_token_accepted(self, auth_server):
        status, _, _ = request(
            auth_server,
            "POST",
            "/query",
            self.BODY,
            headers={"Authorization": "Bearer key-open"},
        )
        assert status == 200

    def test_unauthenticated_gets_stay_open(self, auth_server):
        assert request(auth_server, "GET", "/healthz")[0] == 200
        assert request(auth_server, "GET", "/metrics")[0] == 200

    def test_rate_limit_429_with_retry_after(self, auth_server):
        first, _, _ = request(
            auth_server, "POST", "/query", self.BODY, key="key-burst1"
        )
        assert first == 200
        status, headers, body = request(
            auth_server, "POST", "/query", self.BODY, key="key-burst1"
        )
        assert status == 429
        assert body["error"] == "rate_limited"
        assert float(headers["retry-after"]) > 0

    def test_queue_full_503(self, engine):
        with HttpServer(
            engine,
            admission=AdmissionController(
                {"k": Tenant("t")}, queue_capacity=0
            ),
        ) as running:
            status, headers, body = request(
                running, "POST", "/query", self.BODY, key="k"
            )
        assert status == 503
        assert body["error"] == "overloaded"
        assert headers["retry-after"] == "1"


class TestDegradation:
    """Overload must answer through the ladder with provenance headers,
    never a blind 500.  A zero deadline on a cold engine trips at the
    first materialisation checkpoint deterministically."""

    @pytest.fixture()
    def strict_server(self):
        engine = HeteSimEngine(fig4_network())  # cold: no memoised halves
        tenants = {
            "key-strict": Tenant(
                "strict", limits=ExecutionLimits(deadline_ms=0.0)
            )
        }
        with HttpServer(
            engine,
            admission=AdmissionController(tenants, queue_capacity=8),
        ) as running:
            yield running

    def test_query_degrades_with_provenance(self, strict_server):
        status, headers, body = request(
            strict_server,
            "POST",
            "/query",
            {"source": "Tom", "target": "KDD", "path": "APC"},
            key="key-strict",
        )
        assert status == 200
        assert headers["x-repro-degraded"] == "true"
        assert headers["x-repro-tripped"] == "deadline"
        assert headers["x-repro-strategy"] != "exact"
        assert body["degraded"] is True

    def test_batch_floor_retry_with_provenance(self, strict_server):
        status, headers, body = request(
            strict_server,
            "POST",
            "/batch",
            {"queries": [{"source": "Tom", "path": "APC", "k": 2}]},
            key="key-strict",
        )
        assert status == 200
        assert headers["x-repro-strategy"] == "truncate-final"
        assert headers["x-repro-tripped"] == "deadline"
        assert headers["x-repro-degraded"] == "true"
        assert body["results"][0]["ranking"]  # still a real answer

    def test_degraded_counter_increments(self, strict_server):
        request(
            strict_server,
            "POST",
            "/query",
            {"source": "Tom", "target": "KDD", "path": "APC"},
            key="key-strict",
        )
        _, _, text = request(strict_server, "GET", "/metrics")
        assert b"repro_http_degraded_total" in text


class TestDrain:
    def test_inflight_request_completes_during_drain(self, engine):
        server = HttpServer(engine, drain_grace_s=10.0)
        server.start()
        entered = threading.Event()
        release = threading.Event()
        original = server.server.run

        def slow_run(batch, limits=None):
            entered.set()
            release.wait(timeout=10)
            return original(batch, limits=limits)

        server.server.run = slow_run
        outcome = {}

        def client():
            outcome["response"] = request(
                server,
                "POST",
                "/batch",
                {"queries": [{"source": "Tom", "path": "APC", "k": 2}]},
            )

        worker = threading.Thread(target=client)
        worker.start()
        assert entered.wait(timeout=10)
        port = server.port

        stopper = threading.Thread(
            target=lambda: server.stop(drain=True)
        )
        stopper.start()
        # Give the drain a moment to close the listener, then release
        # the in-flight request; drain must wait for it.
        time.sleep(0.1)
        assert stopper.is_alive()
        release.set()
        worker.join(timeout=10)
        stopper.join(timeout=10)
        status, headers, body = outcome["response"]
        assert status == 200
        assert body["results"][0]["ranking"]

        # The listener is gone: fresh connections are refused.
        with pytest.raises(OSError):
            connection = HTTPConnection("127.0.0.1", port, timeout=2)
            connection.request("GET", "/healthz")
            connection.getresponse()

    def test_healthz_reports_draining(self, engine):
        server = HttpServer(engine).start()
        try:
            assert (
                request(server, "GET", "/healthz")[2]["status"] == "ok"
            )
        finally:
            server.stop(drain=True)
