"""Batch serving: equality with the sequential API, grouping, stats.

The contract under test: a batch answer is element-wise identical to
running ``hetesim_all_targets`` / ``hetesim_pair`` per query, across
even and odd (edge-object) paths and both normalisation modes, while
materialising each distinct path's halves exactly once per request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.hetesim import hetesim_all_targets, hetesim_pair
from repro.core.search import rank_targets, select_top_k
from repro.datasets.random_hin import make_random_hin
from repro.hin.errors import QueryError
from repro.hin.schema import NetworkSchema
from repro.serve import BatchRequest, Query, QueryServer, serve_batch


def _apc_schema():
    return NetworkSchema.from_spec(
        types=[("author", "A"), ("paper", "P"), ("conf", "C")],
        relations=[
            ("writes", "author", "paper"),
            ("published_in", "paper", "conf"),
        ],
    )


@pytest.fixture(scope="module")
def hin():
    return make_random_hin(
        _apc_schema(),
        sizes={"author": 40, "paper": 60, "conf": 8},
        edge_prob=0.08,
        seed=7,
        ensure_connected_rows=True,
    )


@pytest.fixture()
def server(hin):
    return QueryServer(HeteSimEngine(hin))


# Even (APC, APCPA), odd with edge object (AP length-1, APCP length-3).
PATHS = ["APC", "APCPA", "AP", "APCP"]


class TestBatchEquality:
    @pytest.mark.parametrize("spec", PATHS)
    @pytest.mark.parametrize("normalized", [True, False])
    def test_matches_sequential_all_targets(
        self, hin, server, spec, normalized
    ):
        path = hin.schema.path(spec)
        sources = hin.node_keys("author")[:12]
        queries = [
            Query(s, spec, k=None, normalized=normalized)
            for s in sources
        ]
        result = server.run(BatchRequest(queries))
        keys = hin.node_keys(path.target_type.name)
        for query, answer in zip(queries, result.results):
            scores = hetesim_all_targets(
                hin, path, query.source, normalized=normalized
            )
            expected = select_top_k(scores, keys, len(keys))
            assert [k for k, _ in answer.ranking] == [
                k for k, _ in expected
            ]
            np.testing.assert_allclose(
                [s for _, s in answer.ranking],
                [s for _, s in expected],
                rtol=1e-12,
                atol=1e-15,
            )

    @pytest.mark.parametrize("spec", ["APC", "APCP"])
    def test_matches_pair_scores(self, hin, server, spec):
        path = hin.schema.path(spec)
        queries = [
            Query(s, spec, k=3) for s in hin.node_keys("author")[:6]
        ]
        result = server.run(BatchRequest(queries))
        for query, answer in zip(queries, result.results):
            for target, score in answer.ranking:
                np.testing.assert_allclose(
                    score,
                    hetesim_pair(hin, path, query.source, target),
                    rtol=1e-10,
                    atol=1e-12,
                )

    def test_matches_rank_targets_prefix(self, hin, server):
        path = hin.schema.path("APC")
        query = Query("A3", "APC", k=4)
        result = server.run(BatchRequest([query]))
        expected = rank_targets(hin, path, "A3")[:4]
        assert [k for k, _ in result.results[0].ranking] == [
            k for k, _ in expected
        ]


class TestGrouping:
    def test_each_path_materialised_exactly_once(self, hin):
        engine = HeteSimEngine(hin)
        server = QueryServer(engine)
        sources = hin.node_keys("author")[:16]
        queries = [Query(s, "APC", k=5) for s in sources] + [
            Query(s, "APCPA", k=5) for s in sources
        ]
        result = server.run(BatchRequest(queries))
        assert result.stats.num_groups == 2
        assert result.stats.halves_materialised == 2

        # CacheStats: the big batch triggered exactly the misses a
        # single halves() materialisation per distinct path would.
        reference = HeteSimEngine(hin)
        for spec in ("APC", "APCPA"):
            reference.halves(reference.path(spec))
        assert (
            engine.cache.stats().misses
            == reference.cache.stats().misses
        )
        # PlanStats: one planned execution per materialisation, not
        # one per query.
        assert len(engine.plan_log) == len(reference.plan_log)

    def test_warm_engine_materialises_nothing(self, hin):
        engine = HeteSimEngine(hin)
        server = QueryServer(engine)
        request = BatchRequest(
            [Query(s, "APC", k=5) for s in hin.node_keys("author")]
        )
        first = server.run(request)
        misses = engine.cache.stats().misses
        second = server.run(request)
        assert first.stats.halves_materialised == 1
        assert second.stats.halves_materialised == 0
        assert engine.cache.stats().misses == misses
        assert second.results == first.results

    def test_request_order_preserved(self, hin, server):
        queries = [
            Query("A0", "APCPA", k=2),
            Query("A1", "APC", k=2),
            Query("A2", "APCPA", k=2),
            Query("A0", "APC", k=2),
        ]
        result = server.run(BatchRequest(queries, workers=4))
        assert [r.query for r in result.results] == queries

    def test_duplicate_sources_share_rows(self, hin, server):
        queries = [Query("A1", "APC", k=3)] * 4
        result = server.run(BatchRequest(queries))
        assert len(result.results) == 4
        assert len({r.ranking for r in result.results}) == 1

    def test_stats_shape(self, hin, server):
        result = server.run(
            BatchRequest(
                [Query("A0", "APC"), Query("A1", "APC")], workers=2
            )
        )
        stats = result.stats
        assert stats.num_queries == 2
        assert stats.group_sizes == (2,)
        assert stats.workers == 2
        assert stats.seconds >= 0
        assert "2 queries" in stats.summary()


class TestValidation:
    def test_empty_batch_answers_empty(self, server):
        result = server.run(BatchRequest([]))
        assert result.results == ()
        assert result.rankings() == []
        assert result.stats.num_queries == 0
        assert result.stats.num_groups == 0
        assert result.stats.group_sizes == ()

    def test_bad_workers_rejected(self, hin):
        with pytest.raises(QueryError):
            BatchRequest([Query("A0", "APC")], workers=0)

    def test_nonpositive_k_yields_empty_ranking(self, server):
        result = server.run(
            BatchRequest(
                [Query("A0", "APC", k=0), Query("A0", "APC", k=2)]
            )
        )
        assert result.results[0].ranking == ()
        assert len(result.results[1].ranking) == 2

    def test_unknown_source_names_position(self, hin, server):
        with pytest.raises(QueryError, match="#1"):
            server.run(
                BatchRequest(
                    [Query("A0", "APC"), Query("ghost", "APC")]
                )
            )

    def test_fails_before_materialising(self, hin):
        engine = HeteSimEngine(hin)
        with pytest.raises(QueryError):
            QueryServer(engine).run(
                BatchRequest(
                    [Query("A0", "APC"), Query("ghost", "APC")]
                )
            )
        assert engine.cache.stats().misses == 0


def test_serve_batch_function(hin):
    engine = HeteSimEngine(hin)
    result = serve_batch(
        engine, BatchRequest([Query("A0", "APC", k=2)])
    )
    assert len(result.results[0].ranking) == 2


def test_for_graph_constructor(hin):
    server = QueryServer.for_graph(hin)
    result = server.run(BatchRequest([Query("A0", "APC", k=1)]))
    assert len(result.results) == 1
