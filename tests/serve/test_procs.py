"""Process-tier serving semantics: determinism, limits, faults, obs.

The thread tier is the reference execution; everything here pins the
process tier to it -- byte-identical rankings, the same typed errors
with the same provenance, the same fault-site occurrence counts --
so moving work across the process boundary can never change an
answer.  Mirrors ``tests/serve/test_parallel.py`` one tier up.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.datasets.random_hin import make_random_hin
from repro.hin.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    InjectedFaultError,
)
from repro.hin.schema import NetworkSchema
from repro.runtime.faults import (
    SITE_EXECUTOR_STEP,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.limits import ExecutionLimits, execution_scope
from repro.serve import BatchRequest, Query, QueryServer
from repro.serve.procs import (
    PROCESS_MIN_EDGES,
    ProcessDispatcher,
    _partition,
    graph_work_nnz,
    resolve_backend,
    usable_cpus,
)


def _schema():
    return NetworkSchema.from_spec(
        types=[("author", "A"), ("paper", "P"), ("conf", "C")],
        relations=[
            ("writes", "author", "paper"),
            ("published_in", "paper", "conf"),
        ],
    )


@pytest.fixture(scope="module")
def hin():
    return make_random_hin(
        _schema(),
        sizes={"author": 30, "paper": 50, "conf": 6},
        edge_prob=0.1,
        seed=3,
        ensure_connected_rows=True,
    )


def _queries(hin):
    sources = hin.node_keys("author")
    return (
        [Query(s, "APC", k=4) for s in sources[:10]]
        + [Query(s, "APCPA", k=4) for s in sources[:10]]
        + [Query(s, "APCP", k=4, normalized=False) for s in sources[:5]]
    )


def _run(hin, queries, **kwargs):
    return QueryServer(HeteSimEngine(hin)).run(
        BatchRequest(queries, **kwargs)
    )


class TestDeterminism:
    def test_process_matches_thread_reference(self, hin):
        queries = _queries(hin)
        reference = _run(hin, queries, workers=1, backend="thread")
        for workers in (1, 4):
            result = _run(
                hin, queries, workers=workers, backend="process"
            )
            assert result.rankings() == reference.rankings()
            assert result.results == reference.results

    def test_repeated_process_runs_identical(self, hin):
        queries = _queries(hin)
        first = _run(hin, queries, workers=4, backend="process")
        second = _run(hin, queries, workers=4, backend="process")
        assert first.results == second.results

    def test_mixed_measures_route_through_one_tier(self, hin):
        queries = [
            Query("A0", "APCPA", k=4),
            Query("A1", "APCPA", k=4, measure="pathsim"),
            Query("A2", "APC", k=4),
        ]
        reference = _run(hin, queries, workers=1, backend="thread")
        result = _run(hin, queries, workers=4, backend="process")
        assert result.rankings() == reference.rankings()

    def test_stats_report_backend_and_workers(self, hin):
        result = _run(
            hin, _queries(hin)[:4], workers=3, backend="process"
        )
        assert result.stats.backend == "process"
        assert result.stats.workers == 3
        assert "[process backend]" in result.stats.summary()


class TestWarm:
    def test_process_warm_adopts_identical_halves(self, hin):
        warmed = HeteSimEngine(hin)
        report = warmed.warm(
            ["APC", "APCPA"], workers=4, backend="process"
        )
        assert report.backend == "process"
        assert "[process backend]" in report.summary()
        assert warmed.adoption_count == 2
        reference = HeteSimEngine(hin)
        for spec in ("APC", "APCPA"):
            meta = warmed.path(spec)
            assert warmed.has_halves(meta)
            left, right, left_norms, right_norms = warmed.halves(meta)
            r_left, r_right, r_ln, r_rn = reference.halves(
                reference.path(spec)
            )
            np.testing.assert_array_equal(
                left.toarray(), r_left.toarray()
            )
            np.testing.assert_array_equal(
                right.toarray(), r_right.toarray()
            )
            np.testing.assert_array_equal(left_norms, r_ln)
            np.testing.assert_array_equal(right_norms, r_rn)

    def test_warmed_engine_serves_without_rematerialising(self, hin):
        engine = HeteSimEngine(hin)
        engine.warm(["APC", "APCPA"], workers=2, backend="process")
        server = QueryServer(engine)
        result = server.run(
            BatchRequest(
                [Query("A0", "APC", k=3), Query("A0", "APCPA", k=3)],
                workers=2,
                backend="process",
            )
        )
        assert result.stats.halves_materialised == 0
        reference = _run(
            hin,
            [Query("A0", "APC", k=3), Query("A0", "APCPA", k=3)],
            workers=1,
            backend="thread",
        )
        assert result.rankings() == reference.rankings()

    def test_warm_skips_already_fresh_paths(self, hin):
        engine = HeteSimEngine(hin)
        engine.warm(["APC"], backend="thread")
        report = engine.warm(
            ["APC", "APCPA"], workers=2, backend="process"
        )
        assert set(report.paths) == {"APC", "APCPA"}
        assert engine.adoption_count == 1


class TestLimitsAcrossProcesses:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_zero_deadline_trips(self, hin, workers):
        server = QueryServer(HeteSimEngine(hin))
        with pytest.raises(DeadlineExceededError):
            server.run(
                BatchRequest(
                    [Query("A0", "APC"), Query("A0", "APCPA")],
                    workers=workers,
                    backend="process",
                ),
                limits=ExecutionLimits(deadline_ms=0),
            )

    def test_ambient_scope_reaches_worker_processes(self, hin):
        engine = HeteSimEngine(hin)
        limits = ExecutionLimits(deadline_ms=0)
        with execution_scope(tracker=limits.tracker()):
            with pytest.raises(DeadlineExceededError):
                engine.warm(
                    ["APCPA"], workers=2, backend="process"
                )

    def test_byte_budget_trips_with_same_provenance(self, hin):
        def trip(backend):
            server = QueryServer(HeteSimEngine(hin))
            with pytest.raises(BudgetExceededError) as info:
                server.run(
                    BatchRequest(
                        [Query("A0", "APCPA")],
                        workers=2,
                        backend=backend,
                    ),
                    limits=ExecutionLimits(max_nnz=1),
                )
            return (
                info.value.limit,
                info.value.observed,
                info.value.allowed,
            )

        assert trip("process") == trip("thread")

    def test_parent_tracker_absorbs_worker_charges(self, hin):
        engine = HeteSimEngine(hin)
        limits = ExecutionLimits(max_nnz=10**9)
        tracker = limits.tracker()
        with execution_scope(tracker=tracker):
            engine.warm(["APCPA"], workers=2, backend="process")
        assert tracker.nnz_charged > 0
        assert tracker.steps_executed > 0

    def test_generous_limits_pass(self, hin):
        result = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(
                [Query("A0", "APC", k=3)],
                workers=2,
                backend="process",
            ),
            limits=ExecutionLimits(deadline_ms=60_000),
        )
        assert len(result.results) == 1


class TestFaultsAcrossProcesses:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_injected_fault_trips_identically(self, hin, backend):
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 0, "fail")])
        server = QueryServer(HeteSimEngine(hin))
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError):
                server.run(
                    BatchRequest(
                        [
                            Query(s, "APCPA")
                            for s in ("A0", "A1", "A2")
                        ],
                        workers=4,
                        backend=backend,
                    )
                )
        assert plan.fired == [(SITE_EXECUTOR_STEP, 0, "fail")]

    def test_fault_free_plan_counts_worker_steps(self, hin):
        """Site occurrence counts advance across the process boundary
        exactly as they do in-process."""
        queries = [Query("A0", "APC"), Query("A0", "APCPA")]
        in_process = FaultPlan()
        with execution_scope(faults=in_process):
            _run(hin, queries, workers=1, backend="thread")
        cross_process = FaultPlan()
        with execution_scope(faults=cross_process):
            _run(hin, queries, workers=4, backend="process")
        assert cross_process.occurrences(
            SITE_EXECUTOR_STEP
        ) == in_process.occurrences(SITE_EXECUTOR_STEP)


class TestObservabilityMerge:
    def test_worker_registry_merges_into_parent(self, hin):
        from repro.obs.metrics import REGISTRY

        engine = HeteSimEngine(hin)
        engine.warm(["APCPA"], workers=2, backend="process")
        family = REGISTRY.get("repro_halves_materialisations_total")
        labelled = {
            child.labels: child.value for child in family.children()
        }
        assert labelled.get((("engine", "worker"),), 0) >= 1

    def test_adoptions_counted_separately(self, hin):
        engine = HeteSimEngine(hin)
        engine.warm(["APC", "APCPA"], workers=2, backend="process")
        assert engine.adoption_count == 2
        assert engine.materialisation_count == 0


class TestErrorPickling:
    @pytest.mark.parametrize(
        "error",
        [
            DeadlineExceededError(12.5, 10.0),
            BudgetExceededError("max_nnz", 100, 10),
            InjectedFaultError("executor.step", 3, "detail"),
            InjectedFaultError("store.read", 0),
        ],
    )
    def test_round_trip_preserves_type_and_fields(self, error):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)
        assert clone.__dict__ == error.__dict__


class TestResolveBackend:
    def test_explicit_backends_pass_through(self, hin):
        nnz = graph_work_nnz(hin)
        for explicit in ("thread", "process"):
            assert (
                resolve_backend(explicit, 1, 1, nnz) == explicit
            )

    def test_unknown_backend_rejected(self):
        from repro.hin.errors import QueryError

        with pytest.raises(QueryError):
            resolve_backend("greenlet", 2, 2, 10**6)

    def test_auto_needs_workers_items_and_cpus(self, monkeypatch):
        import repro.serve.procs as procs

        monkeypatch.setattr(procs, "usable_cpus", lambda: 8)
        big = PROCESS_MIN_EDGES * 2
        assert resolve_backend("auto", 4, 4, big) == "process"
        assert resolve_backend("auto", 1, 4, big) == "thread"
        assert resolve_backend("auto", 4, 1, big) == "thread"
        assert (
            resolve_backend("auto", 4, 4, big, prefer_thread=True)
            == "thread"
        )
        assert (
            resolve_backend("auto", 4, 4, PROCESS_MIN_EDGES - 1)
            == "thread"
        )
        monkeypatch.setattr(procs, "usable_cpus", lambda: 1)
        assert resolve_backend("auto", 4, 4, big) == "thread"

    def test_usable_cpus_positive(self):
        assert usable_cpus() >= 1


class TestDispatcherMechanics:
    def test_partition_contiguous_and_complete(self):
        rows = list(range(10))
        shards = _partition(rows, 4)
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert [r for shard in shards for r in shard] == rows
        assert _partition(rows, 20) == [[r] for r in rows]
        assert _partition([], 4) == [[]]

    def test_spawn_start_method_works(self, hin):
        """The graph pickles (lock dropped and rebuilt) so the tier
        also works where fork is unavailable."""
        with ProcessDispatcher(
            hin, workers=1, start_method="spawn"
        ) as pool:
            assert pool.start_method == "spawn"
            from repro.serve.procs import _unlink_manifest

            engine = HeteSimEngine(hin)
            manifests = pool.map(
                [("warm", "APC")], cleanup=_unlink_manifest
            )
            from repro.serve.procs import _adopt_manifest

            _adopt_manifest(
                engine, engine.path("APC"), manifests[0]
            )
            assert engine.has_halves(engine.path("APC"))

    def test_rejects_zero_workers(self, hin):
        from repro.hin.errors import QueryError

        with pytest.raises(QueryError):
            ProcessDispatcher(hin, workers=0)
