"""Dispatcher and SingleFlight unit tests.

The properties the batch layer builds on: ordered results, ambient
execution-context propagation into worker threads, exception
propagation, and one-computation-per-key under concurrency.
"""

from __future__ import annotations

import threading

import pytest

from repro.hin.errors import QueryError
from repro.runtime.limits import current_context, execution_scope
from repro.serve import Dispatcher, SingleFlight


class TestDispatcher:
    def test_rejects_bad_workers(self):
        with pytest.raises(QueryError):
            Dispatcher(0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_map_preserves_order(self, workers):
        items = list(range(20))
        assert Dispatcher(workers).map(
            lambda item: item * item, items
        ) == [item * item for item in items]

    def test_map_empty(self):
        assert Dispatcher(4).map(lambda item: item, []) == []

    def test_context_propagates_into_workers(self):
        seen = []

        def task(_):
            seen.append(current_context())
            return threading.current_thread().name

        with execution_scope() as context:
            names = Dispatcher(4).map(task, range(8))
        assert all(ctx is context for ctx in seen)
        # The pool really ran tasks off the calling thread.
        assert any(
            name != threading.main_thread().name for name in names
        )

    def test_no_ambient_context_is_fine(self):
        def task(_):
            return current_context()

        assert Dispatcher(4).map(task, range(4)) == [None] * 4

    def test_exception_propagates(self):
        def task(item):
            if item == 3:
                raise ValueError("boom")
            return item

        with pytest.raises(ValueError, match="boom"):
            Dispatcher(4).map(task, range(8))


class TestSingleFlight:
    def test_sequential_calls_compute_each_time(self):
        flight = SingleFlight()
        calls = []
        for _ in range(3):
            flight.do("key", lambda: calls.append(1))
        assert len(calls) == 3

    def test_concurrent_calls_share_one_computation(self):
        flight = SingleFlight()
        calls = []
        release = threading.Event()
        started = threading.Event()

        def slow():
            calls.append(1)
            started.set()
            release.wait(timeout=5)
            return "value"

        results = {}

        def leader():
            results["leader"] = flight.do("key", slow)

        def follower():
            started.wait(timeout=5)
            results["follower"] = flight.do(
                "key", lambda: pytest.fail("follower computed")
            )

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=follower),
        ]
        for thread in threads:
            thread.start()
        started.wait(timeout=5)
        # Give the follower a moment to block on the in-flight future.
        import time

        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert calls == [1]
        assert results["leader"] == results["follower"] == "value"

    def test_exception_shared_with_waiters(self):
        flight = SingleFlight()

        def failing():
            raise RuntimeError("shared failure")

        with pytest.raises(RuntimeError, match="shared failure"):
            flight.do("key", failing)
        # The key is released: a later call computes fresh.
        assert flight.do("key", lambda: 42) == 42

    def test_distinct_keys_do_not_block(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == 1
        assert flight.do("b", lambda: 2) == 2


class TestSingleFlightTimeout:
    """Regression: a leader that dies without resolving its future must
    not park followers forever -- a bounded wait re-elects a leader."""

    def test_follower_reelects_after_dead_leader(self):
        flight = SingleFlight()
        from concurrent.futures import Future

        stale = Future()  # a leader registered this, then died
        with flight._lock:
            flight._inflight["key"] = stale
        assert flight.do("key", lambda: "fresh", timeout=0.05) == "fresh"
        # The stale future was evicted; the key is free again.
        assert "key" not in flight._inflight

    def test_timeout_unused_when_leader_resolves_in_time(self):
        flight = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        results = {}

        def slow():
            started.set()
            release.wait(timeout=5)
            return "value"

        leader = threading.Thread(
            target=lambda: results.update(leader=flight.do("key", slow))
        )
        leader.start()
        started.wait(timeout=5)
        follower = threading.Thread(
            target=lambda: results.update(
                follower=flight.do(
                    "key",
                    lambda: pytest.fail("follower computed"),
                    timeout=5.0,
                )
            )
        )
        follower.start()
        release.set()
        leader.join(timeout=5)
        follower.join(timeout=5)
        assert results == {"leader": "value", "follower": "value"}

    def test_timeout_does_not_evict_a_successor(self):
        flight = SingleFlight()
        from concurrent.futures import Future

        stale = Future()
        with flight._lock:
            flight._inflight["key"] = stale

        follower_done = threading.Event()
        results = {}

        def follower():
            results["value"] = flight.do(
                "key", lambda: "reelected", timeout=0.05
            )
            follower_done.set()

        thread = threading.Thread(target=follower)
        thread.start()
        follower_done.wait(timeout=5)
        thread.join(timeout=5)
        assert results["value"] == "reelected"
        # Resolving the stale future later is harmless.
        stale.set_result("late")
        assert flight.do("key", lambda: "next") == "next"
