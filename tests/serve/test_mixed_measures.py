"""Mixed-measure batches: grouping, sharing and limits across plugins.

The acceptance contract for the measure layer at serving scale:

* a mixed batch answers every query exactly as a per-measure batch
  would (grouping by ``(measure, group key)`` never changes scores);
* HeteSim-family groups (including ``combined`` components) share the
  engine's half-matrix memo, so one path's halves materialise once no
  matter how many measures touch it -- asserted via the engine's
  materialisation-counter delta;
* walk measures on one path share the cached ``PM`` across groups;
* PPR groups path-blind (endpoint types), so differently-pathed PPR
  queries land in one group;
* execution limits trip identically whether groups run in one worker
  or many.
"""

from __future__ import annotations

import pytest

from repro.core.engine import HeteSimEngine
from repro.core.measures import MeasureContext, get_measure
from repro.datasets.random_hin import make_random_hin
from repro.hin.errors import DeadlineExceededError, QueryError
from repro.hin.schema import NetworkSchema
from repro.runtime.limits import ExecutionLimits
from repro.serve import BatchRequest, Query, QueryServer

COMBINED_SPEC = "APC=0.6,APCPAPC=0.4"


def _schema():
    return NetworkSchema.from_spec(
        types=[("author", "A"), ("paper", "P"), ("conf", "C")],
        relations=[
            ("writes", "author", "paper"),
            ("published_in", "paper", "conf"),
        ],
    )


@pytest.fixture(scope="module")
def hin():
    return make_random_hin(
        _schema(),
        sizes={"author": 30, "paper": 50, "conf": 6},
        edge_prob=0.1,
        seed=3,
        ensure_connected_rows=True,
    )


def _mixed_queries(hin):
    sources = hin.node_keys("author")
    return (
        [Query(s, "APC", k=4) for s in sources[:6]]
        + [Query(s, "APCPA", k=4, measure="pathsim") for s in sources[:6]]
        + [Query(s, "APC", k=4, measure="pcrw") for s in sources[:4]]
        + [Query(s, "APC", k=4, measure="reachprob") for s in sources[:4]]
        + [Query(s, COMBINED_SPEC, k=4, measure="combined")
           for s in sources[:4]]
        + [Query(s, "APC", k=4, measure="ppr") for s in sources[:2]]
    )


class TestMixedBatchEquality:
    def test_mixed_batch_equals_per_measure_batches(self, hin):
        queries = _mixed_queries(hin)
        mixed = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=1)
        )
        by_measure = {}
        for position, query in enumerate(queries):
            by_measure.setdefault(query.measure, []).append(
                (position, query)
            )
        for measure, members in by_measure.items():
            single = QueryServer(HeteSimEngine(hin)).run(
                BatchRequest([q for _, q in members], workers=1)
            )
            for (position, _), result in zip(members, single.results):
                assert mixed.results[position] == result, measure

    def test_mixed_batch_parallel_equals_sequential(self, hin):
        queries = _mixed_queries(hin)
        sequential = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=1)
        )
        parallel = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=8)
        )
        assert parallel.results == sequential.results

    def test_combined_ranking_matches_plugin(self, hin):
        source = hin.node_keys("author")[0]
        batch = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(
                [Query(source, COMBINED_SPEC, k=5, measure="combined")]
            )
        )
        direct = get_measure("combined").top_k(
            MeasureContext(graph=hin), COMBINED_SPEC, source, k=5
        )
        assert list(batch.results[0].ranking) == direct


class TestCrossMeasureSharing:
    def test_halves_shared_across_hetesim_and_combined(self, hin):
        """ISSUE acceptance: hetesim-on-APC and combined-on-(APC + one
        more path) must materialise APC's halves exactly once between
        them -- the counter delta is 2 (APC once, APCPAPC once), not 3.
        """
        engine = HeteSimEngine(hin)
        sources = hin.node_keys("author")
        before = engine.materialisation_count
        QueryServer(engine).run(
            BatchRequest(
                [Query(s, "APC", k=4) for s in sources[:4]]
                + [Query(s, COMBINED_SPEC, k=4, measure="combined")
                   for s in sources[:4]],
                workers=1,
            )
        )
        assert engine.materialisation_count - before == 2

    def test_repeat_batch_materialises_nothing(self, hin):
        engine = HeteSimEngine(hin)
        server = QueryServer(engine)
        request = BatchRequest(_mixed_queries(hin), workers=1)
        first = server.run(request)
        assert first.stats.halves_materialised > 0
        second = server.run(request)
        assert second.stats.halves_materialised == 0
        assert second.results == first.results

    def test_walk_measures_share_cached_pm(self, hin):
        """pcrw and reachprob groups on one path hit one cache entry."""
        engine = HeteSimEngine(hin)
        sources = hin.node_keys("author")
        misses = engine.cache.stats().misses
        hits = engine.cache.stats().hits
        QueryServer(engine).run(
            BatchRequest(
                [Query(s, "APCPA", k=4, measure="pcrw")
                 for s in sources[:3]]
                + [Query(s, "APCPA", k=4, measure="reachprob")
                   for s in sources[:3]],
                workers=1,
            )
        )
        stats = engine.cache.stats()
        assert stats.misses == misses + 1
        assert stats.hits >= hits + 1


class TestGrouping:
    def test_mixed_measures_same_path_form_distinct_groups(self, hin):
        result = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(
                [
                    Query("A0", "APC", k=3),
                    Query("A0", "APC", k=3, measure="pcrw"),
                    Query("A0", "APC", k=3, measure="reachprob"),
                ]
            )
        )
        assert result.stats.num_groups == 3

    def test_ppr_groups_are_path_blind(self, hin):
        """APC and APCPAPC share endpoint types, so one PPR group (and
        one global walk) answers both."""
        result = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(
                [
                    Query("A0", "APC", k=3, measure="ppr"),
                    Query("A1", "APCPAPC", k=3, measure="ppr"),
                ]
            )
        )
        assert result.stats.num_groups == 1
        assert result.results[0].query.path == "APC"
        assert result.results[1].query.path == "APCPAPC"

    def test_unknown_measure_fails_fast(self, hin):
        server = QueryServer(HeteSimEngine(hin))
        with pytest.raises(QueryError, match="hetesim"):
            server.run(
                BatchRequest(
                    [Query("A0", "APC", measure="simrankish")]
                )
            )

    def test_mismatched_combined_paths_fail_fast(self, hin):
        server = QueryServer(HeteSimEngine(hin))
        with pytest.raises(QueryError, match="endpoint"):
            server.run(
                BatchRequest(
                    [Query("A0", "APC,APCPA", measure="combined")]
                )
            )


class TestLimitsAcrossMeasures:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_zero_deadline_trips_identically(self, hin, workers):
        server = QueryServer(HeteSimEngine(hin))
        request = BatchRequest(
            [
                Query("A0", "APC"),
                Query("A0", "APCPA", measure="pathsim"),
                Query("A0", "APC", measure="pcrw"),
                Query("A0", COMBINED_SPEC, measure="combined"),
            ],
            workers=workers,
        )
        with pytest.raises(DeadlineExceededError):
            server.run(request, limits=ExecutionLimits(deadline_ms=0))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_generous_limits_pass(self, hin, workers):
        result = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(
                [
                    Query("A0", "APC", k=3),
                    Query("A0", "APC", k=3, measure="pcrw"),
                ],
                workers=workers,
            ),
            limits=ExecutionLimits(deadline_ms=60_000),
        )
        assert len(result.results) == 2
