"""Parallel serving semantics: determinism, limits and faults in workers.

``workers=1`` is the reference execution; everything here pins the
parallel paths to it -- identical results, identical limit trips,
identical injected-fault behaviour -- so turning concurrency up can
never change an answer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.datasets.random_hin import make_random_hin
from repro.hin.errors import (
    DeadlineExceededError,
    InjectedFaultError,
)
from repro.hin.schema import NetworkSchema
from repro.runtime.faults import (
    SITE_EXECUTOR_STEP,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.limits import ExecutionLimits, execution_scope
from repro.serve import BatchRequest, Query, QueryServer


def _schema():
    return NetworkSchema.from_spec(
        types=[("author", "A"), ("paper", "P"), ("conf", "C")],
        relations=[
            ("writes", "author", "paper"),
            ("published_in", "paper", "conf"),
        ],
    )


@pytest.fixture(scope="module")
def hin():
    return make_random_hin(
        _schema(),
        sizes={"author": 30, "paper": 50, "conf": 6},
        edge_prob=0.1,
        seed=3,
        ensure_connected_rows=True,
    )


def _queries(hin):
    sources = hin.node_keys("author")
    return (
        [Query(s, "APC", k=4) for s in sources[:10]]
        + [Query(s, "APCPA", k=4) for s in sources[:10]]
        + [Query(s, "APCP", k=4, normalized=False) for s in sources[:5]]
    )


class TestDeterminism:
    def test_workers_1_vs_8_identical(self, hin):
        queries = _queries(hin)
        sequential = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=1)
        )
        parallel = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=8)
        )
        assert parallel.results == sequential.results

    def test_repeated_parallel_runs_identical(self, hin):
        queries = _queries(hin)
        first = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=8)
        )
        second = QueryServer(HeteSimEngine(hin)).run(
            BatchRequest(queries, workers=8)
        )
        assert first.results == second.results


class TestLimitsInWorkers:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_zero_deadline_trips(self, hin, workers):
        server = QueryServer(HeteSimEngine(hin))
        request = BatchRequest(
            [Query("A0", "APC"), Query("A0", "APCPA")],
            workers=workers,
        )
        with pytest.raises(DeadlineExceededError):
            server.run(
                request, limits=ExecutionLimits(deadline_ms=0)
            )

    @pytest.mark.parametrize("workers", [1, 8])
    def test_ambient_scope_reaches_workers(self, hin, workers):
        server = QueryServer(HeteSimEngine(hin))
        limits = ExecutionLimits(deadline_ms=0)
        with execution_scope(tracker=limits.tracker()):
            with pytest.raises(DeadlineExceededError):
                server.run(
                    BatchRequest(
                        [Query("A0", "APC")], workers=workers
                    )
                )

    def test_generous_limits_pass(self, hin):
        server = QueryServer(HeteSimEngine(hin))
        result = server.run(
            BatchRequest([Query("A0", "APC", k=3)], workers=4),
            limits=ExecutionLimits(deadline_ms=60_000),
        )
        assert len(result.results) == 1


class TestFaultsInWorkers:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_injected_fault_trips_identically(self, hin, workers):
        # APCPA's left half is a two-factor chain, so its
        # materialisation always executes (at least) one step at the
        # instrumented site -- single-relation halves execute none.
        plan = FaultPlan(
            [FaultSpec(SITE_EXECUTOR_STEP, 0, "fail")]
        )
        server = QueryServer(HeteSimEngine(hin))
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError):
                server.run(
                    BatchRequest(
                        [
                            Query(s, "APCPA")
                            for s in ("A0", "A1", "A2")
                        ],
                        workers=workers,
                    )
                )
        assert plan.fired == [(SITE_EXECUTOR_STEP, 0, "fail")]

    def test_fault_free_plan_observes_worker_steps(self, hin):
        """Site counters advance inside worker threads (the plan sees
        the same executor steps a sequential run produces)."""
        sequential = FaultPlan()
        with execution_scope(faults=sequential):
            QueryServer(HeteSimEngine(hin)).run(
                BatchRequest(
                    [Query("A0", "APC"), Query("A0", "APCPA")],
                    workers=1,
                )
            )
        parallel = FaultPlan()
        with execution_scope(faults=parallel):
            QueryServer(HeteSimEngine(hin)).run(
                BatchRequest(
                    [Query("A0", "APC"), Query("A0", "APCPA")],
                    workers=8,
                )
            )
        assert parallel.occurrences(
            SITE_EXECUTOR_STEP
        ) == sequential.occurrences(SITE_EXECUTOR_STEP)


def _stress_graph():
    return make_random_hin(
        _schema(),
        sizes={"author": 30, "paper": 50, "conf": 6},
        edge_prob=0.1,
        seed=3,
        ensure_connected_rows=True,
    )


def _fingerprint(halves):
    left, right, left_norms, right_norms = halves
    return (
        left.nnz,
        right.nnz,
        float(left.sum()),
        float(right.sum()),
        float(left_norms.sum()),
        float(right_norms.sum()),
    )


class TestMutateQueryStress:
    def test_mutate_then_query_cycles_never_pair_stale_data(self):
        """8 workers in barrier-phased mutate-then-query cycles.

        Each cycle, one worker mutates the graph, then all eight race
        ``engine.halves`` against the now-quiescent graph.  Every served
        result must fingerprint identically to what a fresh engine
        computes for that cycle: the pre-fix TOCTOU (a stale memo tuple
        paired with the post-mutation signature) is exactly what the
        per-cycle equality catches, because the stale tuple belongs to
        the previous cycle's graph state.
        """
        graph = _stress_graph()
        engine = HeteSimEngine(graph)
        path = engine.path("APC")
        cycles = 12
        workers = 8
        barrier = threading.Barrier(workers)
        records = []
        references = {}
        records_lock = threading.Lock()
        failures = []

        def worker(slot):
            try:
                for cycle in range(cycles):
                    if slot == 0:
                        # Parallel edges accumulate weight, so re-adding
                        # an existing pair is a legal, version-bumping
                        # mutation.
                        graph.add_edge(
                            "writes", f"A{cycle % 30}", f"P{(7 * cycle) % 50}"
                        )
                    barrier.wait()
                    served = _fingerprint(engine.halves(path))
                    with records_lock:
                        records.append((cycle, served))
                    if slot == 0:
                        references[cycle] = _fingerprint(
                            HeteSimEngine(graph).halves(path)
                        )
                    barrier.wait()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        assert len(records) == cycles * workers
        by_cycle = {}
        for cycle, served in records:
            by_cycle.setdefault(cycle, set()).add(served)
        for cycle, fingerprints in sorted(by_cycle.items()):
            assert fingerprints == {references[cycle]}, (
                f"cycle {cycle} served {len(fingerprints)} distinct "
                f"halves -- stale data survived the mutation"
            )

    def test_free_running_storm_settles_to_fresh_state(self):
        """2 mutators and 6 queriers free-running with no phasing.

        Mid-storm results are unchecked (with mutation in flight there
        is no instant at which a signature and an adjacency read are
        guaranteed mutually consistent), but the storm must neither
        crash nor poison any cache: once quiescent, the hammered engine
        must serve exactly what a fresh engine computes.
        """
        graph = _stress_graph()
        engine = HeteSimEngine(graph)
        path = engine.path("APC")
        start = threading.Barrier(8)
        failures = []

        def mutator(slot):
            try:
                start.wait()
                for step in range(25):
                    graph.add_edge(
                        "writes", f"A{(slot * 25 + step) % 30}", f"P{step % 50}"
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        def querier():
            try:
                start.wait()
                for _ in range(40):
                    engine.halves(path)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=mutator, args=(slot,))
            for slot in range(2)
        ] + [threading.Thread(target=querier) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        final = _fingerprint(engine.halves(path))
        assert final == _fingerprint(
            HeteSimEngine(graph).halves(path)
        )


class TestSingleFlightHalves:
    def test_concurrent_same_path_materialises_once(self, hin):
        engine = HeteSimEngine(hin)
        path = engine.path("APCPA")
        calls = []
        original = engine._materialise_halves

        def counting(meta, key, signature):
            calls.append(key)
            return original(meta, key, signature)

        engine._materialise_halves = counting
        barrier = threading.Barrier(4)
        results = [None] * 4

        def worker(slot):
            barrier.wait()
            results[slot] = engine.halves(path)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(result is results[0] for result in results)

    def test_distinct_paths_not_serialised_by_memo(self, hin):
        """Distinct paths may materialise concurrently and still land
        correct entries (exercises the cache's locking)."""
        engine = HeteSimEngine(hin)
        specs = ["APC", "APCPA", "APCP", "AP"]
        metas = [engine.path(spec) for spec in specs]
        threads = [
            threading.Thread(target=engine.halves, args=(meta,))
            for meta in metas
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for meta in metas:
            assert engine.has_halves(meta)
        reference = HeteSimEngine(hin)
        for meta, spec in zip(metas, specs):
            left, right, _, _ = engine.halves(meta)
            ref_left, ref_right, _, _ = reference.halves(
                reference.path(spec)
            )
            np.testing.assert_array_equal(
                left.toarray(), ref_left.toarray()
            )
            np.testing.assert_array_equal(
                right.toarray(), ref_right.toarray()
            )
