"""Unit tests for meta-path algebra: parsing, reversal, decomposition."""

import pytest

from repro.datasets.schemas import acm_schema, dblp_schema
from repro.hin.errors import PathError
from repro.hin.metapath import MetaPath, parse_path


@pytest.fixture(scope="module")
def schema():
    return acm_schema()


class TestParsing:
    def test_compact_code_string(self, schema):
        path = parse_path(schema, "APVC")
        assert path.code() == "APVC"
        assert [r.name for r in path.relations] == [
            "writes",
            "published_in",
            "belongs_to",
        ]

    def test_code_string_with_inverse_steps(self, schema):
        path = parse_path(schema, "CVPA")
        assert [r.name for r in path.relations] == [
            "belongs_to^-1",
            "published_in^-1",
            "writes^-1",
        ]

    def test_type_name_sequence(self, schema):
        path = parse_path(schema, ["author", "paper", "venue"])
        assert path.code() == "APV"

    def test_relation_name_sequence(self, schema):
        path = parse_path(schema, ["writes", "published_in"])
        assert path.code() == "APV"

    def test_relation_name_sequence_with_inverse(self, schema):
        path = parse_path(schema, ["writes", "writes^-1"])
        assert path.code() == "APA"

    def test_relation_object_sequence(self, schema):
        writes = schema.relation("writes")
        published = schema.relation("published_in")
        path = parse_path(schema, [writes, published])
        assert path.code() == "APV"

    def test_metapath_passthrough(self, schema):
        path = parse_path(schema, "APV")
        assert parse_path(schema, path) is path

    def test_single_code_rejected(self, schema):
        with pytest.raises(PathError):
            parse_path(schema, "A")

    def test_unknown_code_rejected(self, schema):
        with pytest.raises(PathError):
            parse_path(schema, "AXZ")

    def test_non_adjacent_types_rejected(self, schema):
        # No direct author-conference relation exists.
        with pytest.raises(PathError):
            parse_path(schema, "AC")

    def test_empty_spec_rejected(self, schema):
        with pytest.raises(PathError):
            parse_path(schema, [])

    def test_mixed_garbage_rejected(self, schema):
        with pytest.raises(PathError):
            parse_path(schema, ["author", "nonsense"])

    def test_non_concatenable_relations_rejected(self, schema):
        writes = schema.relation("writes")
        belongs = schema.relation("belongs_to")
        with pytest.raises(PathError):
            MetaPath(schema, [writes, belongs])

    def test_empty_relations_rejected(self, schema):
        with pytest.raises(PathError):
            MetaPath(schema, [])


class TestStructure:
    def test_length_and_node_types(self, schema):
        path = parse_path(schema, "APVC")
        assert path.length == 3
        assert len(path) == 3
        assert [t.code for t in path.node_types] == ["A", "P", "V", "C"]

    def test_source_and_target_types(self, schema):
        path = parse_path(schema, "APVC")
        assert path.source_type.name == "author"
        assert path.target_type.name == "conference"


class TestAlgebra:
    def test_reverse(self, schema):
        path = parse_path(schema, "APVC")
        assert path.reverse().code() == "CVPA"

    def test_reverse_twice_is_identity(self, schema):
        for spec in ("APVC", "APA", "CVPAPA", "APT"):
            path = parse_path(schema, spec)
            assert path.reverse().reverse() == path

    def test_symmetric_paths(self, schema):
        assert parse_path(schema, "APA").is_symmetric
        assert parse_path(schema, "APVCVPA").is_symmetric
        assert not parse_path(schema, "APVC").is_symmetric
        assert not parse_path(schema, "APAPV").is_symmetric

    def test_concat(self, schema):
        left = parse_path(schema, "AP")
        right = parse_path(schema, "PV")
        assert left.concat(right).code() == "APV"
        assert (left + right).code() == "APV"

    def test_concat_mismatch_rejected(self, schema):
        left = parse_path(schema, "AP")
        with pytest.raises(PathError):
            left.concat(parse_path(schema, "VC"))

    def test_repeat(self, schema):
        path = parse_path(schema, "APA")
        assert path.repeat(2).code() == "APAPA"
        assert path.repeat(1) == path
        with pytest.raises(PathError):
            path.repeat(0)

    def test_subpath(self, schema):
        path = parse_path(schema, "APVC")
        assert path.subpath(0, 2).code() == "APV"
        assert path.subpath(1, 3).code() == "PVC"
        with pytest.raises(PathError):
            path.subpath(2, 2)

    def test_equality_and_hash(self, schema):
        assert parse_path(schema, "APV") == parse_path(schema, "APV")
        assert hash(parse_path(schema, "APV")) == hash(parse_path(schema, "APV"))
        assert parse_path(schema, "APV") != parse_path(schema, "APT")


class TestHalves:
    def test_even_split(self, schema):
        halves = parse_path(schema, "APVCVPA").halves()
        assert not halves.needs_edge_object
        assert halves.left.code() == "APVC"
        assert halves.right.code() == "CVPA"

    def test_even_split_symmetric_relation(self, schema):
        halves = parse_path(schema, "APA").halves()
        assert halves.left.code() == "AP"
        assert halves.right.code() == "PA"
        assert halves.right.reverse() == halves.left

    def test_odd_split_needs_edge_object(self, schema):
        halves = parse_path(schema, "APVC").halves()
        assert halves.needs_edge_object
        assert halves.left.code() == "AP"
        assert halves.right.code() == "VC"
        assert halves.middle_relation.name == "published_in"

    def test_length_one_split(self, schema):
        halves = parse_path(schema, "AP").subpath(0, 1).halves()
        assert halves.needs_edge_object
        assert halves.left is None
        assert halves.right is None
        assert halves.middle_relation.name == "writes"

    def test_odd_split_middle_inverse_relation(self, schema):
        halves = parse_path(schema, "CVPA").halves()
        assert halves.needs_edge_object
        assert halves.middle_relation.name == "published_in^-1"


class TestDblpPaths:
    def test_paper_clustering_path(self):
        schema = dblp_schema()
        path = parse_path(schema, "PAPCPAP")
        assert path.length == 6
        assert path.is_symmetric
        halves = path.halves()
        assert halves.left.code() == "PAPC"
