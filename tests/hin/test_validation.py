"""Unit tests for graph validation and reporting."""

import pytest

from repro.hin.errors import GraphError
from repro.hin.graph import HeteroGraph
from repro.hin.schema import NetworkSchema
from repro.hin.validation import (
    assert_valid,
    graph_report,
    validate_graph,
)


@pytest.fixture()
def schema():
    return NetworkSchema.from_spec(
        [("author", "A"), ("paper", "P")],
        [("writes", "author", "paper")],
    )


class TestValidateGraph:
    def test_clean_graph_has_no_issues(self, fig4):
        assert validate_graph(fig4) == []

    def test_empty_type_is_error(self, schema):
        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")  # papers stay empty
        codes = {issue.code for issue in validate_graph(graph)}
        assert "empty-type" in codes
        severities = {
            issue.severity
            for issue in validate_graph(graph)
            if issue.code == "empty-type"
        }
        assert severities == {"error"}

    def test_empty_relation_is_warning(self, schema):
        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")
        graph.add_node("paper", "p1")
        issues = validate_graph(graph)
        codes = {issue.code for issue in issues}
        assert "empty-relation" in codes
        assert all(
            issue.severity == "warning"
            for issue in issues
            if issue.code == "empty-relation"
        )

    def test_isolated_node_is_warning(self, fig4):
        fig4.add_node("author", "lurker")
        codes = {issue.code for issue in validate_graph(fig4)}
        assert "isolated-nodes" in codes

    def test_dangling_source_detected(self, schema):
        graph = HeteroGraph(schema)
        graph.add_edge("writes", "alice", "p1")
        graph.add_node("author", "bob")
        # bob is isolated AND a dangling writes-source.
        codes = {issue.code for issue in validate_graph(graph)}
        assert "dangling-sources" in codes

    def test_dangling_target_detected(self, schema):
        graph = HeteroGraph(schema)
        graph.add_edge("writes", "alice", "p1")
        graph.add_node("paper", "unwritten")
        codes = {issue.code for issue in validate_graph(graph)}
        assert "dangling-targets" in codes


class TestGraphReport:
    def test_counts(self, fig4):
        report = graph_report(fig4)
        assert report.node_counts["author"] == 3
        assert report.edge_counts["writes"] == 6
        assert report.isolated_nodes["author"] == 0
        assert not report.has_errors

    def test_dangling_counts(self, schema):
        graph = HeteroGraph(schema)
        graph.add_edge("writes", "alice", "p1")
        graph.add_node("author", "bob")
        report = graph_report(graph)
        assert report.dangling_sources["writes"] == 1
        assert report.dangling_targets["writes"] == 0

    def test_summary_mentions_issues(self, schema):
        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")
        text = graph_report(graph).summary()
        assert "empty-type" in text
        assert "author: 1 nodes" in text

    def test_has_errors_flag(self, schema):
        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")
        assert graph_report(graph).has_errors


class TestAssertValid:
    def test_passes_clean_graph(self, fig4):
        assert_valid(fig4)  # should not raise

    def test_warnings_do_not_raise(self, fig4):
        fig4.add_node("author", "lurker")
        assert_valid(fig4)  # isolated node is only a warning

    def test_errors_raise(self, schema):
        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")
        with pytest.raises(GraphError):
            assert_valid(graph)

    def test_generated_networks_are_clean(self, acm, dblp):
        assert_valid(acm.graph)
        assert_valid(dblp.graph)
