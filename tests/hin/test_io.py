"""Unit tests for graph serialisation round-trips."""

import json

import numpy as np
import pytest

from repro.hin.errors import GraphError
from repro.hin.graph import HeteroGraph
from repro.hin.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
    schema_from_dict,
    schema_to_dict,
)
from repro.hin.schema import NetworkSchema


class TestSchemaRoundTrip:
    def test_roundtrip(self, fig4):
        data = schema_to_dict(fig4.schema)
        rebuilt = schema_from_dict(data)
        assert [t.name for t in rebuilt.object_types] == [
            t.name for t in fig4.schema.object_types
        ]
        assert [r.name for r in rebuilt.relations] == [
            r.name for r in fig4.schema.relations
        ]

    def test_dict_is_json_serialisable(self, fig4):
        json.dumps(schema_to_dict(fig4.schema))


class TestGraphRoundTrip:
    def test_roundtrip_preserves_structure(self, fig4):
        rebuilt = graph_from_dict(graph_to_dict(fig4))
        assert rebuilt.num_nodes() == fig4.num_nodes()
        assert rebuilt.num_edges() == fig4.num_edges()
        np.testing.assert_allclose(
            rebuilt.adjacency("writes").toarray(),
            fig4.adjacency("writes").toarray(),
        )

    def test_roundtrip_preserves_node_order(self, fig4):
        rebuilt = graph_from_dict(graph_to_dict(fig4))
        assert rebuilt.node_keys("author") == fig4.node_keys("author")
        assert rebuilt.node_keys("paper") == fig4.node_keys("paper")

    def test_roundtrip_preserves_weights(self):
        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B")], [("r", "a", "b")]
        )
        graph = HeteroGraph(schema)
        graph.add_edge("r", "x", "y", weight=2.5)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.adjacency("r")[0, 0] == 2.5

    def test_roundtrip_preserves_isolated_nodes(self):
        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B")], [("r", "a", "b")]
        )
        graph = HeteroGraph(schema)
        graph.add_node("a", "lonely")
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_node("a", "lonely")

    def test_bad_version_rejected(self, fig4):
        data = graph_to_dict(fig4)
        data["format_version"] = 999
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_file_roundtrip(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        rebuilt = load_graph(path)
        assert rebuilt.num_edges() == fig4.num_edges()

    def test_file_roundtrip_accepts_str_path(self, fig4, tmp_path):
        path = str(tmp_path / "graph.json")
        save_graph(fig4, path)
        assert load_graph(path).num_nodes() == fig4.num_nodes()

    def test_hetesim_identical_after_roundtrip(self, fig4, tmp_path):
        """The measure, not just the structure, must survive IO."""
        from repro.core.hetesim import hetesim_matrix

        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        rebuilt = load_graph(path)
        meta = fig4.schema.path("APC")
        meta2 = rebuilt.schema.path("APC")
        np.testing.assert_allclose(
            hetesim_matrix(fig4, meta), hetesim_matrix(rebuilt, meta2)
        )


class TestNpzRoundTrip:
    def test_roundtrip_preserves_everything(self, fig4, tmp_path):
        from repro.hin.io import load_graph_npz, save_graph_npz

        save_graph_npz(fig4, tmp_path / "binary")
        rebuilt = load_graph_npz(tmp_path / "binary")
        assert rebuilt.num_nodes() == fig4.num_nodes()
        assert rebuilt.node_keys("author") == fig4.node_keys("author")
        np.testing.assert_allclose(
            rebuilt.adjacency("writes").toarray(),
            fig4.adjacency("writes").toarray(),
        )

    def test_weighted_roundtrip(self, tmp_path):
        from repro.datasets.schemas import bipartite_schema
        from repro.hin.graph import HeteroGraph
        from repro.hin.io import load_graph_npz, save_graph_npz

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "x", "y", weight=2.5)
        save_graph_npz(graph, tmp_path / "w")
        rebuilt = load_graph_npz(tmp_path / "w")
        assert rebuilt.adjacency("r")[0, 0] == 2.5

    def test_scores_survive(self, acm, tmp_path):
        from repro.core.hetesim import hetesim_matrix
        from repro.hin.io import load_graph_npz, save_graph_npz

        save_graph_npz(acm.graph, tmp_path / "acm")
        rebuilt = load_graph_npz(tmp_path / "acm")
        path_spec = "APVC"
        np.testing.assert_allclose(
            hetesim_matrix(acm.graph, acm.graph.schema.path(path_spec)),
            hetesim_matrix(rebuilt, rebuilt.schema.path(path_spec)),
            atol=1e-12,
        )

    def test_bad_version_rejected(self, fig4, tmp_path):
        import json as _json

        from repro.hin.errors import GraphError
        from repro.hin.io import load_graph_npz, save_graph_npz

        save_graph_npz(fig4, tmp_path / "v")
        sidecar = tmp_path / "v" / "graph.json"
        data = _json.loads(sidecar.read_text(encoding="utf-8"))
        data["format_version"] = 99
        sidecar.write_text(_json.dumps(data), encoding="utf-8")
        with pytest.raises(GraphError):
            load_graph_npz(tmp_path / "v")
