"""Unit tests for network statistics."""

import pytest

from repro.hin.stats import network_stats, path_cost_estimate, relation_stats


class TestRelationStats:
    def test_fig4_writes(self, fig4):
        stats = relation_stats(fig4, "writes")
        assert stats.num_edges == 6
        # 3 authors x 4 papers = 12 cells.
        assert stats.density == pytest.approx(0.5)
        assert stats.mean_out_degree == pytest.approx(2.0)
        assert stats.max_out_degree == 2
        assert stats.mean_in_degree == pytest.approx(1.5)
        assert stats.max_in_degree == 2

    def test_inverse_relation_swaps_degrees(self, fig4):
        forward = relation_stats(fig4, "writes")
        backward = relation_stats(fig4, "writes^-1")
        assert backward.mean_out_degree == forward.mean_in_degree
        assert backward.mean_in_degree == forward.mean_out_degree
        assert backward.num_edges == forward.num_edges

    def test_dangling_objects_count_as_zero(self, fig4):
        fig4.add_node("author", "lurker")
        stats = relation_stats(fig4, "writes")
        assert stats.mean_out_degree == pytest.approx(6 / 4)


class TestNetworkStats:
    def test_covers_all_relations(self, fig4):
        stats = network_stats(fig4)
        assert set(stats) == {"writes", "published_in"}

    def test_acm_density_is_sparse(self, acm):
        stats = network_stats(acm.graph)
        assert stats["writes"].density < 0.1


class TestPathCostEstimate:
    def test_returns_positive_estimates(self, fig4):
        flops, cells = path_cost_estimate(fig4, "APC")
        assert flops > 0
        assert cells == fig4.num_nodes("author") * fig4.num_nodes(
            "conference"
        )

    def test_longer_path_costs_more(self, acm):
        short_flops, _ = path_cost_estimate(acm.graph, "APVC")
        long_flops, _ = path_cost_estimate(acm.graph, "APVCVPA")
        assert long_flops > short_flops

    def test_accepts_parsed_paths(self, fig4):
        path = fig4.schema.path("APC")
        assert path_cost_estimate(fig4, path) == path_cost_estimate(
            fig4, "APC"
        )
