"""Unit tests for graph merging."""

import numpy as np
import pytest

from repro.datasets.schemas import toy_apc_schema
from repro.hin.errors import GraphError
from repro.hin.graph import HeteroGraph
from repro.hin.merge import merge_graphs


def slice_graph(edges_writes, edges_published):
    graph = HeteroGraph(toy_apc_schema())
    graph.add_edges("writes", edges_writes)
    graph.add_edges("published_in", edges_published)
    return graph


class TestMergeGraphs:
    def test_disjoint_union(self):
        a = slice_graph([("x", "p1")], [("p1", "KDD")])
        b = slice_graph([("y", "p2")], [("p2", "VLDB")])
        merged = merge_graphs([a, b])
        assert merged.num_nodes("author") == 2
        assert merged.num_nodes("paper") == 2
        assert merged.num_edges("writes") == 2

    def test_shared_nodes_deduplicated(self):
        a = slice_graph([("x", "p1")], [("p1", "KDD")])
        b = slice_graph([("x", "p2")], [("p2", "KDD")])
        merged = merge_graphs([a, b])
        assert merged.num_nodes("author") == 1
        assert merged.num_nodes("conference") == 1
        assert dict(merged.out_neighbors("writes", "x")) == {
            "p1": 1.0, "p2": 1.0,
        }

    def test_duplicate_edges_accumulate(self):
        a = slice_graph([("x", "p1")], [])
        b = slice_graph([("x", "p1")], [])
        merged = merge_graphs([a, b])
        assert merged.adjacency("writes")[0, 0] == 2.0

    def test_weights_preserved(self):
        a = HeteroGraph(toy_apc_schema())
        a.add_edge("writes", "x", "p1", weight=2.5)
        merged = merge_graphs([a])
        assert merged.adjacency("writes")[0, 0] == 2.5

    def test_single_graph_copy(self, fig4):
        merged = merge_graphs([fig4])
        assert merged is not fig4
        np.testing.assert_allclose(
            merged.adjacency("writes").toarray(),
            fig4.adjacency("writes").toarray(),
        )

    def test_node_order_first_graph_wins(self):
        a = slice_graph([("x", "p1")], [])
        b = slice_graph([("y", "p1")], [])
        merged = merge_graphs([a, b])
        assert merged.node_keys("author") == ["x", "y"]

    def test_empty_input_rejected(self):
        with pytest.raises(GraphError):
            merge_graphs([])

    def test_mismatched_schemas_rejected(self, fig4, fig5):
        with pytest.raises(GraphError):
            merge_graphs([fig4, fig5])

    def test_measures_on_merged_slices(self):
        """HeteSim over the union equals HeteSim on a directly built
        equivalent graph."""
        from repro.core.hetesim import hetesim_pair

        a = slice_graph([("Tom", "p1")], [("p1", "KDD")])
        b = slice_graph([("Tom", "p2")], [("p2", "KDD")])
        merged = merge_graphs([a, b])
        path = merged.schema.path("APC")
        assert hetesim_pair(
            merged, path, "Tom", "KDD", normalized=False
        ) == pytest.approx(0.5)
