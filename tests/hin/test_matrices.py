"""Unit tests for transition matrices and Property 2."""

import numpy as np
import pytest
from scipy import sparse

from repro.hin.errors import QueryError
from repro.hin.matrices import (
    col_normalize,
    reachable_probability_matrix,
    row_normalize,
    transition_matrix,
)


@pytest.fixture()
def matrix():
    return sparse.csr_matrix(
        np.array(
            [
                [1.0, 2.0, 0.0],
                [0.0, 0.0, 0.0],
                [3.0, 0.0, 1.0],
            ]
        )
    )


class TestRowNormalize:
    def test_rows_sum_to_one(self, matrix):
        normalized = row_normalize(matrix).toarray()
        np.testing.assert_allclose(normalized[0].sum(), 1.0)
        np.testing.assert_allclose(normalized[2].sum(), 1.0)

    def test_zero_row_stays_zero(self, matrix):
        normalized = row_normalize(matrix).toarray()
        np.testing.assert_array_equal(normalized[1], 0.0)

    def test_values(self, matrix):
        normalized = row_normalize(matrix).toarray()
        np.testing.assert_allclose(normalized[0], [1 / 3, 2 / 3, 0])
        np.testing.assert_allclose(normalized[2], [3 / 4, 0, 1 / 4])

    def test_input_not_mutated(self, matrix):
        original = matrix.toarray().copy()
        row_normalize(matrix)
        np.testing.assert_array_equal(matrix.toarray(), original)

    def test_accepts_dense_like_sparse_types(self, matrix):
        coo = matrix.tocoo()
        np.testing.assert_allclose(
            row_normalize(coo).toarray(), row_normalize(matrix).toarray()
        )


class TestColNormalize:
    def test_cols_sum_to_one(self, matrix):
        normalized = col_normalize(matrix).toarray()
        np.testing.assert_allclose(normalized[:, 0].sum(), 1.0)
        np.testing.assert_allclose(normalized[:, 1].sum(), 1.0)
        np.testing.assert_allclose(normalized[:, 2].sum(), 1.0)

    def test_zero_col_stays_zero(self):
        m = sparse.csr_matrix(np.array([[1.0, 0.0], [2.0, 0.0]]))
        normalized = col_normalize(m).toarray()
        np.testing.assert_array_equal(normalized[:, 1], 0.0)

    def test_duality_with_row_normalize(self, matrix):
        # col_normalize(W) == row_normalize(W')'
        left = col_normalize(matrix).toarray()
        right = row_normalize(matrix.T).toarray().T
        np.testing.assert_allclose(left, right)


class TestTransitionMatrix:
    def test_property2_u_equals_v_transposed(self, fig4):
        """Property 2: U_AB = V_BA' and V_AB = U_BA'."""
        u_ap = transition_matrix(fig4, "writes", "U").toarray()
        v_pa = transition_matrix(fig4, "writes^-1", "V").toarray()
        np.testing.assert_allclose(u_ap, v_pa.T)

        v_ap = transition_matrix(fig4, "writes", "V").toarray()
        u_pa = transition_matrix(fig4, "writes^-1", "U").toarray()
        np.testing.assert_allclose(v_ap, u_pa.T)

    def test_bad_direction_rejected(self, fig4):
        with pytest.raises(QueryError):
            transition_matrix(fig4, "writes", "X")

    def test_u_rows_stochastic(self, fig4):
        u = transition_matrix(fig4, "writes", "U").toarray()
        np.testing.assert_allclose(u.sum(axis=1), 1.0)


class TestReachableProbability:
    def test_single_step_is_u(self, fig4):
        path = fig4.schema.path("AP")
        pm = reachable_probability_matrix(fig4, path).toarray()
        u = transition_matrix(fig4, "writes", "U").toarray()
        np.testing.assert_allclose(pm, u)

    def test_two_step_product(self, fig4):
        path = fig4.schema.path("APC")
        pm = reachable_probability_matrix(fig4, path).toarray()
        u1 = transition_matrix(fig4, "writes", "U").toarray()
        u2 = transition_matrix(fig4, "published_in", "U").toarray()
        np.testing.assert_allclose(pm, u1 @ u2)

    def test_rows_substochastic(self, fig4):
        path = fig4.schema.path("APC")
        pm = reachable_probability_matrix(fig4, path).toarray()
        assert (pm.sum(axis=1) <= 1.0 + 1e-12).all()

    def test_fig4_tom_reaches_kdd(self, fig4):
        path = fig4.schema.path("APC")
        pm = reachable_probability_matrix(fig4, path)
        tom = fig4.node_index("author", "Tom")
        kdd = fig4.node_index("conference", "KDD")
        assert pm[tom, kdd] == pytest.approx(1.0)

    def test_reverse_path_differs(self, fig4):
        """PM is direction dependent (the PCRW asymmetry)."""
        forward = reachable_probability_matrix(
            fig4, fig4.schema.path("APC")
        ).toarray()
        backward = reachable_probability_matrix(
            fig4, fig4.schema.path("CPA")
        ).toarray()
        assert not np.allclose(forward, backward.T)
