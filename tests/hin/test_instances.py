"""Unit tests for path-instance enumeration."""

import pytest

from repro.hin.errors import QueryError
from repro.hin.instances import count_path_instances, path_instances


class TestPathInstances:
    def test_tom_kdd_instances(self, fig4):
        path = fig4.schema.path("APC")
        instances = path_instances(fig4, path, "Tom", "KDD")
        assert set(instances) == {
            ("Tom", "p1", "KDD"),
            ("Tom", "p2", "KDD"),
        }

    def test_no_target_enumerates_all(self, fig4):
        path = fig4.schema.path("APC")
        instances = path_instances(fig4, path, "Mary")
        assert set(instances) == {
            ("Mary", "p2", "KDD"),
            ("Mary", "p3", "SIGMOD"),
        }

    def test_unreachable_pair_empty(self, fig4):
        path = fig4.schema.path("APC")
        assert path_instances(fig4, path, "Tom", "SIGMOD") == []

    def test_limit_respected(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        instances = path_instances(graph, path, hub, limit=7)
        assert len(instances) == 7

    def test_instances_are_valid_walks(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        for instance in path_instances(graph, path, hub, limit=10):
            assert len(instance) == path.length + 1
            for step, (src, tgt) in enumerate(
                zip(instance, instance[1:])
            ):
                relation = path.relations[step]
                neighbors = {
                    k for k, _ in graph.out_neighbors(relation.name, src)
                }
                assert tgt in neighbors

    def test_longer_path_through_coauthors(self, fig4):
        path = fig4.schema.path("APAPC")
        instances = path_instances(fig4, path, "Tom", "SIGMOD")
        assert ("Tom", "p2", "Mary", "p3", "SIGMOD") in instances

    def test_deterministic_order(self, fig4):
        path = fig4.schema.path("APC")
        assert path_instances(fig4, path, "Tom") == path_instances(
            fig4, path, "Tom"
        )

    def test_validation(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            path_instances(fig4, path, "ghost")
        with pytest.raises(QueryError):
            path_instances(fig4, path, "Tom", "ghost")
        with pytest.raises(QueryError):
            path_instances(fig4, path, "Tom", limit=0)


class TestCountPathInstances:
    def test_matches_enumeration(self, fig4):
        path = fig4.schema.path("APC")
        for author in fig4.node_keys("author"):
            for conference in fig4.node_keys("conference"):
                enumerated = len(
                    path_instances(fig4, path, author, conference, limit=10_000)
                )
                counted = count_path_instances(
                    fig4, path, author, conference
                )
                assert counted == enumerated

    def test_matches_enumeration_on_acm(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        counted = count_path_instances(graph, path, hub, "KDD")
        enumerated = len(
            path_instances(graph, path, hub, "KDD", limit=10_000)
        )
        assert counted == enumerated
        assert counted > 10  # the planted heavy record

    def test_validation(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            count_path_instances(fig4, path, "ghost", "KDD")
