"""Unit tests for the typed sparse graph."""

import numpy as np
import pytest

from repro.hin.errors import GraphError, SchemaError
from repro.hin.graph import HeteroGraph
from repro.hin.schema import NetworkSchema


@pytest.fixture()
def schema():
    return NetworkSchema.from_spec(
        [("author", "A"), ("paper", "P")],
        [("writes", "author", "paper")],
    )


@pytest.fixture()
def graph(schema):
    g = HeteroGraph(schema)
    g.add_edge("writes", "alice", "p1")
    g.add_edge("writes", "alice", "p2")
    g.add_edge("writes", "bob", "p2")
    return g


class TestNodes:
    def test_add_node_returns_index(self, schema):
        g = HeteroGraph(schema)
        assert g.add_node("author", "alice") == 0
        assert g.add_node("author", "bob") == 1

    def test_add_node_idempotent(self, schema):
        g = HeteroGraph(schema)
        first = g.add_node("author", "alice")
        again = g.add_node("author", "alice")
        assert first == again
        assert g.num_nodes("author") == 1

    def test_same_key_different_types_are_distinct(self, schema):
        g = HeteroGraph(schema)
        g.add_node("author", "x")
        g.add_node("paper", "x")
        assert g.num_nodes("author") == 1
        assert g.num_nodes("paper") == 1

    def test_node_index_and_key_roundtrip(self, graph):
        idx = graph.node_index("author", "bob")
        assert graph.node_key("author", idx) == "bob"

    def test_node_index_unknown_raises(self, graph):
        with pytest.raises(GraphError):
            graph.node_index("author", "ghost")

    def test_node_key_out_of_range_raises(self, graph):
        with pytest.raises(GraphError):
            graph.node_key("author", 99)

    def test_unknown_type_raises_schema_error(self, graph):
        with pytest.raises(SchemaError):
            graph.add_node("ghost", "x")
        with pytest.raises(SchemaError):
            graph.node_keys("ghost")

    def test_add_nodes_bulk(self, schema):
        g = HeteroGraph(schema)
        indices = g.add_nodes("paper", ["p1", "p2", "p1"])
        assert indices == [0, 1, 0]

    def test_node_keys_is_copy(self, graph):
        keys = graph.node_keys("author")
        keys.append("mallory")
        assert "mallory" not in graph.node_keys("author")

    def test_num_nodes_total(self, graph):
        assert graph.num_nodes() == graph.num_nodes("author") + graph.num_nodes("paper")

    def test_has_node(self, graph):
        assert graph.has_node("author", "alice")
        assert not graph.has_node("author", "ghost")


class TestEdges:
    def test_edge_creates_endpoints(self, schema):
        g = HeteroGraph(schema)
        g.add_edge("writes", "carol", "p9")
        assert g.has_node("author", "carol")
        assert g.has_node("paper", "p9")

    def test_num_edges(self, graph):
        assert graph.num_edges("writes") == 3
        assert graph.num_edges() == 3

    def test_num_edges_inverse_name(self, graph):
        assert graph.num_edges("writes^-1") == 3

    def test_inverse_edge_stored_forward(self, schema):
        g = HeteroGraph(schema)
        g.add_edge("writes^-1", "p1", "alice")
        assert g.adjacency("writes")[
            g.node_index("author", "alice"), g.node_index("paper", "p1")
        ] == 1.0

    def test_negative_weight_rejected(self, schema):
        g = HeteroGraph(schema)
        with pytest.raises(GraphError):
            g.add_edge("writes", "alice", "p1", weight=-1.0)

    def test_parallel_edges_accumulate(self, schema):
        g = HeteroGraph(schema)
        g.add_edge("writes", "alice", "p1")
        g.add_edge("writes", "alice", "p1")
        matrix = g.adjacency("writes")
        assert matrix[0, 0] == 2.0
        assert g.num_edges("writes") == 2

    def test_add_edges_bulk(self, schema):
        g = HeteroGraph(schema)
        g.add_edges("writes", [("a", "p1"), ("b", "p2")])
        assert g.num_edges("writes") == 2


class TestAdjacency:
    def test_shape(self, graph):
        matrix = graph.adjacency("writes")
        assert matrix.shape == (
            graph.num_nodes("author"),
            graph.num_nodes("paper"),
        )

    def test_values(self, graph):
        matrix = graph.adjacency("writes").toarray()
        alice = graph.node_index("author", "alice")
        bob = graph.node_index("author", "bob")
        p1 = graph.node_index("paper", "p1")
        p2 = graph.node_index("paper", "p2")
        assert matrix[alice, p1] == 1
        assert matrix[alice, p2] == 1
        assert matrix[bob, p2] == 1
        assert matrix[bob, p1] == 0

    def test_inverse_is_transpose(self, graph):
        forward = graph.adjacency("writes").toarray()
        backward = graph.adjacency("writes^-1").toarray()
        np.testing.assert_array_equal(backward, forward.T)

    def test_adjacency_reflects_later_mutation(self, graph):
        before = graph.adjacency("writes").nnz
        graph.add_edge("writes", "carol", "p3")
        after = graph.adjacency("writes").nnz
        assert after == before + 1

    def test_weighted_edges(self, schema):
        g = HeteroGraph(schema)
        g.add_edge("writes", "alice", "p1", weight=2.5)
        assert g.adjacency("writes")[0, 0] == 2.5


class TestNeighbors:
    def test_out_neighbors(self, graph):
        neighbors = dict(graph.out_neighbors("writes", "alice"))
        assert neighbors == {"p1": 1.0, "p2": 1.0}

    def test_in_neighbors(self, graph):
        neighbors = dict(graph.in_neighbors("writes", "p2"))
        assert neighbors == {"alice": 1.0, "bob": 1.0}

    def test_out_neighbors_of_inverse(self, graph):
        neighbors = dict(graph.out_neighbors("writes^-1", "p1"))
        assert neighbors == {"alice": 1.0}

    def test_no_neighbors(self, graph):
        graph.add_node("author", "lurker")
        assert graph.out_neighbors("writes", "lurker") == []

    def test_degree(self, graph):
        assert graph.degree("writes", "alice") == 2.0
        assert graph.degree("writes^-1", "p2") == 2.0


class TestSummary:
    def test_summary_mentions_counts(self, graph):
        text = graph.summary()
        assert "author: 2 nodes" in text
        assert "3 edges" in text


class TestConcurrentMutation:
    def test_concurrent_add_edge_never_loses_version_bumps(self, schema):
        """Version counters are read-modify-write: without the mutation
        lock, racing ``+= 1`` bumps lose updates, so a later mutation
        can reuse an already-observed version and every staleness check
        keyed on it silently serves stale data."""
        import sys
        import threading

        graph = HeteroGraph(schema)
        graph.add_node("author", "alice")
        graph.add_node("paper", "p1")
        before = graph.relation_version("writes")
        threads_n, per_thread = 4, 300
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            def mutate():
                for _ in range(per_thread):
                    graph.add_edge("writes", "alice", "p1")

            threads = [
                threading.Thread(target=mutate) for _ in range(threads_n)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(switch)
        total = threads_n * per_thread
        assert graph.num_edges("writes") == total
        assert graph.relation_version("writes") - before == total

    def test_adjacency_tolerates_a_torn_append(self, graph):
        """``matrix()`` builds from the first ``len(weights)`` entries:
        a mutator pre-empted between its list appends must not crash a
        concurrent reader (weights is appended last, so that prefix of
        all three lists is always mutually consistent)."""
        complete = graph.adjacency("writes").nnz
        edges = graph._edges["writes"]
        # Simulate a mutator frozen mid-add: row/col published,
        # weight (and the version bump) still pending.
        edges.rows.append(0)
        edges.cols.append(0)
        edges._csr = None
        torn_view = graph.adjacency("writes")
        assert torn_view.nnz == complete
