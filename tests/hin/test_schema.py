"""Unit tests for schemas: object types, relations, lookups, inverses."""

import pytest

from repro.hin.errors import SchemaError
from repro.hin.schema import NetworkSchema, ObjectType, RelationType


def make_ap_schema():
    return NetworkSchema.from_spec(
        [("author", "A"), ("paper", "P")],
        [("writes", "author", "paper")],
    )


class TestObjectType:
    def test_fields(self):
        otype = ObjectType("author", "A")
        assert otype.name == "author"
        assert otype.code == "A"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ObjectType("", "A")

    def test_empty_code_rejected(self):
        with pytest.raises(SchemaError):
            ObjectType("author", "")

    def test_lowercase_code_rejected(self):
        with pytest.raises(SchemaError):
            ObjectType("author", "a")

    def test_equality_and_hash(self):
        assert ObjectType("author", "A") == ObjectType("author", "A")
        assert hash(ObjectType("author", "A")) == hash(ObjectType("author", "A"))
        assert ObjectType("author", "A") != ObjectType("paper", "P")


class TestRelationType:
    def test_endpoints(self):
        a, p = ObjectType("author", "A"), ObjectType("paper", "P")
        rel = RelationType("writes", a, p)
        assert rel.endpoints == (a, p)
        assert rel.source is a and rel.target is p

    def test_inverse_swaps_endpoints(self):
        a, p = ObjectType("author", "A"), ObjectType("paper", "P")
        rel = RelationType("writes", a, p)
        inv = rel.inverse()
        assert inv.source == p and inv.target == a
        assert inv.name == "writes^-1"

    def test_double_inverse_restores_name(self):
        a, p = ObjectType("author", "A"), ObjectType("paper", "P")
        rel = RelationType("writes", a, p)
        assert rel.inverse().inverse() == rel

    def test_self_relation_flag(self):
        a = ObjectType("author", "A")
        assert RelationType("knows", a, a).is_self_relation
        p = ObjectType("paper", "P")
        assert not RelationType("writes", a, p).is_self_relation

    def test_empty_name_rejected(self):
        a, p = ObjectType("author", "A"), ObjectType("paper", "P")
        with pytest.raises(SchemaError):
            RelationType("", a, p)


class TestNetworkSchema:
    def test_add_and_lookup_type(self):
        schema = NetworkSchema()
        otype = schema.add_object_type("author", "A")
        assert schema.object_type("author") is otype
        assert schema.object_type_by_code("A") is otype

    def test_default_code_is_first_letter(self):
        schema = NetworkSchema()
        otype = schema.add_object_type("paper")
        assert otype.code == "P"

    def test_duplicate_type_name_rejected(self):
        schema = NetworkSchema()
        schema.add_object_type("author", "A")
        with pytest.raises(SchemaError):
            schema.add_object_type("author", "B")

    def test_duplicate_code_rejected(self):
        schema = NetworkSchema()
        schema.add_object_type("author", "A")
        with pytest.raises(SchemaError):
            schema.add_object_type("affiliation", "A")

    def test_unknown_type_lookup_raises(self):
        schema = NetworkSchema()
        with pytest.raises(SchemaError):
            schema.object_type("ghost")
        with pytest.raises(SchemaError):
            schema.object_type_by_code("G")

    def test_add_relation_and_lookup(self):
        schema = make_ap_schema()
        rel = schema.relation("writes")
        assert rel.source.name == "author"
        assert rel.target.name == "paper"

    def test_inverse_relation_lookup(self):
        schema = make_ap_schema()
        inv = schema.relation("writes^-1")
        assert inv.source.name == "paper"
        assert inv.target.name == "author"

    def test_unknown_relation_raises(self):
        schema = make_ap_schema()
        with pytest.raises(SchemaError):
            schema.relation("reads")
        with pytest.raises(SchemaError):
            schema.relation("reads^-1")

    def test_duplicate_relation_rejected(self):
        schema = make_ap_schema()
        with pytest.raises(SchemaError):
            schema.add_relation("writes", "author", "paper")

    def test_relation_with_unknown_endpoint_rejected(self):
        schema = make_ap_schema()
        with pytest.raises(SchemaError):
            schema.add_relation("cites", "paper", "ghost")

    def test_relations_between_includes_inverse(self):
        schema = make_ap_schema()
        forward = schema.relations_between("author", "paper")
        backward = schema.relations_between("paper", "author")
        assert [r.name for r in forward] == ["writes"]
        assert [r.name for r in backward] == ["writes^-1"]

    def test_relation_between_unique(self):
        schema = make_ap_schema()
        assert schema.relation_between("author", "paper").name == "writes"

    def test_relation_between_none_raises(self):
        schema = NetworkSchema.from_spec(
            [("author", "A"), ("paper", "P")], []
        )
        with pytest.raises(SchemaError):
            schema.relation_between("author", "paper")

    def test_relation_between_ambiguous_raises(self):
        schema = NetworkSchema.from_spec(
            [("author", "A"), ("paper", "P")],
            [
                ("writes", "author", "paper"),
                ("reviews", "author", "paper"),
            ],
        )
        with pytest.raises(SchemaError):
            schema.relation_between("author", "paper")

    def test_has_helpers(self):
        schema = make_ap_schema()
        assert schema.has_object_type("author")
        assert not schema.has_object_type("ghost")
        assert schema.has_relation("writes")
        assert schema.has_relation("writes^-1")
        assert not schema.has_relation("reads")

    def test_heterogeneous_flag(self):
        assert make_ap_schema().is_heterogeneous
        homogeneous = NetworkSchema.from_spec([("page", "W")], [])
        assert not homogeneous.is_heterogeneous
        # One type but two relations is heterogeneous per Definition 1.
        multi_rel = NetworkSchema.from_spec(
            [("page", "W")],
            [("links", "page", "page"), ("redirects", "page", "page")],
        )
        assert multi_rel.is_heterogeneous

    def test_contains_and_iter(self):
        schema = make_ap_schema()
        assert "author" in schema
        assert "ghost" not in schema
        assert [t.name for t in schema] == ["author", "paper"]

    def test_object_types_and_relations_listing(self):
        schema = make_ap_schema()
        assert [t.code for t in schema.object_types] == ["A", "P"]
        assert [r.name for r in schema.relations] == ["writes"]


class TestToDot:
    def test_contains_types_and_relations(self):
        schema = make_ap_schema()
        dot = schema.to_dot()
        assert dot.startswith("digraph schema {")
        assert '"author" [label="author (A)"];' in dot
        assert '"author" -> "paper" [label="writes"];' in dot
        assert dot.rstrip().endswith("}")

    def test_custom_name(self):
        dot = make_ap_schema().to_dot(name="bib")
        assert dot.startswith("digraph bib {")
