"""Unit tests for meta-path enumeration."""

import pytest

from repro.datasets.schemas import acm_schema, dblp_schema, toy_apc_schema
from repro.hin.enumerate import enumerate_paths, enumerate_symmetric_paths
from repro.hin.errors import PathError, SchemaError


class TestEnumeratePaths:
    def test_finds_the_paper_author_conference_paths(self):
        schema = acm_schema()
        paths = {p.code() for p in enumerate_paths(
            schema, "author", "conference", max_length=3
        )}
        assert "APVC" in paths

    def test_longer_bound_finds_coauthor_path(self):
        schema = acm_schema()
        paths = {p.code() for p in enumerate_paths(
            schema, "author", "conference", max_length=5
        )}
        assert {"APVC", "APAPVC"} <= paths

    def test_all_results_have_right_endpoints(self):
        schema = dblp_schema()
        for path in enumerate_paths(schema, "author", "term", max_length=4):
            assert path.source_type.name == "author"
            assert path.target_type.name == "term"
            assert path.length <= 4

    def test_results_sorted_and_unique(self):
        schema = acm_schema()
        paths = enumerate_paths(schema, "author", "conference", max_length=5)
        assert len(paths) == len(set(paths))
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths)

    def test_no_backtrack_prunes_round_trips(self):
        schema = toy_apc_schema()
        with_bt = {p.code() for p in enumerate_paths(
            schema, "author", "conference", max_length=4
        )}
        without_bt = {p.code() for p in enumerate_paths(
            schema, "author", "conference", max_length=4,
            allow_backtrack=False,
        )}
        assert "APAPC" in with_bt
        assert "APAPC" not in without_bt
        assert "APC" in without_bt

    def test_same_type_endpoints(self):
        schema = toy_apc_schema()
        codes = {p.code() for p in enumerate_paths(
            schema, "author", "author", max_length=2
        )}
        assert codes == {"APA"}

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            enumerate_paths(toy_apc_schema(), "ghost", "author", 2)

    def test_bad_length_rejected(self):
        with pytest.raises(PathError):
            enumerate_paths(toy_apc_schema(), "author", "paper", 0)

    def test_no_path_between_disconnected_types(self):
        from repro.hin.schema import NetworkSchema

        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B"), ("c", "C")],
            [("r", "a", "b")],  # c is unreachable
        )
        assert enumerate_paths(schema, "a", "c", max_length=5) == []


class TestEnumerateSymmetricPaths:
    def test_all_results_symmetric(self):
        for path in enumerate_symmetric_paths(acm_schema(), "author", 6):
            assert path.is_symmetric
            assert path.source_type.name == "author"
            assert path.target_type.name == "author"

    def test_finds_the_paper_clustering_paths(self):
        codes = {p.code() for p in enumerate_symmetric_paths(
            dblp_schema(), "author", 4
        )}
        assert "APA" in codes
        assert "APCPA" in codes

    def test_length_bound_respected(self):
        for path in enumerate_symmetric_paths(acm_schema(), "paper", 4):
            assert path.length <= 4

    def test_unique_results(self):
        paths = enumerate_symmetric_paths(acm_schema(), "author", 6)
        assert len(paths) == len(set(paths))

    def test_bad_length_rejected(self):
        with pytest.raises(PathError):
            enumerate_symmetric_paths(acm_schema(), "author", 1)

    def test_candidates_feed_path_learning(self, fig4):
        """Enumerated candidates plug into the supervised learner."""
        from repro.core.engine import HeteSimEngine
        from repro.core.pathlearn import learn_path_weights

        candidates = enumerate_paths(
            fig4.schema, "author", "conference", max_length=4
        )
        engine = HeteSimEngine(fig4)
        result = learn_path_weights(
            engine, candidates, [("Tom", "KDD", 1), ("Tom", "SIGMOD", 0)]
        )
        assert sum(result.weights.values()) == pytest.approx(1.0)
