"""Unit tests for the edge-object decomposition (Definition 6, Property 1)."""

import numpy as np
import pytest
from scipy import sparse

from repro.hin.decomposition import decompose_adjacency


class TestDecomposeAdjacency:
    def test_product_recovers_original_unit_weights(self, fig5):
        matrix = fig5.adjacency("r")
        w_ae, w_eb = decompose_adjacency(matrix)
        np.testing.assert_allclose(
            (w_ae @ w_eb).toarray(), matrix.toarray()
        )

    def test_product_recovers_original_weighted(self):
        matrix = sparse.csr_matrix(
            np.array([[4.0, 0.0], [0.0, 9.0], [1.0, 2.0]])
        )
        w_ae, w_eb = decompose_adjacency(matrix)
        np.testing.assert_allclose(
            (w_ae @ w_eb).toarray(), matrix.toarray()
        )

    def test_one_edge_object_per_nonzero(self, fig5):
        matrix = fig5.adjacency("r")
        w_ae, w_eb = decompose_adjacency(matrix)
        assert w_ae.shape == (matrix.shape[0], matrix.nnz)
        assert w_eb.shape == (matrix.nnz, matrix.shape[1])

    def test_each_edge_object_has_one_source_and_target(self, fig5):
        w_ae, w_eb = decompose_adjacency(fig5.adjacency("r"))
        # Each column of W_AE and each row of W_EB has exactly one nonzero.
        assert (np.diff(w_ae.tocsc().indptr) == 1).all()
        assert (np.diff(w_eb.indptr) == 1).all()

    def test_sqrt_weight_construction(self):
        matrix = sparse.csr_matrix(np.array([[4.0]]))
        w_ae, w_eb = decompose_adjacency(matrix)
        assert w_ae.toarray()[0, 0] == pytest.approx(2.0)
        assert w_eb.toarray()[0, 0] == pytest.approx(2.0)

    def test_duplicates_are_accumulated_first(self):
        # Two stored entries at the same coordinate must collapse into a
        # single edge object with the summed weight (Property 1 requires
        # the decomposition be computed on the accumulated relation).
        matrix = sparse.coo_matrix(
            (np.array([1.0, 1.0]), (np.array([0, 0]), np.array([0, 0]))),
            shape=(1, 1),
        )
        w_ae, w_eb = decompose_adjacency(matrix)
        assert w_ae.shape[1] == 1
        np.testing.assert_allclose((w_ae @ w_eb).toarray(), [[2.0]])

    def test_empty_matrix(self):
        matrix = sparse.csr_matrix((3, 4))
        w_ae, w_eb = decompose_adjacency(matrix)
        assert w_ae.shape == (3, 0)
        assert w_eb.shape == (0, 4)
        np.testing.assert_allclose((w_ae @ w_eb).toarray(), np.zeros((3, 4)))

    def test_decomposition_unique_up_to_edge_order(self, fig5):
        """Property 1: the decomposition is unique -- re-running yields
        the same matrices."""
        first = decompose_adjacency(fig5.adjacency("r"))
        second = decompose_adjacency(fig5.adjacency("r"))
        np.testing.assert_allclose(
            first[0].toarray(), second[0].toarray()
        )
        np.testing.assert_allclose(
            first[1].toarray(), second[1].toarray()
        )
