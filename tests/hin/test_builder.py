"""Unit tests for GraphBuilder."""

import pytest

from repro.hin.builder import GraphBuilder
from repro.hin.errors import GraphError, SchemaError
from repro.hin.schema import NetworkSchema


@pytest.fixture()
def schema():
    return NetworkSchema.from_spec(
        [("author", "A"), ("paper", "P")],
        [("writes", "author", "paper")],
    )


class TestGraphBuilder:
    def test_build_basic(self, schema):
        graph = (
            GraphBuilder(schema)
            .edges("writes", [("alice", "p1"), ("bob", "p1")])
            .build()
        )
        assert graph.num_nodes("author") == 2
        assert graph.num_edges("writes") == 2

    def test_isolated_nodes(self, schema):
        graph = GraphBuilder(schema).nodes("author", ["lurker"]).build()
        assert graph.has_node("author", "lurker")
        assert graph.num_edges() == 0

    def test_chaining_returns_self(self, schema):
        builder = GraphBuilder(schema)
        assert builder.nodes("author", []) is builder
        assert builder.edges("writes", []) is builder

    def test_weighted_edges(self, schema):
        graph = (
            GraphBuilder(schema)
            .weighted_edges("writes", [("alice", "p1", 2.5)])
            .build()
        )
        assert graph.adjacency("writes")[0, 0] == 2.5

    def test_negative_weight_rejected_eagerly(self, schema):
        builder = GraphBuilder(schema)
        with pytest.raises(GraphError):
            builder.weighted_edges("writes", [("a", "p", -1.0)])

    def test_unknown_relation_rejected_eagerly(self, schema):
        builder = GraphBuilder(schema)
        with pytest.raises(SchemaError):
            builder.edges("reads", [("a", "p")])

    def test_unknown_type_rejected_eagerly(self, schema):
        builder = GraphBuilder(schema)
        with pytest.raises(SchemaError):
            builder.nodes("ghost", ["x"])

    def test_build_is_repeatable(self, schema):
        builder = GraphBuilder(schema).edges("writes", [("a", "p1")])
        first = builder.build()
        second = builder.build()
        assert first is not second
        assert first.num_edges() == second.num_edges() == 1

    def test_inverse_relation_accepted(self, schema):
        graph = (
            GraphBuilder(schema)
            .edges("writes^-1", [("p1", "alice")])
            .build()
        )
        assert graph.num_edges("writes") == 1
        assert dict(graph.out_neighbors("writes", "alice")) == {"p1": 1.0}

    def test_num_pending_edges(self, schema):
        builder = GraphBuilder(schema)
        assert builder.num_pending_edges == 0
        builder.edges("writes", [("a", "p1"), ("b", "p2")])
        assert builder.num_pending_edges == 2
