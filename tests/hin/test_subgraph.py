"""Unit tests for induced/relation subgraph extraction."""

import numpy as np
import pytest

from repro.core.hetesim import hetesim_pair
from repro.hin.errors import GraphError, SchemaError
from repro.hin.subgraph import induced_subgraph, relation_subgraph


class TestInducedSubgraph:
    def test_keeps_named_nodes_only(self, fig4):
        sub = induced_subgraph(fig4, {"author": ["Tom", "Mary"]})
        assert sub.num_nodes("author") == 2
        assert not sub.has_node("author", "Jim")

    def test_unlisted_types_keep_all_nodes(self, fig4):
        sub = induced_subgraph(fig4, {"author": ["Tom"]})
        assert sub.num_nodes("paper") == fig4.num_nodes("paper")
        assert sub.num_nodes("conference") == fig4.num_nodes("conference")

    def test_edges_require_both_endpoints(self, fig4):
        sub = induced_subgraph(fig4, {"author": ["Tom"]})
        # Only Tom's 2 authorship edges survive.
        assert sub.num_edges("writes") == 2
        assert sub.num_edges("published_in") == fig4.num_edges("published_in")

    def test_weights_preserved(self):
        from repro.datasets.schemas import bipartite_schema
        from repro.hin.graph import HeteroGraph

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1", weight=2.5)
        sub = induced_subgraph(graph, {"a": ["a1"]})
        assert sub.adjacency("r")[0, 0] == 2.5

    def test_unknown_key_rejected(self, fig4):
        with pytest.raises(GraphError):
            induced_subgraph(fig4, {"author": ["ghost"]})

    def test_unknown_type_rejected(self, fig4):
        with pytest.raises(SchemaError):
            induced_subgraph(fig4, {"ghost": ["x"]})

    def test_measures_work_on_slice(self, fig4):
        """HeteSim runs unchanged on the induced slice."""
        sub = induced_subgraph(fig4, {"author": ["Tom", "Mary"]})
        path = sub.schema.path("APC")
        assert hetesim_pair(sub, path, "Tom", "KDD", normalized=False) == (
            pytest.approx(0.5)
        )

    def test_node_order_preserved(self, fig4):
        sub = induced_subgraph(fig4, {"author": ["Mary", "Tom"]})
        # Original insertion order (Tom before Mary), not keep-set order.
        assert sub.node_keys("author") == ["Tom", "Mary"]

    def test_full_keep_is_identity(self, fig4):
        sub = induced_subgraph(fig4, {})
        assert sub.num_nodes() == fig4.num_nodes()
        assert sub.num_edges() == fig4.num_edges()
        np.testing.assert_allclose(
            sub.adjacency("writes").toarray(),
            fig4.adjacency("writes").toarray(),
        )


class TestRelationSubgraph:
    def test_keeps_named_relations_only(self, fig4):
        sub = relation_subgraph(fig4, ["writes"])
        assert sub.num_edges("writes") == fig4.num_edges("writes")
        assert not sub.schema.has_relation("published_in")

    def test_inverse_name_resolves_to_forward(self, fig4):
        sub = relation_subgraph(fig4, ["writes^-1"])
        assert sub.num_edges("writes") == fig4.num_edges("writes")

    def test_untouched_types_kept_by_default(self, fig4):
        sub = relation_subgraph(fig4, ["writes"])
        assert sub.schema.has_object_type("conference")
        assert sub.num_nodes("conference") == 2

    def test_drop_untouched_types(self, fig4):
        sub = relation_subgraph(fig4, ["writes"], drop_untouched_types=True)
        assert not sub.schema.has_object_type("conference")
        assert sub.schema.has_object_type("author")

    def test_unknown_relation_rejected(self, fig4):
        with pytest.raises(SchemaError):
            relation_subgraph(fig4, ["reads"])

    def test_measures_work_on_slice(self, fig4):
        sub = relation_subgraph(fig4, ["writes"])
        path = sub.schema.path("APA")
        assert hetesim_pair(sub, path, "Tom", "Tom") == pytest.approx(1.0)
