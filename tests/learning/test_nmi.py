"""Unit tests for Normalized Mutual Information."""

import numpy as np
import pytest

from repro.hin.errors import QueryError
from repro.learning.nmi import contingency_table, normalized_mutual_information


class TestContingencyTable:
    def test_basic_counts(self):
        table = contingency_table([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_relabelled_inputs(self):
        table = contingency_table([5, 5, 9], ["x", "x", "y"])
        np.testing.assert_array_equal(table, [[2, 0], [0, 1]])

    def test_length_mismatch(self):
        with pytest.raises(QueryError):
            contingency_table([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            contingency_table([], [])


class TestNmi:
    def test_identical_labelings(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [2, 2, 0, 0, 1, 1]
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_symmetric(self):
        a = [0, 0, 1, 1, 2, 2, 0, 1]
        b = [0, 1, 1, 1, 2, 0, 0, 2]
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 3, size=50)
            b = rng.integers(0, 3, size=50)
            nmi = normalized_mutual_information(a, b)
            assert -1e-12 <= nmi <= 1 + 1e-12

    def test_both_constant_is_one(self):
        assert normalized_mutual_information([1, 1, 1], [7, 7, 7]) == 1.0

    def test_one_constant_is_zero(self):
        assert normalized_mutual_information([1, 1, 1], [0, 1, 2]) == 0.0

    def test_partial_agreement_between_zero_and_one(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 0]
        nmi = normalized_mutual_information(a, b)
        assert 0.0 < nmi < 1.0
