"""Unit tests for the link-prediction evaluation harness."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.datasets.movies import make_movie_network
from repro.hin.errors import QueryError
from repro.learning.linkpred import (
    evaluate_link_prediction,
    holdout_split,
)


@pytest.fixture(scope="module")
def movies():
    return make_movie_network(
        seed=0, users_per_genre=10, movies_per_genre=8, watches_per_user=8
    )


class TestHoldoutSplit:
    def test_edge_counts_partition(self, movies):
        # The split operates on *distinct* edges (accumulated adjacency
        # cells), not raw insertions -- parallel watches collapse.
        graph = movies.graph
        total = graph.adjacency("watched").nnz
        training, held = holdout_split(graph, "watched", 0.25, seed=0)
        assert len(held) == round(0.25 * total)
        assert training.adjacency("watched").nnz + len(held) == total

    def test_other_relations_untouched(self, movies):
        graph = movies.graph
        training, _ = holdout_split(graph, "watched", 0.25, seed=0)
        assert training.num_edges("has_genre") == graph.num_edges(
            "has_genre"
        )

    def test_all_nodes_preserved(self, movies):
        graph = movies.graph
        training, _ = holdout_split(graph, "watched", 0.25, seed=0)
        assert training.num_nodes() == graph.num_nodes()

    def test_held_edges_absent_from_training(self, movies):
        graph = movies.graph
        training, held = holdout_split(graph, "watched", 0.25, seed=0)
        # A held-out distinct edge is removed entirely from training.
        kept = training.adjacency("watched")
        for user, movie in held[:20]:
            i = graph.node_index("user", user)
            j = graph.node_index("movie", movie)
            assert kept[i, j] == 0

    def test_deterministic_per_seed(self, movies):
        graph = movies.graph
        _, first = holdout_split(graph, "watched", 0.2, seed=4)
        _, second = holdout_split(graph, "watched", 0.2, seed=4)
        assert first == second

    def test_bad_fraction(self, movies):
        with pytest.raises(QueryError):
            holdout_split(movies.graph, "watched", 0.0)
        with pytest.raises(QueryError):
            holdout_split(movies.graph, "watched", 1.0)


class TestEvaluateLinkPrediction:
    def test_hetesim_beats_chance(self, movies):
        result = evaluate_link_prediction(
            movies.graph, "watched", _hetesim_umgm_scorer,
            holdout_fraction=0.2, seed=0,
        )
        assert result.auc > 0.6
        assert result.num_positives > 0
        assert result.num_negatives == result.num_positives

    def test_random_scorer_near_chance(self, movies):
        import numpy as np

        rng = np.random.default_rng(0)

        def random_scorer(training, user, movie):
            return float(rng.random())

        result = evaluate_link_prediction(
            movies.graph, "watched", random_scorer,
            holdout_fraction=0.2, seed=0,
        )
        assert 0.3 < result.auc < 0.7

    def test_hetesim_beats_random_scorer(self, movies):
        import numpy as np

        rng = np.random.default_rng(1)
        hetesim_result = evaluate_link_prediction(
            movies.graph, "watched", _hetesim_umgm_scorer,
            holdout_fraction=0.2, seed=3,
        )
        random_result = evaluate_link_prediction(
            movies.graph, "watched",
            lambda g, u, m: float(rng.random()),
            holdout_fraction=0.2, seed=3,
        )
        assert hetesim_result.auc > random_result.auc

    def test_negatives_multiplier(self, movies):
        result = evaluate_link_prediction(
            movies.graph, "watched", _hetesim_umgm_scorer,
            holdout_fraction=0.1, negatives_per_positive=2, seed=0,
        )
        assert result.num_negatives == 2 * result.num_positives

    def test_bad_multiplier(self, movies):
        with pytest.raises(QueryError):
            evaluate_link_prediction(
                movies.graph, "watched", _hetesim_umgm_scorer,
                negatives_per_positive=0,
            )

_ENGINES = {}


def _hetesim_umgm_scorer(training, user, movie):
    """HeteSim over the genre path, with one engine per training graph."""
    key = id(training)
    if key not in _ENGINES:
        _ENGINES[key] = HeteSimEngine(training)
    return _ENGINES[key].relevance(user, movie, "UMGM")
