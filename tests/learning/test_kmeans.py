"""Unit tests for the built-in k-means."""

import numpy as np
import pytest

from repro.hin.errors import QueryError
from repro.learning.kmeans import kmeans


def blobs(seed=0, n=30, separation=10.0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [separation, 0.0], [0.0, separation]])
    points = np.concatenate(
        [center + rng.normal(scale=0.5, size=(n, 2)) for center in centers]
    )
    truth = np.repeat(np.arange(3), n)
    return points, truth


class TestKmeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = blobs()
        labels = kmeans(points, 3, seed=0)
        # Same-cluster points must share labels (permutation invariant).
        for cluster in range(3):
            members = labels[truth == cluster]
            assert len(set(members.tolist())) == 1

    def test_deterministic_for_fixed_seed(self):
        points, _ = blobs(seed=1)
        first = kmeans(points, 3, seed=42)
        second = kmeans(points, 3, seed=42)
        np.testing.assert_array_equal(first, second)

    def test_labels_in_range(self):
        points, _ = blobs(seed=2)
        labels = kmeans(points, 4, seed=0)
        assert labels.min() >= 0
        assert labels.max() < 4

    def test_k_equals_one(self):
        points, _ = blobs()
        labels = kmeans(points, 1, seed=0)
        assert set(labels.tolist()) == {0}

    def test_k_equals_n(self):
        points = np.array([[0.0], [1.0], [2.0]])
        labels = kmeans(points, 3, seed=0)
        assert len(set(labels.tolist())) == 3

    def test_identical_points(self):
        points = np.zeros((10, 2))
        labels = kmeans(points, 2, seed=0)
        assert labels.shape == (10,)

    def test_bad_k_rejected(self):
        points, _ = blobs()
        with pytest.raises(QueryError):
            kmeans(points, 0)
        with pytest.raises(QueryError):
            kmeans(points, len(points) + 1)

    def test_non_2d_rejected(self):
        with pytest.raises(QueryError):
            kmeans(np.zeros(5), 2)
