"""Unit tests for cross-validated path-weight learning."""

import math

import pytest

from repro.core.engine import HeteSimEngine
from repro.hin.errors import QueryError
from repro.learning.crossval import cross_validate_path_weights


@pytest.fixture(scope="module")
def acm_setup(acm):
    engine = HeteSimEngine(acm.graph)
    # Labelled author-conference pairs: stars belong to their conference,
    # and do not belong to a systems/theory conference far away.
    pairs = []
    for conf in ("KDD", "SIGMOD", "SIGIR", "SODA", "STOC", "SOSP",
                 "VLDB", "CIKM"):
        pairs.append((f"{conf}-star", conf, 1))
        other = "SOSP" if conf != "SOSP" else "KDD"
        pairs.append((f"{conf}-star", other, 0))
    return engine, pairs


class TestCrossValidation:
    def test_informative_candidates_score_high(self, acm_setup):
        engine, pairs = acm_setup
        result = cross_validate_path_weights(
            engine, ["APVC"], pairs, folds=4, seed=0
        )
        assert result.mean_auc > 0.8
        assert len(result.fold_aucs) >= 2

    def test_mean_weights_normalised(self, acm_setup):
        engine, pairs = acm_setup
        result = cross_validate_path_weights(
            engine, ["APVC", "APVCVPAPVC"], pairs, folds=4, seed=0
        )
        assert sum(result.mean_weights.values()) == pytest.approx(1.0)

    def test_deterministic_per_seed(self, acm_setup):
        engine, pairs = acm_setup
        first = cross_validate_path_weights(
            engine, ["APVC"], pairs, folds=3, seed=5
        )
        second = cross_validate_path_weights(
            engine, ["APVC"], pairs, folds=3, seed=5
        )
        assert first.fold_aucs == second.fold_aucs

    def test_different_seed_different_split(self, acm_setup):
        engine, pairs = acm_setup
        first = cross_validate_path_weights(
            engine, ["APVC"], pairs, folds=4, seed=1
        )
        second = cross_validate_path_weights(
            engine, ["APVC"], pairs, folds=4, seed=2
        )
        # Splits differ; fold AUCs almost surely differ somewhere.
        assert first.fold_aucs != second.fold_aucs or (
            first.mean_auc == second.mean_auc
        )

    def test_single_class_folds_skipped(self, fig4):
        engine = HeteSimEngine(fig4)
        # All-positive labels: every fold is single-class, so no AUCs.
        pairs = [("Tom", "KDD", 1), ("Jim", "SIGMOD", 1)]
        result = cross_validate_path_weights(
            engine, ["APC"], pairs, folds=2, seed=0
        )
        assert result.fold_aucs == []
        assert math.isnan(result.mean_auc)

    def test_bad_folds(self, acm_setup):
        engine, pairs = acm_setup
        with pytest.raises(QueryError):
            cross_validate_path_weights(engine, ["APVC"], pairs, folds=1)
        with pytest.raises(QueryError):
            cross_validate_path_weights(
                engine, ["APVC"], pairs[:2], folds=5
            )
