"""Unit tests for the AUC metric."""

import numpy as np
import pytest

from repro.hin.errors import QueryError
from repro.learning.auc import auc_score


class TestAuc:
    def test_perfect_ranking(self):
        assert auc_score([1, 1, 0, 0], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        assert auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(0.0)

    def test_random_ranking_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_all_ties_is_half(self):
        assert auc_score([1, 0, 1, 0], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_partial_ties_use_midrank(self):
        # positives: 0.9, 0.5; negatives: 0.5, 0.1.
        # Pairs: (0.9>0.5)=1, (0.9>0.1)=1, (0.5=0.5)=0.5, (0.5>0.1)=1.
        assert auc_score([1, 1, 0, 0], [0.9, 0.5, 0.5, 0.1]) == pytest.approx(
            3.5 / 4
        )

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=60)
        labels[0], labels[1] = 1, 0  # ensure both classes
        scores = rng.random(60)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum(
            1.0 if p > n else (0.5 if p == n else 0.0)
            for p in pos
            for n in neg
        )
        expected = wins / (len(pos) * len(neg))
        assert auc_score(labels, scores) == pytest.approx(expected)

    def test_single_class_rejected(self):
        with pytest.raises(QueryError):
            auc_score([1, 1], [0.5, 0.6])
        with pytest.raises(QueryError):
            auc_score([0, 0], [0.5, 0.6])

    def test_non_binary_rejected(self):
        with pytest.raises(QueryError):
            auc_score([0, 1, 2], [0.1, 0.2, 0.3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueryError):
            auc_score([0, 1], [0.1, 0.2, 0.3])
