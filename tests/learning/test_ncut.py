"""Unit tests for Normalized-Cut spectral clustering."""

import numpy as np
import pytest

from repro.hin.errors import QueryError
from repro.learning.ncut import normalized_cut, spectral_embedding
from repro.learning.nmi import normalized_mutual_information


def block_similarity(sizes=(10, 10, 10), within=0.9, between=0.05, seed=0):
    """A noisy block-diagonal similarity matrix with known clusters."""
    rng = np.random.default_rng(seed)
    n = sum(sizes)
    truth = np.repeat(np.arange(len(sizes)), sizes)
    base = np.where(truth[:, None] == truth[None, :], within, between)
    noise = rng.normal(scale=0.02, size=(n, n))
    similarity = np.clip(base + (noise + noise.T) / 2, 0, 1)
    return similarity, truth


class TestSpectralEmbedding:
    def test_shape(self):
        similarity, _ = block_similarity()
        embedding = spectral_embedding(similarity, 3)
        assert embedding.shape == (30, 3)

    def test_rows_unit_norm(self):
        similarity, _ = block_similarity()
        embedding = spectral_embedding(similarity, 3)
        norms = np.linalg.norm(embedding, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_disconnected_rows_produce_no_nans(self):
        similarity = np.zeros((4, 4))
        similarity[:2, :2] = 1.0
        embedding = spectral_embedding(similarity, 2)
        assert not np.isnan(embedding).any()

    def test_non_square_rejected(self):
        with pytest.raises(QueryError):
            spectral_embedding(np.zeros((3, 4)), 2)

    def test_bad_k_rejected(self):
        similarity, _ = block_similarity()
        with pytest.raises(QueryError):
            spectral_embedding(similarity, 0)
        with pytest.raises(QueryError):
            spectral_embedding(similarity, 31)


class TestNormalizedCut:
    def test_recovers_blocks(self):
        similarity, truth = block_similarity()
        labels = normalized_cut(similarity, 3, seed=0)
        assert normalized_mutual_information(truth, labels) == pytest.approx(
            1.0
        )

    def test_deterministic_per_seed(self):
        similarity, _ = block_similarity(seed=1)
        first = normalized_cut(similarity, 3, seed=5)
        second = normalized_cut(similarity, 3, seed=5)
        np.testing.assert_array_equal(first, second)

    def test_handles_asymmetric_input(self):
        similarity, truth = block_similarity()
        skewed = similarity.copy()
        skewed[0, 1] += 0.2  # symmetrised internally
        labels = normalized_cut(skewed, 3, seed=0)
        assert normalized_mutual_information(truth, labels) > 0.9

    def test_weak_structure_still_returns_k_groups(self):
        rng = np.random.default_rng(0)
        similarity = rng.random((20, 20))
        labels = normalized_cut(similarity, 4, seed=0)
        assert labels.shape == (20,)
        assert set(labels.tolist()) <= {0, 1, 2, 3}


class TestNcutValue:
    def test_perfect_partition_scores_low(self):
        from repro.learning.ncut import ncut_value

        similarity, truth = block_similarity(between=0.0)
        good = ncut_value(similarity, truth)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 3, size=len(truth))
        bad = ncut_value(similarity, random_labels)
        assert good < bad

    def test_single_cluster_has_zero_cut(self):
        from repro.learning.ncut import ncut_value

        similarity, _ = block_similarity()
        labels = np.zeros(similarity.shape[0], dtype=int)
        assert ncut_value(similarity, labels) == 0.0

    def test_agrees_with_ncut_choice(self):
        """The partition normalized_cut returns scores no worse than a
        random relabelling of the same sizes."""
        from repro.learning.ncut import ncut_value

        similarity, _ = block_similarity(seed=3)
        chosen = normalized_cut(similarity, 3, seed=0)
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(chosen)
        assert ncut_value(similarity, chosen) <= ncut_value(
            similarity, shuffled
        ) + 1e-9

    def test_validation(self):
        from repro.hin.errors import QueryError
        from repro.learning.ncut import ncut_value

        with pytest.raises(QueryError):
            ncut_value(np.zeros((2, 3)), [0, 1])
        with pytest.raises(QueryError):
            ncut_value(np.zeros((2, 2)), [0])
