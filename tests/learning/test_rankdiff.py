"""Unit tests for the average-rank-difference metric (Fig. 6)."""

import pytest

from repro.hin.errors import QueryError
from repro.learning.rankdiff import average_rank_difference, rank_positions


class TestRankPositions:
    def test_one_based_positions(self):
        assert rank_positions(["a", "b", "c"]) == {"a": 1, "b": 2, "c": 3}

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            rank_positions(["a", "a"])


class TestAverageRankDifference:
    def test_identical_rankings_give_zero(self):
        ranking = ["a", "b", "c", "d"]
        assert average_rank_difference(ranking, ranking) == 0.0

    def test_swap_of_adjacent_items(self):
        ground = ["a", "b", "c"]
        measured = ["b", "a", "c"]
        # |1-2| + |2-1| + |3-3| = 2; /3.
        assert average_rank_difference(ground, measured) == pytest.approx(2 / 3)

    def test_reversed_ranking(self):
        ground = ["a", "b", "c", "d"]
        measured = ["d", "c", "b", "a"]
        # Differences: 3, 1, 1, 3 -> mean 2.
        assert average_rank_difference(ground, measured) == pytest.approx(2.0)

    def test_top_n_restricts_ground_truth(self):
        ground = ["a", "b", "c", "d"]
        measured = ["a", "b", "d", "c"]
        assert average_rank_difference(ground, measured, top_n=2) == 0.0

    def test_missing_items_get_worst_rank(self):
        ground = ["a", "b"]
        measured = ["b"]
        # a missing -> rank len(measured)+1 = 2; |1-2| = 1. b: |2-1| = 1.
        assert average_rank_difference(ground, measured) == pytest.approx(1.0)

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(QueryError):
            average_rank_difference([], ["a"])

    def test_bad_top_n_rejected(self):
        with pytest.raises(QueryError):
            average_rank_difference(["a"], ["a"], top_n=0)

    def test_better_ranking_scores_lower(self):
        ground = [f"x{i}" for i in range(20)]
        close = ground[:5] + ground[6:] + [ground[5]]
        far = list(reversed(ground))
        assert average_rank_difference(ground, close) < average_rank_difference(
            ground, far
        )
