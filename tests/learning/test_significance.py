"""Unit tests for paired significance testing."""

import pytest

from repro.hin.errors import QueryError
from repro.learning.significance import sign_test, wilcoxon_test


class TestSignTest:
    def test_unanimous_wins_significant(self):
        first = [0.9] * 10
        second = [0.8] * 10
        result = sign_test(first, second)
        assert result.wins == 10 and result.losses == 0
        assert result.significant()

    def test_balanced_not_significant(self):
        first = [1, 0, 1, 0, 1, 0]
        second = [0, 1, 0, 1, 0, 1]
        result = sign_test(first, second)
        assert result.wins == result.losses == 3
        assert not result.significant()

    def test_ties_dropped(self):
        result = sign_test([1, 1, 2], [1, 1, 1])
        assert result.ties == 2
        assert result.wins == 1

    def test_all_ties_p_one(self):
        result = sign_test([1, 1], [1, 1])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_small_sample_not_significant(self):
        """3 wins of 3 gives p = 0.25 two-sided: not significant."""
        result = sign_test([2, 2, 2], [1, 1, 1])
        assert result.p_value == pytest.approx(0.25)
        assert not result.significant()

    def test_validation(self):
        with pytest.raises(QueryError):
            sign_test([1], [1, 2])
        with pytest.raises(QueryError):
            sign_test([], [])


class TestWilcoxon:
    def test_consistent_margin_significant(self):
        first = [0.9, 0.85, 0.8, 0.88, 0.92, 0.87, 0.83, 0.9]
        second = [value - 0.01 for value in first]
        result = wilcoxon_test(first, second)
        assert result.wins == len(first)
        assert result.significant()

    def test_symmetric_noise_not_significant(self):
        first = [1.0, 2.0, 3.0, 4.0]
        second = [2.0, 1.0, 4.0, 3.0]
        result = wilcoxon_test(first, second)
        assert not result.significant()

    def test_all_ties_p_one(self):
        result = wilcoxon_test([5, 5, 5], [5, 5, 5])
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(QueryError):
            wilcoxon_test([1, 2], [1])


class TestOnExperimentData:
    def test_table5_margin_is_consistent(self):
        """The 9/9 AUC wins of Table 5 reach sign-test significance."""
        from repro.experiments.registry import get_experiment

        records = get_experiment("table5")(seed=0).data["records"]
        hetesim = [r["hetesim"] for r in records]
        pcrw = [r["pcrw"] for r in records]
        result = sign_test(hetesim, pcrw)
        assert result.wins == 9
        assert result.significant()
