"""Unit tests for the ranked-retrieval metrics."""

import pytest

from repro.hin.errors import QueryError
from repro.learning.ranking import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)

RANKING = ["a", "b", "c", "d", "e"]


class TestPrecisionAtK:
    def test_all_relevant(self):
        assert precision_at_k(RANKING, {"a", "b"}, k=2) == 1.0

    def test_none_relevant(self):
        assert precision_at_k(RANKING, {"z"}, k=3) == 0.0

    def test_partial(self):
        assert precision_at_k(RANKING, {"a", "c"}, k=4) == pytest.approx(0.5)

    def test_k_beyond_ranking(self):
        # Missing tail counts against precision (denominator is k).
        assert precision_at_k(["a"], {"a"}, k=2) == pytest.approx(0.5)

    def test_graded_relevance_counts_positive_gain(self):
        assert precision_at_k(RANKING, {"a": 3.0, "b": 0.0}, k=2) == 0.5

    def test_bad_inputs(self):
        with pytest.raises(QueryError):
            precision_at_k(RANKING, {"a"}, k=0)
        with pytest.raises(QueryError):
            precision_at_k([], {"a"}, k=1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "z"], {"a", "b"}) == 1.0

    def test_worst_placement(self):
        ap = average_precision(["x", "y", "a"], {"a"})
        assert ap == pytest.approx(1 / 3)

    def test_known_value(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2.
        ap = average_precision(["a", "x", "b"], {"a", "b"})
        assert ap == pytest.approx((1 + 2 / 3) / 2)

    def test_missing_relevant_items_penalised(self):
        found = average_precision(["a"], {"a"})
        missing = average_precision(["a"], {"a", "z"})
        assert missing < found

    def test_empty_relevant_set(self):
        assert average_precision(RANKING, set()) == 0.0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(RANKING, {"a"}) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(RANKING, {"c"}) == pytest.approx(1 / 3)

    def test_absent(self):
        assert reciprocal_rank(RANKING, {"z"}) == 0.0

    def test_graded(self):
        assert reciprocal_rank(RANKING, {"b": 2.0}) == pytest.approx(0.5)


class TestNdcg:
    def test_perfect_binary_ranking(self):
        assert ndcg_at_k(["a", "b", "x"], {"a", "b"}, k=3) == pytest.approx(1.0)

    def test_reversed_worse_than_perfect(self):
        good = ndcg_at_k(["a", "x"], {"a"}, k=2)
        bad = ndcg_at_k(["x", "a"], {"a"}, k=2)
        assert good > bad > 0

    def test_graded_order_matters(self):
        graded = {"high": 3.0, "low": 1.0}
        best = ndcg_at_k(["high", "low"], graded, k=2)
        worst = ndcg_at_k(["low", "high"], graded, k=2)
        assert best == pytest.approx(1.0)
        assert worst < best

    def test_nothing_relevant(self):
        assert ndcg_at_k(RANKING, set(), k=3) == 0.0

    def test_range(self):
        value = ndcg_at_k(["x", "a", "y", "b"], {"a", "b"}, k=4)
        assert 0 < value < 1

    def test_bad_inputs(self):
        with pytest.raises(QueryError):
            ndcg_at_k(RANKING, {"a"}, k=0)
        with pytest.raises(QueryError):
            ndcg_at_k([], {"a"}, k=1)


class TestOnHetesimRankings:
    def test_metrics_on_real_ranking(self, acm):
        """HeteSim's APVC ranking of the hub author scores near-perfectly
        against his planted home conferences."""
        from repro.core.engine import HeteSimEngine

        engine = HeteSimEngine(acm.graph)
        hub = acm.personas["hub_author"]
        ranking = [k for k, _ in engine.rank(hub, "APVC")]
        relevant = {"KDD", "SIGMOD", "VLDB"}
        assert precision_at_k(ranking, relevant, k=3) == 1.0
        assert reciprocal_rank(ranking, {"KDD"}) == 1.0
        assert ndcg_at_k(ranking, relevant, k=5) > 0.9
