"""Each plugin's matrix/pair/vector/rank against an independent reference.

The legacy baseline functions now delegate to the plugins, so the
references here are computed a different way: the core HeteSim
functions (:mod:`repro.core.hetesim`), raw adjacency-chain products,
and one-hot walk propagation -- never through the measures package.
"""

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.hetesim import hetesim_all_targets, hetesim_matrix
from repro.core.measures import MeasureContext, get_measure
from repro.core.reachprob import reach_prob, reach_row
from repro.datasets.random_hin import make_random_hin
from repro.datasets.schemas import toy_apc_schema
from repro.hin.errors import PathError, QueryError


@pytest.fixture(scope="module")
def hin():
    return make_random_hin(
        toy_apc_schema(),
        sizes={"author": 15, "paper": 25, "conference": 6},
        edge_prob=0.25,
        seed=11,
    )


@pytest.fixture(scope="module")
def ctx(hin):
    return MeasureContext(graph=hin)


def adjacency_counts(graph, path):
    """Independent count-matrix reference: plain adjacency products."""
    matrix = graph.adjacency(path.relations[0].name)
    for relation in path.relations[1:]:
        matrix = matrix @ graph.adjacency(relation.name)
    return matrix.toarray()


class TestHeteSimPlugin:
    def test_vector_matches_core(self, hin, ctx):
        measure = get_measure("hetesim")
        path = hin.schema.path("APC")
        for source in hin.node_keys("author")[:5]:
            expected = hetesim_all_targets(hin, path, source)
            got = measure.vector(ctx, "APC", source)
            assert np.allclose(got, expected, rtol=1e-12, atol=0)

    def test_matrix_matches_core(self, hin, ctx):
        expected = hetesim_matrix(hin, hin.schema.path("APCPA"))
        got = get_measure("hetesim").matrix(ctx, "APCPA")
        assert np.allclose(got, expected, rtol=1e-12, atol=0)

    def test_raw_vector_matches_core(self, hin, ctx):
        path = hin.schema.path("APC")
        source = hin.node_keys("author")[0]
        expected = hetesim_all_targets(hin, path, source, normalized=False)
        got = get_measure("hetesim").vector(
            ctx, "APC", source, normalized=False
        )
        assert np.allclose(got, expected, rtol=1e-12, atol=0)

    def test_rank_and_top_k_consistent(self, hin, ctx):
        measure = get_measure("hetesim")
        source = hin.node_keys("author")[1]
        ranking = measure.rank(ctx, "APC", source)
        assert measure.top_k(ctx, "APC", source, k=3) == ranking[:3]

    def test_engine_rank_agrees(self, hin):
        engine = HeteSimEngine(hin)
        source = hin.node_keys("author")[2]
        plugin = get_measure("hetesim").rank(engine.measures, "APC", source)
        native = engine.rank(source, "APC")
        assert [key for key, _ in plugin] == [key for key, _ in native]
        assert np.allclose(
            [s for _, s in plugin], [s for _, s in native], rtol=1e-12
        )

    def test_unknown_source_rejected(self, ctx):
        with pytest.raises(QueryError, match="ghost"):
            get_measure("hetesim").vector(ctx, "APC", "ghost")


class TestPathSimPlugin:
    def test_matrix_matches_adjacency_chain(self, hin, ctx):
        path = hin.schema.path("APCPA")
        counts = adjacency_counts(hin, path)
        diagonal = np.diag(counts)
        denominator = diagonal[:, None] + diagonal[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = np.where(
                denominator > 0, 2.0 * counts / denominator, 0.0
            )
        got = get_measure("pathsim").matrix(ctx, "APCPA")
        assert np.array_equal(got, expected)

    def test_raw_matrix_is_counts(self, hin, ctx):
        path = hin.schema.path("APCPA")
        got = get_measure("pathsim").matrix(ctx, "APCPA", normalized=False)
        assert np.array_equal(got, adjacency_counts(hin, path))

    def test_pair_vector_rank_agree_with_matrix(self, hin, ctx):
        measure = get_measure("pathsim")
        matrix = measure.matrix(ctx, "APCPA")
        keys = hin.node_keys("author")
        source = keys[3]
        i = hin.node_index("author", source)
        vector = measure.vector(ctx, "APCPA", source)
        assert np.array_equal(vector, matrix[i])
        assert measure.pair(ctx, "APCPA", source, keys[5]) == matrix[i, 5]
        ranking = measure.rank(ctx, "APCPA", source)
        assert ranking[0][1] == matrix[i].max()

    def test_asymmetric_path_rejected(self, ctx):
        measure = get_measure("pathsim")
        with pytest.raises(PathError, match="symmetric"):
            measure.resolve(ctx, "APC")
        with pytest.raises(PathError, match="symmetric"):
            measure.matrix(ctx, "APC")


class TestWalkPlugins:
    def test_vector_is_one_hot_propagation(self, hin, ctx):
        path = hin.schema.path("APC")
        for source in hin.node_keys("author")[:5]:
            expected = reach_row(hin, path, source)
            got = get_measure("pcrw").vector(ctx, "APC", source)
            assert np.array_equal(got, expected)

    def test_matrix_is_reach_prob(self, hin, ctx):
        expected = reach_prob(hin, hin.schema.path("APCPA")).toarray()
        got = get_measure("pcrw").matrix(ctx, "APCPA")
        assert np.array_equal(got, expected)

    def test_pair_matches_vector_entry(self, hin, ctx):
        source = hin.node_keys("author")[0]
        target = hin.node_keys("conference")[2]
        vector = get_measure("pcrw").vector(ctx, "APC", source)
        pair = get_measure("pcrw").pair(ctx, "APC", source, target)
        assert pair == vector[hin.node_index("conference", target)]

    def test_reachprob_scores_identical_to_pcrw(self, hin, ctx):
        source = hin.node_keys("author")[4]
        assert np.array_equal(
            get_measure("reachprob").vector(ctx, "APC", source),
            get_measure("pcrw").vector(ctx, "APC", source),
        )

    def test_block_rows_match_single_vectors(self, hin, ctx):
        prepared = get_measure("pcrw").prepare(ctx, "APC")
        block = prepared.score_rows([0, 3, 7])
        path = hin.schema.path("APC")
        keys = hin.node_keys("author")
        for position, row in enumerate([0, 3, 7]):
            assert np.allclose(
                block[position],
                reach_row(hin, path, keys[row]),
                rtol=1e-12,
                atol=0,
            )


class TestPPRPlugin:
    def test_rank_types_matches_manual_walk(self, hin, ctx):
        from repro.baselines.globalgraph import build_global_index
        from repro.core.measures.pagerank import restart_walk_scores
        from repro.hin.matrices import row_normalize

        source = hin.node_keys("author")[0]
        index = build_global_index(hin)
        adjacency = index.adjacency
        walk = row_normalize((adjacency + adjacency.T).tocsr())
        restart = np.zeros(index.num_nodes)
        restart[
            index.index_of("author", hin.node_index("author", source))
        ] = 1.0
        scores = restart_walk_scores(walk, restart)
        keys = hin.node_keys("conference")
        block = scores[index.type_slice("conference", len(keys))]
        expected = sorted(
            zip(keys, block), key=lambda kv: (-kv[1], kv[0])
        )
        got = get_measure("ppr").rank_types(
            ctx, "author", source, "conference"
        )
        assert [k for k, _ in got] == [k for k, _ in expected]
        assert np.allclose(
            [s for _, s in got], [s for _, s in expected], rtol=1e-12
        )

    def test_path_blind_grouping(self, ctx):
        measure = get_measure("ppr")
        shape_a = measure.resolve(ctx, "APC")
        shape_b = measure.resolve(ctx, "APCPAPC")
        assert shape_a.group_key == shape_b.group_key
        assert shape_a.display == "author~>conference"

    def test_bad_damping_rejected(self):
        from repro.core.measures.pagerank import PPRMeasure

        with pytest.raises(QueryError, match="damping"):
            PPRMeasure(damping=1.0)

    def test_scores_sum_to_one(self, hin, ctx):
        source = hin.node_keys("author")[0]
        prepared = get_measure("ppr").prepare(ctx, "APC")
        index, walk = ctx.global_walk()
        row = hin.node_index("author", source)
        block = prepared.score_rows([row])
        # The full distribution sums to 1; the conference slice is a part.
        assert 0 < block.sum() <= 1 + 1e-9
