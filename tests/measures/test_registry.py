"""Registry behaviour and the shared MeasureContext services."""

import numpy as np
import pytest

from repro.core.cache import PathMatrixCache
from repro.core.engine import HeteSimEngine
from repro.core.measures import (
    Measure,
    MeasureContext,
    available_measures,
    get_measure,
    register_measure,
)
from repro.hin.errors import QueryError

BUILTINS = {
    "combined", "hetesim", "pathsim", "pcrw", "ppr", "reachprob",
}


class TestRegistry:
    def test_all_builtin_measures_registered(self):
        assert BUILTINS <= set(available_measures())

    def test_descriptions_nonempty_and_sorted(self):
        listed = available_measures()
        assert list(listed) == sorted(listed)
        assert all(listed.values())

    def test_unknown_measure_names_available(self):
        with pytest.raises(QueryError, match="hetesim"):
            get_measure("simrankish")

    def test_duplicate_registration_rejected(self):
        class Dup(Measure):
            name = "hetesim"

            def resolve(self, ctx, spec):  # pragma: no cover
                raise NotImplementedError

            def _prepare(self, ctx, spec):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(QueryError, match="duplicate"):
            register_measure(Dup())

    def test_unnamed_measure_rejected(self):
        class NoName(Measure):
            def resolve(self, ctx, spec):  # pragma: no cover
                raise NotImplementedError

            def _prepare(self, ctx, spec):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(QueryError, match="name"):
            register_measure(NoName())


class TestMeasureContext:
    def test_needs_graph_or_engine(self):
        with pytest.raises(QueryError):
            MeasureContext()

    def test_of_coerces_graph_engine_and_context(self, fig4):
        engine = HeteSimEngine(fig4)
        from_graph = MeasureContext.of(fig4)
        from_engine = MeasureContext.of(engine)
        assert from_graph.graph is fig4
        assert from_graph.engine is None
        assert from_engine.engine is engine
        assert from_engine.cache is engine.cache
        assert MeasureContext.of(from_graph) is from_graph

    def test_engine_context_uses_half_memo(self, fig4):
        engine = HeteSimEngine(fig4)
        ctx = engine.measures
        path = engine.path("APC")
        before = engine.materialisation_count
        ctx.halves(path)
        ctx.halves(path)
        assert engine.materialisation_count == before + 1

    def test_engine_measures_property_is_memoised(self, fig4):
        engine = HeteSimEngine(fig4)
        assert engine.measures is engine.measures

    def test_global_walk_memoised_until_mutation(self, fig4):
        ctx = MeasureContext(graph=fig4)
        index_a, walk_a = ctx.global_walk()
        index_b, walk_b = ctx.global_walk()
        assert index_a is index_b and walk_a is walk_b
        fig4.add_edge("writes", "Tom", "p1")
        index_c, _ = ctx.global_walk()
        assert index_c is not index_a


class TestCountMatrixCache:
    """Satellite 1: adjacency counts live under the cache byte budget."""

    def test_count_matrix_cached_and_counted(self, fig4):
        cache = PathMatrixCache(fig4)
        ctx = MeasureContext(graph=fig4, cache=cache)
        path = fig4.schema.path("APCPA")
        misses = cache.stats().misses
        first = ctx.count_matrix(path)
        second = ctx.count_matrix(path)
        stats = cache.stats()
        assert stats.misses == misses + 1
        assert stats.hits >= 1
        assert (first != second).nnz == 0

    def test_count_entries_distinct_from_transition_entries(self, fig4):
        cache = PathMatrixCache(fig4)
        ctx = MeasureContext(graph=fig4, cache=cache)
        path = fig4.schema.path("APC")
        counts = ctx.count_matrix(path)
        reach = ctx.reach(path)
        # Counts are raw instance counts, reach rows are probabilities:
        # the namespaced cache entry must never shadow the PM entry.
        assert counts.sum() >= reach.sum()
        assert (ctx.count_matrix(path) != counts).nnz == 0
        assert (ctx.reach(path) != reach).nnz == 0

    def test_count_matrix_invalidated_by_mutation(self, fig4):
        cache = PathMatrixCache(fig4)
        ctx = MeasureContext(graph=fig4, cache=cache)
        path = fig4.schema.path("APC")
        before = ctx.count_matrix(path).sum()
        fig4.add_edge("writes", "Tom", "p3")
        after = ctx.count_matrix(path).sum()
        assert after != before

    def test_count_matrix_matches_uncached(self, fig4):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APCPA")
        cached = MeasureContext(graph=fig4, cache=cache).count_matrix(path)
        plain = MeasureContext(graph=fig4).count_matrix(path)
        assert (cached != plain).nnz == 0

    def test_path_count_matrix_routes_through_cache(self, fig4):
        from repro.baselines.pathsim import path_count_matrix

        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APCPA")
        first = path_count_matrix(fig4, path, cache=cache)
        hits = cache.stats().hits
        second = path_count_matrix(fig4, path, cache=cache)
        assert cache.stats().hits > hits
        assert (first != second).nnz == 0


class TestMeasureMetrics:
    def test_prepare_and_query_counters_carry_measure_label(self, fig4):
        from repro.obs.metrics import REGISTRY

        prepares = REGISTRY.counter(
            "repro_measure_prepares_total", ""
        ).labels(measure="pathsim")
        queries = REGISTRY.counter(
            "repro_measure_queries_total", ""
        ).labels(measure="pathsim")
        p0, q0 = prepares.value, queries.value
        get_measure("pathsim").rank(
            MeasureContext(graph=fig4), "APCPA", "Tom"
        )
        assert prepares.value == p0 + 1
        assert queries.value == q0 + 1
