"""Tests for the measure plugin protocol (repro.core.measures)."""
