"""Failure-injection tests: corrupted inputs fail loudly and precisely.

A production library's error behaviour is part of its contract: corrupted
files, truncated stores, and mid-stream mutations must surface as typed
errors (never silent wrong answers) with actionable messages.
"""

import json

import pytest
from scipy import sparse

from repro.core.cache import PathMatrixCache
from repro.core.engine import HeteSimEngine
from repro.core.store import MatrixStore
from repro.hin.errors import GraphError, ReproError
from repro.hin.io import load_graph, save_graph


class TestCorruptedGraphFiles:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_graph(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "absent.json")

    def test_wrong_version_field(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["format_version"] = "banana"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_edge_referencing_unknown_relation(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["edges"]["reviews"] = [["Tom", "p1", 1.0]]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ReproError):
            load_graph(path)

    def test_negative_weight_rejected_on_load(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["edges"]["writes"][0][2] = -3.0
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(GraphError):
            load_graph(path)


class TestCorruptedMatrixStore:
    def test_index_pointing_at_missing_file(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        # Delete the payload but keep the index entry.
        for npz in tmp_path.glob("*.npz"):
            npz.unlink()
        with pytest.raises(FileNotFoundError):
            store.load(path)

    def test_corrupted_index_json(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC")])
        (tmp_path / "index.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            store.stored_paths()

    def test_load_into_wrong_schema_graph(self, fig4, fig5, tmp_path):
        """A store built on one schema cannot silently load into a graph
        whose schema lacks the stored relations."""
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC")])
        cache = PathMatrixCache(fig5)
        with pytest.raises(ReproError):
            store.load_into(cache)


class TestCliErrorPaths:
    def test_missing_graph_file(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(
                ["query", str(tmp_path / "nope.json"), "--path", "APC",
                 "--source", "a", "--target", "b"]
            )


class TestMutationDuringUse:
    def test_engine_never_serves_stale_scores(self, fig4):
        """Interleaved mutation and querying always reflects the latest
        graph (the version-counter contract)."""
        engine = HeteSimEngine(fig4)
        assert engine.relevance("Jim", "KDD", "APC") == 0.0
        fig4.add_edge("writes", "Jim", "p1")  # p1 is in KDD
        assert engine.relevance("Jim", "KDD", "APC") > 0.0
        fig4.add_edge("published_in", "p5", "KDD")
        fig4.add_edge("writes", "Jim", "p5")
        second = engine.relevance("Jim", "KDD", "APC")
        assert second > 0.0

    def test_pathsim_sees_latest_adjacency(self, fig4):
        from repro.baselines.pathsim import pathsim_pair

        path = fig4.schema.path("APA")
        before = pathsim_pair(fig4, path, "Tom", "Jim")
        assert before == 0.0
        fig4.add_edge("writes", "Jim", "p1")
        after = pathsim_pair(fig4, path, "Tom", "Jim")
        assert after > 0.0
