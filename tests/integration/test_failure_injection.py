"""Failure-injection tests: corrupted inputs fail loudly and precisely.

A production library's error behaviour is part of its contract: corrupted
files, truncated stores, and mid-stream mutations must surface as typed
errors (never silent wrong answers) with actionable messages.
"""

import json

import pytest
from scipy import sparse

from repro.core.cache import PathMatrixCache
from repro.core.engine import HeteSimEngine
from repro.core.store import MatrixStore
from repro.hin.errors import GraphError, ReproError
from repro.hin.io import load_graph, save_graph


class TestCorruptedGraphFiles:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_graph(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "absent.json")

    def test_wrong_version_field(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["format_version"] = "banana"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_edge_referencing_unknown_relation(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["edges"]["reviews"] = [["Tom", "p1", 1.0]]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ReproError):
            load_graph(path)

    def test_negative_weight_rejected_on_load(self, fig4, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(fig4, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["edges"]["writes"][0][2] = -3.0
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(GraphError):
            load_graph(path)


class TestCorruptedMatrixStore:
    def test_index_pointing_at_missing_file(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        # Delete the payload but keep the index entry.
        for npz in tmp_path.glob("*.npz"):
            npz.unlink()
        with pytest.raises(FileNotFoundError):
            store.load(path)

    def test_corrupted_index_json(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC")])
        (tmp_path / "index.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            store.stored_paths()

    def test_load_into_wrong_schema_graph(self, fig4, fig5, tmp_path):
        """A store built on one schema cannot silently load into a graph
        whose schema lacks the stored relations."""
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC")])
        cache = PathMatrixCache(fig5)
        with pytest.raises(ReproError):
            store.load_into(cache)


class TestCliErrorPaths:
    def test_missing_graph_file(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(
                ["query", str(tmp_path / "nope.json"), "--path", "APC",
                 "--source", "a", "--target", "b"]
            )


class TestMutationDuringUse:
    def test_engine_never_serves_stale_scores(self, fig4):
        """Interleaved mutation and querying always reflects the latest
        graph (the version-counter contract)."""
        engine = HeteSimEngine(fig4)
        assert engine.relevance("Jim", "KDD", "APC") == 0.0
        fig4.add_edge("writes", "Jim", "p1")  # p1 is in KDD
        assert engine.relevance("Jim", "KDD", "APC") > 0.0
        fig4.add_edge("published_in", "p5", "KDD")
        fig4.add_edge("writes", "Jim", "p5")
        second = engine.relevance("Jim", "KDD", "APC")
        assert second > 0.0

    def test_pathsim_sees_latest_adjacency(self, fig4):
        from repro.baselines.pathsim import pathsim_pair

        path = fig4.schema.path("APA")
        before = pathsim_pair(fig4, path, "Tom", "Jim")
        assert before == 0.0
        fig4.add_edge("writes", "Jim", "p1")
        after = pathsim_pair(fig4, path, "Tom", "Jim")
        assert after > 0.0


class TestInjectedRuntimeFaults:
    """Deterministic FaultPlan-driven faults in the executor and store."""

    def test_executor_step_failure_mid_chain(self, fig4):
        from repro.runtime.faults import (
            SITE_EXECUTOR_STEP,
            FaultPlan,
            FaultSpec,
        )
        from repro.runtime.limits import execution_scope
        from repro.core.backend import materialise
        from repro.hin.errors import InjectedFaultError

        path = fig4.schema.path("APCPA")
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 1, "fail")])
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError) as excinfo:
                materialise(fig4, path)
        assert excinfo.value.site == SITE_EXECUTOR_STEP
        assert excinfo.value.occurrence == 1
        assert plan.fired == [(SITE_EXECUTOR_STEP, 1, "fail")]

    def test_failed_chain_does_not_poison_the_cache(self, fig4):
        """A crash mid-materialisation leaves the engine able to answer
        the same query correctly afterwards."""
        from repro.runtime.faults import (
            SITE_EXECUTOR_STEP,
            FaultPlan,
            FaultSpec,
        )
        from repro.runtime.limits import execution_scope
        from repro.hin.errors import InjectedFaultError

        expected = HeteSimEngine(fig4).relevance("Tom", "Tom", "APCPA")
        engine = HeteSimEngine(fig4)
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 0, "fail")])
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError):
                engine.relevance("Tom", "Tom", "APCPA")
        assert engine.relevance("Tom", "Tom", "APCPA") == pytest.approx(
            expected
        )

    def test_deadline_breach_on_long_path_degrades_with_provenance(
        self, fig4
    ):
        from repro.runtime.limits import ExecutionLimits
        from repro.runtime.resilience import DegradedResult

        runtime = HeteSimEngine(fig4).runtime(
            ExecutionLimits(deadline_ms=0)
        )
        result = runtime.relevance("Tom", "Tom", "APCPA")
        assert isinstance(result, DegradedResult)
        assert result.degraded
        assert result.tripped == "deadline"
        assert result.attempts[0].strategy == "exact"
        assert result.attempts[0].error == "DeadlineExceededError"
        assert result.attempts[-1].succeeded

    def test_deadline_breach_fail_mode_raises_exact_type(self, fig4):
        from repro.hin.errors import DeadlineExceededError
        from repro.runtime.limits import ExecutionLimits

        runtime = HeteSimEngine(fig4).runtime(
            ExecutionLimits(deadline_ms=0), on_limit="fail"
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            runtime.relevance("Tom", "Tom", "APCPA")
        assert excinfo.value.limit == "deadline"

    def test_checksum_mismatch_on_disk_is_integrity_error(
        self, fig4, tmp_path
    ):
        from repro.hin.errors import StoreIntegrityError

        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        npz = next(tmp_path.glob("*.npz"))
        payload = bytearray(npz.read_bytes())
        payload[0] ^= 0xFF
        npz.write_bytes(bytes(payload))
        with pytest.raises(StoreIntegrityError) as excinfo:
            store.load(path)
        assert "checksum mismatch" in str(excinfo.value)

    def test_injected_corrupt_read_is_caught_by_checksum(
        self, fig4, tmp_path
    ):
        """Corruption injected into the read path (not the disk) is also
        detected: verification covers the whole IO pipeline."""
        from repro.hin.errors import StoreIntegrityError
        from repro.runtime.faults import (
            SITE_STORE_READ,
            FaultPlan,
            FaultSpec,
        )
        from repro.runtime.limits import execution_scope

        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        plan = FaultPlan([FaultSpec(SITE_STORE_READ, 0, "corrupt")])
        with execution_scope(faults=plan):
            with pytest.raises(StoreIntegrityError):
                store.load(path)
        assert plan.fired == [(SITE_STORE_READ, 0, "corrupt")]
        # Outside the fault scope the same store loads cleanly.
        reloaded = store.load(path)
        assert reloaded.nnz > 0
