"""Integration tests for the general relevance-search CLI."""

import pytest

from repro.cli import main
from repro.hin.io import save_graph


@pytest.fixture()
def graph_file(fig4, tmp_path):
    path = tmp_path / "fig4.json"
    save_graph(fig4, path)
    return str(path)


class TestQuery:
    def test_normalized_query(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1.000000" in out

    def test_raw_query(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD", "--raw"]
        )
        assert code == 0
        assert "0.500000" in capsys.readouterr().out

    def test_unknown_object_exits_nonzero(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "ghost", "--target", "KDD"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_path_exits_nonzero(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "AXY",
             "--source", "Tom", "--target", "KDD"]
        )
        assert code == 2


class TestTopK:
    def test_topk_output(self, graph_file, capsys):
        code = main(
            ["topk", graph_file, "--path", "APC", "--source", "Tom", "-k", "2"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "KDD" in lines[0]


class TestProfile:
    def test_profile_output(self, graph_file, capsys):
        code = main(
            [
                "profile", graph_file, "--source", "Tom",
                "--paths", "conferences=APC", "coauthors=APA", "-k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conferences:" in out
        assert "coauthors:" in out
        assert "Tom" in out  # self tops the symmetric co-author path

    def test_malformed_paths_item(self, graph_file, capsys):
        code = main(
            ["profile", graph_file, "--source", "Tom", "--paths", "APC"]
        )
        assert code == 2
        assert "LABEL=PATH" in capsys.readouterr().err


class TestValidate:
    def test_clean_graph(self, graph_file, capsys):
        code = main(["validate", graph_file])
        assert code == 0
        assert "GraphReport" in capsys.readouterr().out

    def test_graph_with_errors_exits_one(self, tmp_path, capsys):
        from repro.hin.graph import HeteroGraph
        from repro.hin.schema import NetworkSchema

        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B")], [("r", "a", "b")]
        )
        graph = HeteroGraph(schema)
        graph.add_node("a", "only")
        target = tmp_path / "broken.json"
        save_graph(graph, target)
        assert main(["validate", str(target)]) == 1


class TestExplain:
    def test_explain_output(self, graph_file, capsys):
        code = main(
            ["explain", graph_file, "--path", "APC",
             "--source", "Mary", "--target", "KDD"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p2" in out
        assert "share=100.0%" in out

    def test_unrelated_pair(self, graph_file, capsys):
        code = main(
            ["explain", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "SIGMOD"]
        )
        assert code == 0
        assert "relevance is 0" in capsys.readouterr().out


class TestAutoProfile:
    def test_profiles_every_reachable_type(self, graph_file, capsys):
        code = main(
            ["autoprofile", graph_file, "--type", "author", "--key", "Tom",
             "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Profile of author 'Tom':" in out
        assert "paper (path AP):" in out
        assert "conference (path APC):" in out

    def test_unknown_object(self, graph_file, capsys):
        code = main(
            ["autoprofile", graph_file, "--type", "author", "--key", "zz"]
        )
        assert code == 2


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        code = main(["stats", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "writes: 6 edges" in out
        assert "density" in out

    def test_stats_with_path_estimate(self, graph_file, capsys):
        code = main(["stats", graph_file, "--path", "APC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "path APC:" in out
        assert "result cells" in out


class TestPaths:
    def test_enumerates_paths(self, graph_file, capsys):
        code = main(
            ["paths", graph_file, "--source", "author",
             "--target", "conference", "--max-length", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "APC" in out
        assert "APAPC" in out
        assert "writes" in out

    def test_unknown_type(self, graph_file):
        code = main(
            ["paths", graph_file, "--source", "ghost", "--target", "author"]
        )
        assert code == 2
