"""Integration tests for the general relevance-search CLI."""

import pytest

from repro.cli import main
from repro.hin.io import save_graph


@pytest.fixture()
def graph_file(fig4, tmp_path):
    path = tmp_path / "fig4.json"
    save_graph(fig4, path)
    return str(path)


class TestQuery:
    def test_normalized_query(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1.000000" in out

    def test_raw_query(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD", "--raw"]
        )
        assert code == 0
        assert "0.500000" in capsys.readouterr().out

    def test_unknown_object_exits_nonzero(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "ghost", "--target", "KDD"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_path_exits_nonzero(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "AXY",
             "--source", "Tom", "--target", "KDD"]
        )
        assert code == 2


class TestTopK:
    def test_topk_output(self, graph_file, capsys):
        code = main(
            ["topk", graph_file, "--path", "APC", "--source", "Tom", "-k", "2"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "KDD" in lines[0]


class TestProfile:
    def test_profile_output(self, graph_file, capsys):
        code = main(
            [
                "profile", graph_file, "--source", "Tom",
                "--paths", "conferences=APC", "coauthors=APA", "-k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conferences:" in out
        assert "coauthors:" in out
        assert "Tom" in out  # self tops the symmetric co-author path

    def test_malformed_paths_item(self, graph_file, capsys):
        code = main(
            ["profile", graph_file, "--source", "Tom", "--paths", "APC"]
        )
        assert code == 2
        assert "LABEL=PATH" in capsys.readouterr().err


class TestValidate:
    def test_clean_graph(self, graph_file, capsys):
        code = main(["validate", graph_file])
        assert code == 0
        assert "GraphReport" in capsys.readouterr().out

    def test_graph_with_errors_exits_one(self, tmp_path, capsys):
        from repro.hin.graph import HeteroGraph
        from repro.hin.schema import NetworkSchema

        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B")], [("r", "a", "b")]
        )
        graph = HeteroGraph(schema)
        graph.add_node("a", "only")
        target = tmp_path / "broken.json"
        save_graph(graph, target)
        assert main(["validate", str(target)]) == 1


class TestExplain:
    def test_explain_output(self, graph_file, capsys):
        code = main(
            ["explain", graph_file, "--path", "APC",
             "--source", "Mary", "--target", "KDD"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p2" in out
        assert "share=100.0%" in out

    def test_unrelated_pair(self, graph_file, capsys):
        code = main(
            ["explain", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "SIGMOD"]
        )
        assert code == 0
        assert "relevance is 0" in capsys.readouterr().out


class TestAutoProfile:
    def test_profiles_every_reachable_type(self, graph_file, capsys):
        code = main(
            ["autoprofile", graph_file, "--type", "author", "--key", "Tom",
             "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Profile of author 'Tom':" in out
        assert "paper (path AP):" in out
        assert "conference (path APC):" in out

    def test_unknown_object(self, graph_file, capsys):
        code = main(
            ["autoprofile", graph_file, "--type", "author", "--key", "zz"]
        )
        assert code == 2


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        code = main(["stats", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "writes: 6 edges" in out
        assert "density" in out

    def test_stats_with_path_estimate(self, graph_file, capsys):
        code = main(["stats", graph_file, "--path", "APC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "path APC:" in out
        assert "result cells" in out


class TestPaths:
    def test_enumerates_paths(self, graph_file, capsys):
        code = main(
            ["paths", graph_file, "--source", "author",
             "--target", "conference", "--max-length", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "APC" in out
        assert "APAPC" in out
        assert "writes" in out

    def test_unknown_type(self, graph_file):
        code = main(
            ["paths", graph_file, "--source", "ghost", "--target", "author"]
        )
        assert code == 2


class TestBoundedQuery:
    def test_zero_deadline_degrades_but_answers(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD", "--deadline-ms", "0"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "HeteSim(Tom, KDD | APC)" in captured.out
        assert "degraded: tripped deadline" in captured.err

    def test_zero_deadline_fail_mode_exits_two(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD",
             "--deadline-ms", "0", "--on-limit", "fail"]
        )
        assert code == 2
        assert "deadline" in capsys.readouterr().err

    def test_byte_budget_degrades_topk(self, graph_file, capsys):
        code = main(
            ["topk", graph_file, "--path", "APCPA", "--source", "Tom",
             "-k", "2", "--max-bytes", "1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2
        assert "degraded: tripped max_bytes" in captured.err

    def test_generous_limits_stay_exact(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD",
             "--deadline-ms", "60000", "--max-bytes", "1000000000"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "1.000000" in captured.out
        assert captured.err == ""


class TestDoctor:
    def test_healthy_graph_passes(self, graph_file, capsys):
        code = main(["doctor", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS] graph.load" in out
        assert "OK" in out

    def test_healthy_store_passes(self, fig4, graph_file, tmp_path, capsys):
        from repro.core.store import MatrixStore

        store_dir = tmp_path / "store"
        MatrixStore(store_dir).save(fig4, [fig4.schema.path("APC")])
        code = main(["doctor", graph_file, "--store", str(store_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS] store.index" in out
        assert "[PASS] store.entry:" in out

    def test_corrupted_store_fails_with_typed_name(
        self, fig4, graph_file, tmp_path, capsys
    ):
        from repro.core.store import MatrixStore

        store_dir = tmp_path / "store"
        MatrixStore(store_dir).save(fig4, [fig4.schema.path("APC")])
        npz = next(store_dir.glob("*.npz"))
        payload = bytearray(npz.read_bytes())
        payload[0] ^= 0xFF
        npz.write_bytes(bytes(payload))
        code = main(["doctor", graph_file, "--store", str(store_dir)])
        assert code == 1
        out = capsys.readouterr().out
        assert "[FAIL] store.entry:" in out
        assert "StoreIntegrityError" in out

    def test_missing_graph_fails(self, tmp_path, capsys):
        code = main(["doctor", str(tmp_path / "absent.json")])
        assert code == 1
        assert "FileNotFoundError" in capsys.readouterr().out


@pytest.fixture()
def clean_tracer():
    """Drop span roots recorded by a CLI invocation under test."""
    from repro.obs import TRACER

    TRACER.disable()
    TRACER.reset()
    yield TRACER
    TRACER.disable()
    TRACER.reset()


class TestServeWarm:
    def test_warm_reports_skipped_odd_paths(
        self, graph_file, tmp_path, capsys
    ):
        # AP is odd (edge-object path): it cannot round-trip through a
        # MatrixStore, and the summary must say so instead of letting
        # the path pass as persisted.
        code = main(
            ["serve-warm", graph_file, "--paths", "AP", "APC",
             "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skipped persisting 1 odd path" in out
        assert "AP" in out

    def test_warm_without_store_mentions_no_skips(
        self, graph_file, capsys
    ):
        code = main(["serve-warm", graph_file, "--paths", "APC"])
        assert code == 0
        assert "skipped" not in capsys.readouterr().out


class TestServeBatchTrace:
    def test_trace_flag_prints_span_tree_to_stderr(
        self, graph_file, capsys, clean_tracer
    ):
        code = main(
            ["serve-batch", graph_file,
             "--queries", "Tom:APC", "Mary:APC", "--trace"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Tom | APC:" in captured.out
        assert "batch.run" in captured.err
        assert "batch.score_group" in captured.err
        assert "engine.materialise_halves" in captured.err

    def test_without_flag_no_span_tree(
        self, graph_file, capsys, clean_tracer
    ):
        code = main(
            ["serve-batch", graph_file, "--queries", "Tom:APC"]
        )
        assert code == 0
        assert "batch.run" not in capsys.readouterr().err


class TestMetricsCommand:
    def test_prometheus_text_reports_nonzero_series(
        self, graph_file, capsys
    ):
        code = main(["metrics", graph_file, "--paths", "APC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_halves_materialisations_total counter" in out
        assert "# TYPE repro_cache_hits_total counter" in out
        assert "# TYPE repro_batch_gemm_seconds histogram" in out
        assert "repro_batch_gemm_seconds_count" in out

    def test_json_reports_nonzero_acceptance_series(
        self, graph_file, capsys
    ):
        import json

        code = main(
            ["metrics", graph_file, "--paths", "APC",
             "--format", "json"]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)

        def total(name, field="value"):
            # Engine/cache labels are per-instance and other suites may
            # have minted some in this process: sum across the series.
            return sum(s[field] for s in snapshot[name]["series"])

        assert total("repro_halves_materialisations_total") >= 1
        assert total("repro_cache_hits_total") >= 1
        assert total("repro_batch_gemm_seconds", "count") >= 1
        assert total("repro_batch_gemm_seconds", "sum") > 0


class TestTraceCommand:
    def test_text_span_trees(self, graph_file, capsys, clean_tracer):
        code = main(["trace", graph_file, "--paths", "APC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.warm" in out
        assert "engine.materialise_halves" in out
        assert "batch.run" in out

    def test_json_span_trees_nest(
        self, graph_file, capsys, clean_tracer
    ):
        import json

        code = main(
            ["trace", graph_file, "--paths", "APC",
             "--format", "json"]
        )
        assert code == 0
        roots = json.loads(capsys.readouterr().out)
        names = [root["name"] for root in roots]
        assert "engine.warm" in names
        warm = roots[names.index("engine.warm")]
        assert any(
            child["name"] == "engine.materialise_halves"
            for child in warm.get("children", [])
        )


class TestMeasuresCommand:
    def test_lists_every_registered_plugin(self, capsys):
        code = main(["measures"])
        assert code == 0
        out = capsys.readouterr().out
        for name in (
            "combined", "hetesim", "pathsim", "pcrw", "ppr", "reachprob",
        ):
            assert name in out


class TestMeasureFlag:
    def test_query_with_pathsim(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APA",
             "--source", "Tom", "--target", "Tom",
             "--measure", "pathsim"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pathsim(Tom, Tom | APA)" in out
        assert "1.000000" in out

    def test_query_with_pcrw(self, graph_file, capsys):
        # Tom's papers (p1, p2) both land in KDD: reach probability 1.
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD",
             "--measure", "pcrw"]
        )
        assert code == 0
        assert "1.000000" in capsys.readouterr().out

    def test_query_unknown_measure_exits_nonzero(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "--path", "APC",
             "--source", "Tom", "--target", "KDD",
             "--measure", "simrankish"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_topk_with_measure(self, graph_file, capsys):
        code = main(
            ["topk", graph_file, "--path", "APC", "--source", "Mary",
             "-k", "2", "--measure", "reachprob"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        # Mary's papers split evenly between the two conferences.
        assert "0.500000" in lines[0]


class TestServeBatchMeasures:
    def test_at_suffix_routes_one_query(self, graph_file, capsys):
        code = main(
            ["serve-batch", graph_file,
             "--queries", "Tom:APC", "Mary:APC@pcrw", "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tom | APC:" in out
        assert "Mary | APC:" in out
        assert "0.500000" in out  # pcrw's even split for Mary

    def test_default_measure_flag_applies_to_all(self, graph_file, capsys):
        code = main(
            ["serve-batch", graph_file, "--measure", "pcrw",
             "--queries", "Mary:APC", "-k", "2"]
        )
        assert code == 0
        assert "0.500000" in capsys.readouterr().out

    def test_bad_item_with_empty_measure_exits_nonzero(
        self, graph_file, capsys
    ):
        code = main(
            ["serve-batch", graph_file, "--queries", "Tom:APC@"]
        )
        assert code == 2
        assert "SOURCE:PATH[@MEASURE]" in capsys.readouterr().err

    def test_unknown_suffix_measure_exits_nonzero(
        self, graph_file, capsys
    ):
        code = main(
            ["serve-batch", graph_file, "--queries", "Tom:APC@nope"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_combined_query_in_batch(self, graph_file, capsys):
        code = main(
            ["serve-batch", graph_file,
             "--queries", "Tom:APC=0.7,APCPAPC=0.3@combined", "-k", "2"]
        )
        assert code == 0
        assert "Tom | APC=0.7,APCPAPC=0.3:" in capsys.readouterr().out
