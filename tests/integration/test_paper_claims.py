"""The paper's headline claims, asserted as one narrative test module.

The abstract promises three attributes -- (1) path-constrained, (2) a
uniform measure over same- and different-typed objects, (3) semi-metric
-- and Section 4.5 adds that HeteSim does *not* obey the triangle
inequality.  Each claim gets a direct check here, on top of the per-module
tests elsewhere.
"""

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.datasets.random_hin import make_random_hin
from repro.datasets.schemas import toy_apc_schema


class TestClaim1PathConstrained:
    """"The relatedness of object pairs are defined based on the search
    path" -- different paths, different scores."""

    def test_different_paths_different_relatedness(self, fig4):
        engine = HeteSimEngine(fig4)
        direct = engine.relevance("Tom", "SIGMOD", "APC")
        via_coauthors = engine.relevance("Tom", "SIGMOD", "APAPC")
        assert direct != via_coauthors

    def test_semantics_follow_the_path(self, acm):
        """APVC emphasises the author's own venues; APT his terms --
        rankings live in different target types entirely, and even two
        author-to-conference paths rank differently."""
        engine = HeteSimEngine(acm.graph)
        hub = acm.personas["hub_author"]
        own = [k for k, _ in engine.top_k(hub, "APVC", k=14)]
        via_coauthors = [
            k for k, _ in engine.top_k(hub, "APAPVC", k=14)
        ]
        assert own != via_coauthors


class TestClaim2UniformMeasure:
    """Same- and different-typed pairs under one definition."""

    def test_same_and_different_typed_queries_share_machinery(self, fig4):
        engine = HeteSimEngine(fig4)
        different_typed = engine.relevance("Tom", "KDD", "APC")
        same_typed = engine.relevance("Tom", "Mary", "APA")
        assert 0 <= different_typed <= 1
        assert 0 <= same_typed <= 1

    def test_arbitrary_odd_paths_supported(self, acm):
        """PathSim cannot handle asymmetric paths; HeteSim must."""
        from repro.baselines.pathsim import pathsim_matrix
        from repro.hin.errors import PathError

        graph = acm.graph
        path = graph.schema.path("APVC")
        scores = hetesim_matrix(graph, path)
        assert scores.max() > 0
        with pytest.raises(PathError):
            pathsim_matrix(graph, path)


class TestClaim3SemiMetric:
    """Non-negativity, identity of indiscernibles, symmetry (Section 4.5)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return make_random_hin(
            toy_apc_schema(),
            sizes={"author": 12, "paper": 25, "conference": 5},
            edge_prob=0.2,
            seed=13,
            ensure_connected_rows=True,
        )

    def test_non_negativity(self, graph):
        for spec in ("APC", "APA", "APCPA"):
            assert (
                hetesim_matrix(graph, graph.schema.path(spec)) >= -1e-15
            ).all()

    def test_identity_of_indiscernibles(self, graph):
        """dis(s, s) = 1 - HeteSim(s, s) = 0 on symmetric paths."""
        matrix = hetesim_matrix(graph, graph.schema.path("APA"))
        connected = np.diag(matrix) > 0
        np.testing.assert_allclose(
            1.0 - np.diag(matrix)[connected], 0.0, atol=1e-12
        )

    def test_symmetry(self, graph):
        path = graph.schema.path("APC")
        forward = hetesim_matrix(graph, path)
        backward = hetesim_matrix(graph, path.reverse())
        np.testing.assert_allclose(forward, backward.T, atol=1e-12)

    def test_triangle_inequality_fails(self):
        """Section 4.5: "it does not obey the triangle inequality" --
        exhibit a violating triple on a concrete network."""
        found = False
        for seed in range(30):
            graph = make_random_hin(
                toy_apc_schema(),
                sizes={"author": 8, "paper": 12, "conference": 3},
                edge_prob=0.25,
                seed=seed,
                ensure_connected_rows=True,
            )
            matrix = hetesim_matrix(graph, graph.schema.path("APA"))
            distance = 1.0 - matrix
            n = matrix.shape[0]
            for a in range(n):
                for b in range(n):
                    for c in range(n):
                        if distance[a, c] > (
                            distance[a, b] + distance[b, c] + 1e-9
                        ):
                            found = True
                            break
                    if found:
                        break
                if found:
                    break
            if found:
                break
        assert found, (
            "expected at least one triangle-inequality violation across "
            "30 random networks (the paper states HeteSim is not a metric)"
        )


class TestHeadlineTasks:
    """"HeteSim can effectively evaluate the relatedness of heterogeneous
    objects" -- the three case-study tasks run end to end."""

    def test_profiling_query_clustering_pipeline(self, acm):
        from repro.core.profiles import build_profile
        from repro.learning.ncut import normalized_cut

        engine = HeteSimEngine(acm.graph)
        hub = acm.personas["hub_author"]

        # Task 1: profiling.
        profile = build_profile(engine, "author", hub, k=3)
        assert profile.section("conference").ranking[0][0] == "KDD"

        # Task 2 flavour: relative importance is comparable across areas.
        kdd_score = engine.relevance(hub, "KDD", "APVC")
        sosp_score = engine.relevance("SOSP-star", "SOSP", "APVC")
        assert 0 < kdd_score <= 1 and 0 < sosp_score <= 1

        # Clustering: the symmetric matrix clusters directly.
        similarity = engine.relevance_matrix("CVPAPVC")
        labels = normalized_cut(similarity, 4, seed=0)
        assert len(set(labels.tolist())) == 4
