"""The README's code snippets must actually run.

Documentation that silently rots is worse than none; this module executes
the quickstart snippet and checks the claims the README makes around it.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def extract_python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = extract_python_blocks(README.read_text(encoding="utf-8"))
        assert blocks, "README lost its quickstart code block"
        namespace = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
        engine = namespace["engine"]
        # The claims made next to the snippet:
        assert engine.relevance("Tom", "KDD", "APC") > 0
        assert engine.top_k("Tom", "APC", k=1)[0][0] == "KDD"

    def test_referenced_files_exist(self):
        text = README.read_text(encoding="utf-8")
        root = README.parent
        for name in (
            "DESIGN.md", "EXPERIMENTS.md", "docs/paper_mapping.md",
            "docs/tutorial.md", "docs/api.md",
        ):
            assert name in text
            assert (root / name).exists(), f"README references missing {name}"
        for match in re.findall(r"`examples/(\w+\.py)`", text):
            assert (root / "examples" / match).exists(), match

    def test_cli_commands_mentioned_exist(self):
        """Every `python -m repro.cli <cmd>` line names a real command."""
        import repro.cli as cli

        parser = cli._build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        available = set(subparsers.choices)
        text = README.read_text(encoding="utf-8")
        used = set(re.findall(r"python -m repro\.cli ([\w-]+)", text))
        assert used <= available, used - available

    def test_experiment_ids_mentioned_are_registered(self):
        from repro.experiments.registry import all_experiments

        registered = set(all_experiments())
        text = README.read_text(encoding="utf-8")
        for experiment_id in re.findall(
            r"python -m repro\.experiments (\w+)", text
        ):
            if experiment_id in ("list", "all", "report"):
                continue
            assert experiment_id in registered
