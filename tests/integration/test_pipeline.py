"""End-to-end integration tests crossing all module boundaries."""

import numpy as np
import pytest

from repro import GraphBuilder, HeteSimEngine, NetworkSchema
from repro.baselines.pathsim import pathsim_matrix
from repro.baselines.pcrw import pcrw_rank
from repro.core.naive import naive_hetesim
from repro.hin.io import load_graph, save_graph
from repro.learning.auc import auc_score
from repro.learning.ncut import normalized_cut
from repro.learning.nmi import normalized_mutual_information


class TestBuildQueryPipeline:
    """Schema -> builder -> engine -> ranked search, in one flow."""

    def test_movie_recommendation_flow(self):
        schema = NetworkSchema.from_spec(
            [("user", "U"), ("movie", "M"), ("genre", "G")],
            [
                ("watched", "user", "movie"),
                ("has_genre", "movie", "genre"),
            ],
        )
        graph = (
            GraphBuilder(schema)
            .edges(
                "watched",
                [
                    ("ann", "matrix"), ("ann", "inception"),
                    ("bob", "inception"), ("bob", "titanic"),
                    ("cat", "titanic"), ("cat", "notebook"),
                ],
            )
            .edges(
                "has_genre",
                [
                    ("matrix", "scifi"), ("inception", "scifi"),
                    ("titanic", "romance"), ("notebook", "romance"),
                ],
            )
            .build()
        )
        engine = HeteSimEngine(graph)

        # Different-typed relevance: ann is a sci-fi person.
        genre_ranking = engine.top_k("ann", "UMG", k=2)
        assert genre_ranking[0][0] == "scifi"
        assert genre_ranking[0][1] > genre_ranking[1][1]

        # Same-typed relevance through a symmetric path.
        user_sim = engine.relevance("ann", "cat", "UMU")
        assert user_sim < engine.relevance("ann", "bob", "UMU")

        # Property 3 on the user-genre path.
        assert engine.relevance("ann", "scifi", "UMG") == pytest.approx(
            engine.relevance("scifi", "ann", engine.path("UMG").reverse())
        )

    def test_engine_matches_naive_on_built_graph(self):
        schema = NetworkSchema.from_spec(
            [("user", "U"), ("item", "I")],
            [("bought", "user", "item")],
        )
        graph = (
            GraphBuilder(schema)
            .weighted_edges(
                "bought",
                [("u1", "i1", 2.0), ("u1", "i2", 1.0), ("u2", "i2", 3.0)],
            )
            .build()
        )
        engine = HeteSimEngine(graph)
        path = engine.path("UI")
        for user in ("u1", "u2"):
            for item in ("i1", "i2"):
                assert engine.relevance(user, item, path) == pytest.approx(
                    naive_hetesim(graph, path, user, item), abs=1e-12
                )


class TestPersistencePipeline:
    def test_save_query_load_query(self, acm, tmp_path):
        """Scores computed before and after a disk round-trip agree."""
        target = tmp_path / "acm.json"
        save_graph(acm.graph, target)
        reloaded = load_graph(target)

        original_engine = HeteSimEngine(acm.graph)
        reloaded_engine = HeteSimEngine(reloaded)
        hub = acm.personas["hub_author"]
        for spec in ("APVC", "APA"):
            np.testing.assert_allclose(
                original_engine.relevance_vector(hub, spec),
                reloaded_engine.relevance_vector(hub, spec),
                atol=1e-12,
            )


class TestLearningPipeline:
    def test_cluster_dblp_conferences_from_hetesim(self, dblp):
        engine = HeteSimEngine(dblp.graph)
        similarity = engine.relevance_matrix("CPAPC")
        labels = normalized_cut(similarity, 4, seed=0)
        truth = [
            dblp.conference_labels[c]
            for c in dblp.graph.node_keys("conference")
        ]
        assert normalized_mutual_information(truth, labels) > 0.8

    def test_auc_pipeline_beats_chance(self, dblp):
        engine = HeteSimEngine(dblp.graph)
        scores = engine.relevance_matrix("CPA")
        graph = dblp.graph
        authors = graph.node_keys("author")
        conference = graph.node_keys("conference")[0]
        area = dblp.conference_labels[conference]
        labels = [
            1 if dblp.author_labels[a] == area else 0 for a in authors
        ]
        conf_index = graph.node_index("conference", conference)
        assert auc_score(labels, scores[conf_index]) > 0.6

    def test_pathsim_and_hetesim_agree_on_shape(self, dblp):
        """Both similarity matrices are valid NCut inputs and cluster the
        conferences into the same partition (up to label names)."""
        engine = HeteSimEngine(dblp.graph)
        path = engine.path("CPAPC")
        hetesim_labels = normalized_cut(
            engine.relevance_matrix(path), 4, seed=0
        )
        pathsim_labels = normalized_cut(
            pathsim_matrix(dblp.graph, path), 4, seed=0
        )
        assert normalized_mutual_information(
            hetesim_labels, pathsim_labels
        ) > 0.8


class TestBaselineComparisonPipeline:
    def test_hetesim_and_pcrw_agree_on_obvious_top1(self, acm):
        """Both measures should put a one-conference author's conference
        first -- the disagreement is in the subtler cases."""
        engine = HeteSimEngine(acm.graph)
        young = acm.personas["young_sigir"]
        path = engine.path("APVC")
        assert engine.top_k(young, path, k=1)[0][0] == "SIGIR"
        assert pcrw_rank(acm.graph, path, young)[0][0] == "SIGIR"


class TestAcmConferenceClustering:
    def test_cvpapvc_similarity_recovers_areas(self, acm_full):
        """Clustering the 14 conferences by shared-author similarity
        recovers the planted research areas (the Table 2 CVPAPVC
        similarity used as a clustering signal)."""
        from repro.learning.ncut import normalized_cut
        from repro.learning.nmi import normalized_mutual_information

        engine = HeteSimEngine(acm_full.graph)
        similarity = engine.relevance_matrix("CVPAPVC")
        conferences = acm_full.graph.node_keys("conference")
        areas = sorted({acm_full.area_of[c] for c in conferences})
        truth = [areas.index(acm_full.area_of[c]) for c in conferences]
        labels = normalized_cut(similarity, len(areas), seed=0)
        assert normalized_mutual_information(truth, labels) > 0.6
