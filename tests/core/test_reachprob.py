"""Unit tests for reachable-probability helpers."""

import numpy as np
import pytest

from repro.core.cache import PathMatrixCache
from repro.core.reachprob import reach_distribution, reach_prob, reach_row
from repro.hin.errors import QueryError
from repro.hin.matrices import reachable_probability_matrix


class TestReachProb:
    def test_matches_direct(self, fig4):
        path = fig4.schema.path("APC")
        np.testing.assert_allclose(
            reach_prob(fig4, path).toarray(),
            reachable_probability_matrix(fig4, path).toarray(),
        )

    def test_uses_cache_when_given(self, fig4):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        reach_prob(fig4, path, cache=cache)
        assert cache.misses == 1
        reach_prob(fig4, path, cache=cache)
        assert cache.hits == 1


class TestReachRow:
    def test_matches_matrix_row(self, fig4):
        path = fig4.schema.path("APC")
        matrix = reachable_probability_matrix(fig4, path).toarray()
        for i, author in enumerate(fig4.node_keys("author")):
            np.testing.assert_allclose(
                reach_row(fig4, path, author), matrix[i]
            )

    def test_is_probability_distribution(self, fig4):
        path = fig4.schema.path("APC")
        row = reach_row(fig4, path, "Tom")
        assert row.sum() == pytest.approx(1.0)
        assert (row >= 0).all()

    def test_unknown_source(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            reach_row(fig4, path, "ghost")

    def test_tom_concentrated_on_kdd(self, fig4):
        path = fig4.schema.path("APC")
        dist = dict(reach_distribution(fig4, path, "Tom"))
        assert dist["KDD"] == pytest.approx(1.0)
        assert dist["SIGMOD"] == pytest.approx(0.0)


class TestReachDistribution:
    def test_pairs_cover_target_type(self, fig4):
        path = fig4.schema.path("APC")
        pairs = reach_distribution(fig4, path, "Mary")
        assert [k for k, _ in pairs] == fig4.node_keys("conference")

    def test_mary_splits_between_conferences(self, fig4):
        path = fig4.schema.path("APC")
        dist = dict(reach_distribution(fig4, path, "Mary"))
        assert dist["KDD"] == pytest.approx(0.5)
        assert dist["SIGMOD"] == pytest.approx(0.5)
