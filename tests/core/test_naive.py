"""Cross-validation: matrix HeteSim vs the two naive references."""

import numpy as np
import pytest

from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.core.naive import naive_hetesim, naive_hetesim_raw
from repro.datasets.random_hin import make_random_hin
from repro.datasets.schemas import toy_apc_schema
from repro.hin.errors import QueryError


@pytest.fixture(scope="module")
def small_graph():
    return make_random_hin(
        toy_apc_schema(),
        sizes={"author": 8, "paper": 12, "conference": 4},
        edge_prob=0.25,
        seed=7,
        ensure_connected_rows=True,
    )


ALL_PATHS = ["AP", "APC", "APA", "CPA", "APCPA", "PAP", "PC"]


class TestNaiveMatchesMatrix:
    @pytest.mark.parametrize("spec", ALL_PATHS)
    def test_normalized_agreement(self, small_graph, spec):
        path = small_graph.schema.path(spec)
        sources = small_graph.node_keys(path.source_type.name)[:4]
        targets = small_graph.node_keys(path.target_type.name)[:4]
        for s in sources:
            for t in targets:
                fast = hetesim_pair(small_graph, path, s, t)
                slow = naive_hetesim(small_graph, path, s, t)
                assert fast == pytest.approx(slow, abs=1e-10)

    @pytest.mark.parametrize("spec", ALL_PATHS)
    def test_raw_agreement(self, small_graph, spec):
        path = small_graph.schema.path(spec)
        sources = small_graph.node_keys(path.source_type.name)[:4]
        targets = small_graph.node_keys(path.target_type.name)[:4]
        for s in sources:
            for t in targets:
                fast = hetesim_pair(
                    small_graph, path, s, t, normalized=False
                )
                slow = naive_hetesim(
                    small_graph, path, s, t, normalized=False
                )
                assert fast == pytest.approx(slow, abs=1e-10)

    @pytest.mark.parametrize("spec", ["AP", "APC", "APA", "APCPA"])
    def test_recursive_raw_agreement(self, small_graph, spec):
        """The Eq. (1) recursion itself matches the matrix form."""
        path = small_graph.schema.path(spec)
        sources = small_graph.node_keys(path.source_type.name)[:3]
        targets = small_graph.node_keys(path.target_type.name)[:3]
        for s in sources:
            for t in targets:
                fast = hetesim_pair(
                    small_graph, path, s, t, normalized=False
                )
                slow = naive_hetesim_raw(small_graph, path, s, t)
                assert fast == pytest.approx(slow, abs=1e-10)

    def test_weighted_graph_agreement(self):
        """Weighted edges flow through both implementations identically."""
        from repro.hin.graph import HeteroGraph
        from repro.datasets.schemas import bipartite_schema

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1", weight=3.0)
        graph.add_edge("r", "a1", "b2", weight=1.0)
        graph.add_edge("r", "a2", "b2", weight=2.0)
        path = graph.schema.path("AB")
        for s in ("a1", "a2"):
            for t in ("b1", "b2"):
                fast = hetesim_pair(graph, path, s, t, normalized=False)
                slow = naive_hetesim(graph, path, s, t, normalized=False)
                recursive = naive_hetesim_raw(graph, path, s, t)
                assert fast == pytest.approx(slow, abs=1e-12)
                assert fast == pytest.approx(recursive, abs=1e-12)


class TestNaiveEdgeCases:
    def test_fig4_example(self, fig4):
        path = fig4.schema.path("APC")
        assert naive_hetesim_raw(fig4, path, "Tom", "KDD") == pytest.approx(0.5)
        assert naive_hetesim(fig4, path, "Tom", "KDD") == pytest.approx(1.0)

    def test_dangling_source_scores_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        assert naive_hetesim(fig4, path, "lurker", "KDD") == 0.0
        assert naive_hetesim_raw(fig4, path, "lurker", "KDD") == 0.0

    def test_unknown_nodes_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            naive_hetesim(fig4, path, "ghost", "KDD")
        with pytest.raises(QueryError):
            naive_hetesim_raw(fig4, path, "Tom", "ghost")
