"""Unit tests for pruned top-k search (Section 4.6, item 3)."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.core.pruning import pruned_top_k
from repro.hin.errors import QueryError


class TestExactMode:
    def test_matches_engine_ranking(self, acm):
        graph = acm.graph
        engine = HeteSimEngine(graph)
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        pruned = pruned_top_k(graph, path, hub, k=5)
        exact = engine.top_k(hub, path, k=5)
        assert pruned.is_exact
        assert [k for k, _ in pruned.ranking] == [k for k, _ in exact]
        for (_, a), (_, b) in zip(pruned.ranking, exact):
            assert a == pytest.approx(b, abs=1e-12)

    def test_reports_pruning_statistics(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        young = acm.personas["young_sigir"]
        result = pruned_top_k(graph, path, young, k=5)
        assert result.candidates_total == graph.num_nodes("conference")
        assert 0 < result.candidates_scored <= result.candidates_total
        assert 0 <= result.pruning_ratio < 1

    def test_prunes_most_candidates_for_focused_author(self, acm):
        """A one-conference author overlaps few conferences: most targets
        are never scored -- the paper's 'very small percentage' claim."""
        graph = acm.graph
        path = graph.schema.path("APVC")
        young = acm.personas["young_sigcomm"]
        result = pruned_top_k(graph, path, young, k=3)
        assert result.pruning_ratio > 0.5

    def test_raw_mode(self, fig4):
        path = fig4.schema.path("APC")
        result = pruned_top_k(fig4, path, "Tom", k=1, normalized=False)
        assert result.ranking[0] == ("KDD", pytest.approx(0.5))


class TestMassPruning:
    def test_tolerance_bounds_dropped_mass(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        result = pruned_top_k(graph, path, hub, k=5, mass_tolerance=0.05)
        assert 0 < result.dropped_mass < 0.05
        assert not result.is_exact

    def test_top1_stable_under_small_threshold(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        exact = pruned_top_k(graph, path, hub, k=1)
        approx = pruned_top_k(graph, path, hub, k=1, mass_tolerance=0.01)
        assert approx.ranking[0][0] == exact.ranking[0][0]

    def test_scores_stay_in_unit_interval(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        result = pruned_top_k(graph, path, hub, k=14, mass_tolerance=0.05)
        for _, score in result.ranking:
            assert -1e-12 <= score <= 1 + 1e-9

    def test_raw_error_bounded_by_dropped_mass(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        exact = dict(
            pruned_top_k(graph, path, hub, k=14, normalized=False).ranking
        )
        approx = pruned_top_k(
            graph, path, hub, k=14, normalized=False, mass_tolerance=0.03
        )
        for key, score in approx.ranking:
            assert abs(score - exact[key]) <= approx.dropped_mass + 1e-12


class TestValidation:
    def test_bad_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            pruned_top_k(fig4, path, "Tom", k=0)

    def test_negative_tolerance(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            pruned_top_k(fig4, path, "Tom", mass_tolerance=-0.1)

    def test_unknown_source(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            pruned_top_k(fig4, path, "ghost")

    def test_dangling_source(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        result = pruned_top_k(fig4, path, "lurker", k=2)
        assert result.candidates_scored == 0
        assert all(score == 0.0 for _, score in result.ranking)
