"""Unit tests for the weighted multi-path measure."""

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.multipath import MultiPathHeteSim
from repro.hin.errors import PathError, QueryError


@pytest.fixture()
def engine(fig4):
    return HeteSimEngine(fig4)


class TestConstruction:
    def test_weights_normalised(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 2.0, "APAPC": 2.0})
        assert multi.weights == {"APC": 0.5, "APAPC": 0.5}

    def test_endpoint_types_exposed(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 1.0})
        assert multi.source_type == "author"
        assert multi.target_type == "conference"

    def test_empty_rejected(self, engine):
        with pytest.raises(QueryError):
            MultiPathHeteSim(engine, {})

    def test_negative_weight_rejected(self, engine):
        with pytest.raises(QueryError):
            MultiPathHeteSim(engine, {"APC": -1.0})

    def test_all_zero_weights_rejected(self, engine):
        with pytest.raises(QueryError):
            MultiPathHeteSim(engine, {"APC": 0.0, "APAPC": 0.0})

    def test_mismatched_endpoints_rejected(self, engine):
        with pytest.raises(PathError):
            MultiPathHeteSim(engine, {"APC": 1.0, "APA": 1.0})


class TestMeasure:
    def test_single_path_equals_plain_hetesim(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 3.0})
        assert multi.relevance("Tom", "KDD") == pytest.approx(
            engine.relevance("Tom", "KDD", "APC")
        )

    def test_combination_is_weighted_average(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 0.25, "APAPC": 0.75})
        expected = 0.25 * engine.relevance(
            "Tom", "SIGMOD", "APC"
        ) + 0.75 * engine.relevance("Tom", "SIGMOD", "APAPC")
        assert multi.relevance("Tom", "SIGMOD") == pytest.approx(expected)

    def test_matrix_matches_pairs(self, engine, fig4):
        multi = MultiPathHeteSim(engine, {"APC": 0.5, "APAPC": 0.5})
        matrix = multi.relevance_matrix()
        for i, author in enumerate(fig4.node_keys("author")):
            for j, conference in enumerate(fig4.node_keys("conference")):
                assert matrix[i, j] == pytest.approx(
                    multi.relevance(author, conference), abs=1e-12
                )

    def test_vector_matches_matrix_row(self, engine, fig4):
        multi = MultiPathHeteSim(engine, {"APC": 0.5, "APAPC": 0.5})
        matrix = multi.relevance_matrix()
        tom = fig4.node_index("author", "Tom")
        np.testing.assert_allclose(
            multi.relevance_vector("Tom"), matrix[tom], atol=1e-12
        )

    def test_scores_stay_in_unit_interval(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 1.0, "APAPC": 2.0})
        matrix = multi.relevance_matrix()
        assert (matrix >= -1e-12).all() and (matrix <= 1 + 1e-9).all()

    def test_combination_blends_semantics(self, engine):
        """APC alone says Tom-SIGMOD = 0; adding the co-author path makes
        the combined score positive but below Tom-KDD."""
        multi = MultiPathHeteSim(engine, {"APC": 0.5, "APAPC": 0.5})
        sigmod = multi.relevance("Tom", "SIGMOD")
        kdd = multi.relevance("Tom", "KDD")
        assert 0 < sigmod < kdd


class TestTopK:
    def test_ranking(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 0.5, "APAPC": 0.5})
        ranking = multi.top_k("Tom", k=2)
        assert ranking[0][0] == "KDD"
        assert ranking[0][1] > ranking[1][1] > 0

    def test_bad_k(self, engine):
        multi = MultiPathHeteSim(engine, {"APC": 1.0})
        with pytest.raises(QueryError):
            multi.top_k("Tom", k=0)
