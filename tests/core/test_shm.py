"""Shared-memory publication: manifests, leases, ownership handoff.

Everything here runs in one process -- the cross-process behaviour
(publish in a worker, adopt in the parent) is exercised end to end by
``tests/serve/test_procs.py``; these tests pin the data-plane
invariants the process tier builds on: byte-exact round trips, the
zero-copy / copy contract, and the lease discipline that makes segment
leaks structurally impossible.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest
from scipy import sparse

from repro.core.shm import (
    ShmLease,
    attach_array,
    attach_csr,
    attach_halves,
    create_segment,
    open_segment,
    publish_array,
    publish_csr,
    publish_halves,
)
from repro.hin.errors import QueryError


def _csr(seed, shape=(7, 5), density=0.4):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape) * (rng.random(shape) < density)
    return sparse.csr_matrix(dense)


def _segment_exists(name):
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        return True
    finally:
        probe.close()


class TestArrayRoundTrip:
    def test_publish_attach_bytes_identical(self):
        array = np.random.default_rng(0).random((6, 4))
        with ShmLease(owner=True) as lease:
            spec = publish_array(array, lease)
            view = attach_array(spec, lease)
            np.testing.assert_array_equal(view, array)
            assert view.dtype == array.dtype

    def test_copy_survives_lease_release(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        lease = ShmLease(owner=True)
        spec = publish_array(array, lease)
        copied = attach_array(spec, lease, copy=True)
        lease.release()
        np.testing.assert_array_equal(copied, array)

    def test_empty_array_round_trips(self):
        array = np.empty((0,), dtype=np.float64)
        with ShmLease(owner=True) as lease:
            spec = publish_array(array, lease)
            assert spec.nbytes == 0
            view = attach_array(spec, lease)
            assert view.shape == (0,)
            assert view.dtype == np.float64

    def test_non_contiguous_input_published_contiguously(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = base[:, ::2]
        with ShmLease(owner=True) as lease:
            spec = publish_array(strided, lease)
            np.testing.assert_array_equal(
                attach_array(spec, lease), strided
            )


class TestCSRRoundTrip:
    def test_matrix_round_trips_exactly(self):
        matrix = _csr(1)
        with ShmLease(owner=True) as lease:
            manifest = publish_csr(matrix, lease)
            attached = attach_csr(manifest, lease)
            assert attached.shape == matrix.shape
            np.testing.assert_array_equal(attached.data, matrix.data)
            np.testing.assert_array_equal(
                attached.indices, matrix.indices
            )
            np.testing.assert_array_equal(
                attached.indptr, matrix.indptr
            )

    def test_attached_product_matches_original(self):
        left, right = _csr(2, (6, 5)), _csr(3, (4, 5))
        with ShmLease(owner=True) as lease:
            attached = attach_csr(publish_csr(left, lease), lease)
            np.testing.assert_array_equal(
                (attached @ right.T).toarray(),
                (left @ right.T).toarray(),
            )


class TestHalvesRoundTrip:
    def test_distinct_halves(self):
        left, right = _csr(4, (6, 5)), _csr(5, (8, 5))
        halves = (
            left,
            right,
            np.random.default_rng(6).random(6),
            np.random.default_rng(7).random(8),
        )
        with ShmLease(owner=True) as lease:
            manifest = publish_halves(halves, lease)
            assert not manifest.symmetric
            assert len(manifest.segment_names()) == 8
            a_left, a_right, a_ln, a_rn = attach_halves(
                manifest, lease
            )
            np.testing.assert_array_equal(
                a_left.toarray(), left.toarray()
            )
            np.testing.assert_array_equal(
                a_right.toarray(), right.toarray()
            )
            np.testing.assert_array_equal(a_ln, halves[2])
            np.testing.assert_array_equal(a_rn, halves[3])

    def test_symmetric_halves_published_once_and_shared(self):
        left = _csr(8, (6, 5))
        norms = np.random.default_rng(9).random(6)
        with ShmLease(owner=True) as lease:
            manifest = publish_halves(
                (left, left, norms, norms), lease
            )
            assert manifest.symmetric
            assert manifest.right is None
            assert len(manifest.segment_names()) == 5
            a_left, a_right, _, _ = attach_halves(manifest, lease)
            assert a_right is a_left


class TestLeaseDiscipline:
    def test_owner_release_unlinks(self):
        lease = ShmLease(owner=True)
        spec = publish_array(np.ones(3), lease)
        assert _segment_exists(spec.name)
        lease.release()
        assert not _segment_exists(spec.name)

    def test_release_is_idempotent(self):
        lease = ShmLease(owner=True)
        publish_array(np.ones(3), lease)
        lease.release()
        lease.release()

    def test_non_owner_release_keeps_segment(self):
        publisher = ShmLease(owner=True)
        spec = publish_array(np.ones(3), publisher)
        reader = ShmLease(owner=False)
        attach_array(spec, reader)
        reader.release()
        assert _segment_exists(spec.name)
        publisher.release()
        assert not _segment_exists(spec.name)

    def test_handoff_transfers_ownership(self):
        publisher = ShmLease(owner=True)
        spec = publish_array(np.arange(4.0), publisher)
        publisher.handoff()
        assert _segment_exists(spec.name)
        consumer = ShmLease(owner=True)
        np.testing.assert_array_equal(
            attach_array(spec, consumer, copy=True), np.arange(4.0)
        )
        consumer.release()
        assert not _segment_exists(spec.name)

    def test_adopt_into_released_lease_raises_and_cleans_up(self):
        lease = ShmLease(owner=True)
        lease.release()
        segment = shared_memory.SharedMemory(create=True, size=8)
        name = segment.name
        try:
            with pytest.raises(QueryError):
                lease.adopt(segment)
            assert not _segment_exists(name)
        finally:
            if _segment_exists(name):  # pragma: no cover - cleanup
                segment.unlink()

    def test_open_segment_missing_raises_file_not_found(self):
        with ShmLease(owner=True) as probe:
            spec = publish_array(np.ones(2), probe)
            name = spec.name
        with ShmLease(owner=False) as lease:
            with pytest.raises(FileNotFoundError):
                open_segment(name, lease)

    def test_create_segment_zero_bytes_still_maps(self):
        with ShmLease(owner=True) as lease:
            segment = create_segment(0, lease)
            assert segment.size >= 1
