"""Unit tests for the Dice-normalisation ablation variant."""

import numpy as np
import pytest

from repro.core.hetesim import hetesim_matrix
from repro.core.variants import dice_hetesim_matrix, dice_hetesim_pair
from repro.hin.errors import QueryError


class TestDiceProperties:
    def test_range(self, fig4):
        path = fig4.schema.path("APC")
        matrix = dice_hetesim_matrix(fig4, path)
        assert (matrix >= -1e-12).all()
        assert (matrix <= 1 + 1e-12).all()

    def test_symmetry_property3(self, fig4):
        for spec in ("APC", "APA", "AP"):
            path = fig4.schema.path(spec)
            forward = dice_hetesim_matrix(fig4, path)
            backward = dice_hetesim_matrix(fig4, path.reverse())
            np.testing.assert_allclose(forward, backward.T, atol=1e-12)

    def test_self_maximum_on_symmetric_path(self, fig4):
        path = fig4.schema.path("APA")
        matrix = dice_hetesim_matrix(fig4, path)
        diagonal = np.diag(matrix)
        assert ((np.isclose(diagonal, 1.0)) | (diagonal == 0.0)).all()

    def test_one_iff_identical_distributions(self, fig4):
        """Tom and KDD share the identical uniform distribution over
        {p1, p2}: Dice must be exactly 1 -- same condition as cosine."""
        path = fig4.schema.path("APC")
        assert dice_hetesim_pair(fig4, path, "Tom", "KDD") == pytest.approx(
            1.0
        )

    def test_dice_at_most_cosine(self, fig4):
        """AM >= GM: the Dice denominator dominates the cosine one, so
        Dice <= cosine everywhere."""
        for spec in ("APC", "APA", "APAPC"):
            path = fig4.schema.path(spec)
            dice = dice_hetesim_matrix(fig4, path)
            cosine = hetesim_matrix(fig4, path)
            assert (dice <= cosine + 1e-12).all()

    def test_dice_penalises_size_mismatch(self, acm):
        """A focused author vs a broad conference distribution: Dice
        drops below cosine strictly when the masses differ."""
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        dice = dice_hetesim_pair(graph, path, hub, "KDD")
        from repro.core.hetesim import hetesim_pair

        cosine = hetesim_pair(graph, path, hub, "KDD")
        assert 0 < dice < cosine


class TestDicePlumbing:
    def test_pair_matches_matrix(self, fig4):
        path = fig4.schema.path("APC")
        matrix = dice_hetesim_matrix(fig4, path)
        for i, author in enumerate(fig4.node_keys("author")):
            for j, conference in enumerate(fig4.node_keys("conference")):
                assert dice_hetesim_pair(
                    fig4, path, author, conference
                ) == pytest.approx(matrix[i, j], abs=1e-12)

    def test_dangling_objects_score_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        matrix = dice_hetesim_matrix(fig4, path)
        lurker = fig4.node_index("author", "lurker")
        np.testing.assert_array_equal(matrix[lurker], 0.0)
        assert dice_hetesim_pair(fig4, path, "lurker", "KDD") == 0.0

    def test_unknown_keys_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            dice_hetesim_pair(fig4, path, "ghost", "KDD")

    def test_rankings_broadly_agree_with_cosine(self, acm):
        """The variants rank the hub's top conference identically."""
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        dice = dice_hetesim_matrix(graph, path)
        hub_index = graph.node_index("author", hub)
        kdd_index = graph.node_index("conference", "KDD")
        assert dice[hub_index].argmax() == kdd_index
