"""Weighted-graph behaviour of HeteSim.

The paper's definitions are stated on unweighted instance counts; the
implementation generalises through weighted transition probabilities and
Property 1's ``sqrt(w)`` edge-object construction.  These tests pin the
semantics of that generalisation:

* **global scale invariance**: multiplying every edge weight by a
  constant changes nothing (normalisation absorbs it) -- weights encode
  *relative* instance multiplicity;
* **multiplicity equivalence**: an integer weight behaves exactly like
  that many parallel unit edges;
* **monotone sensitivity**: shifting weight toward an edge shifts
  relatedness toward its endpoint.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.datasets.schemas import bipartite_schema, toy_apc_schema
from repro.hin.graph import HeteroGraph


def weighted_apc(weights):
    """Author-paper-conference graph with parametrised writes weights."""
    graph = HeteroGraph(toy_apc_schema())
    for (author, paper), weight in weights.items():
        graph.add_edge("writes", author, paper, weight=weight)
    graph.add_edge("published_in", "p1", "KDD")
    graph.add_edge("published_in", "p2", "KDD")
    graph.add_edge("published_in", "p3", "SIGMOD")
    return graph


BASE_WEIGHTS = {
    ("Tom", "p1"): 1.0,
    ("Tom", "p2"): 2.0,
    ("Tom", "p3"): 1.0,
    ("Mary", "p2"): 1.0,
    ("Mary", "p3"): 3.0,
}


class TestScaleInvariance:
    @pytest.mark.parametrize("factor", [0.5, 2.0, 10.0])
    def test_global_scaling_is_a_no_op(self, factor):
        base = weighted_apc(BASE_WEIGHTS)
        scaled = weighted_apc(
            {pair: factor * w for pair, w in BASE_WEIGHTS.items()}
        )
        for spec in ("APC", "APA", "AP"):
            np.testing.assert_allclose(
                hetesim_matrix(base, base.schema.path(spec)),
                hetesim_matrix(scaled, scaled.schema.path(spec)),
                atol=1e-12,
            )

    @given(st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance_property(self, factor):
        base = weighted_apc(BASE_WEIGHTS)
        scaled = weighted_apc(
            {pair: factor * w for pair, w in BASE_WEIGHTS.items()}
        )
        path = base.schema.path("APC")
        np.testing.assert_allclose(
            hetesim_matrix(base, path),
            hetesim_matrix(scaled, scaled.schema.path("APC")),
            atol=1e-9,
        )


class TestMultiplicityEquivalence:
    def test_integer_weight_equals_parallel_edges(self):
        weighted = HeteroGraph(bipartite_schema())
        weighted.add_edge("r", "a1", "b1", weight=3.0)
        weighted.add_edge("r", "a1", "b2", weight=1.0)

        parallel = HeteroGraph(bipartite_schema())
        for _ in range(3):
            parallel.add_edge("r", "a1", "b1")
        parallel.add_edge("r", "a1", "b2")

        path = weighted.schema.path("AB")
        for target in ("b1", "b2"):
            assert hetesim_pair(
                weighted, path, "a1", target
            ) == pytest.approx(
                hetesim_pair(parallel, parallel.schema.path("AB"), "a1", target),
                abs=1e-12,
            )

    def test_apc_multiplicity_equivalence(self):
        weighted = weighted_apc({("Tom", "p1"): 2.0, ("Tom", "p3"): 1.0})
        parallel = weighted_apc({("Tom", "p3"): 1.0})
        parallel.add_edge("writes", "Tom", "p1")
        parallel.add_edge("writes", "Tom", "p1")
        assert hetesim_pair(
            weighted, weighted.schema.path("APC"), "Tom", "KDD"
        ) == pytest.approx(
            hetesim_pair(
                parallel, parallel.schema.path("APC"), "Tom", "KDD"
            ),
            abs=1e-12,
        )


class TestMonotoneSensitivity:
    def test_heavier_edge_pulls_relatedness(self):
        light = weighted_apc(dict(BASE_WEIGHTS))
        heavy_weights = dict(BASE_WEIGHTS)
        heavy_weights[("Tom", "p3")] = 10.0  # p3 is in SIGMOD
        heavy = weighted_apc(heavy_weights)

        light_score = hetesim_pair(
            light, light.schema.path("APC"), "Tom", "SIGMOD",
            normalized=False,
        )
        heavy_score = hetesim_pair(
            heavy, heavy.schema.path("APC"), "Tom", "SIGMOD",
            normalized=False,
        )
        assert heavy_score > light_score

    def test_weights_flow_through_odd_paths(self):
        """The sqrt(w) edge-object construction respects weight order."""
        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1", weight=9.0)
        graph.add_edge("r", "a1", "b2", weight=1.0)
        path = graph.schema.path("AB")
        strong = hetesim_pair(graph, path, "a1", "b1", normalized=False)
        weak = hetesim_pair(graph, path, "a1", "b2", normalized=False)
        assert strong > weak
