"""Unit tests for the path-matrix materialisation cache."""

import numpy as np
import pytest

from repro.core.cache import PathMatrixCache
from repro.hin.matrices import reachable_probability_matrix


class TestPathMatrixCache:
    def test_result_matches_direct_computation(self, fig4):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        np.testing.assert_allclose(
            cache.reach_prob(path).toarray(),
            reachable_probability_matrix(fig4, path).toarray(),
        )

    def test_second_request_is_a_hit(self, fig4):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        cache.reach_prob(path)
        assert cache.hits == 0
        cache.reach_prob(path)
        assert cache.hits == 1

    def test_prefixes_are_cached(self, fig4):
        cache = PathMatrixCache(fig4)
        cache.reach_prob(fig4.schema.path("APC"))
        # The AP prefix should now be materialised.
        assert cache.contains(fig4.schema.path("AP"))

    def test_prefix_reuse(self, fig4):
        cache = PathMatrixCache(fig4)
        cache.reach_prob(fig4.schema.path("AP"))
        cached_count = cache.num_cached
        longer = cache.reach_prob(fig4.schema.path("APC"))
        np.testing.assert_allclose(
            longer.toarray(),
            reachable_probability_matrix(
                fig4, fig4.schema.path("APC")
            ).toarray(),
        )
        assert cache.num_cached > cached_count

    def test_prefix_caching_can_be_disabled(self, fig4):
        cache = PathMatrixCache(fig4, cache_prefixes=False)
        cache.reach_prob(fig4.schema.path("APC"))
        assert not cache.contains(fig4.schema.path("AP"))
        # The full path itself is still cached.
        assert cache.contains(fig4.schema.path("APC"))

    def test_put_and_contains(self, fig4):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("AP")
        matrix = reachable_probability_matrix(fig4, path)
        cache.put(path, matrix)
        assert cache.contains(path)
        np.testing.assert_allclose(
            cache.reach_prob(path).toarray(), matrix.toarray()
        )
        assert cache.hits == 1

    def test_clear(self, fig4):
        cache = PathMatrixCache(fig4)
        cache.reach_prob(fig4.schema.path("APC"))
        cache.clear()
        assert cache.num_cached == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_distinct_paths_dont_collide(self, fig4):
        cache = PathMatrixCache(fig4)
        apa = cache.reach_prob(fig4.schema.path("APA"))
        apc = cache.reach_prob(fig4.schema.path("APC"))
        assert apa.shape != apc.shape

    def test_reverse_path_is_distinct_entry(self, fig4):
        cache = PathMatrixCache(fig4)
        cache.reach_prob(fig4.schema.path("APC"))
        assert not cache.contains(fig4.schema.path("CPA"))

    def test_nbytes_accounting(self, fig4):
        cache = PathMatrixCache(fig4)
        assert cache.nbytes == 0
        cache.reach_prob(fig4.schema.path("APC"))
        populated = cache.nbytes
        assert populated > 0
        cache.clear()
        assert cache.nbytes == 0

    def test_selective_invalidation_by_relation(self, fig4):
        """Mutating one relation leaves other relations' entries fresh."""
        cache = PathMatrixCache(fig4)
        pc = fig4.schema.path("PC")    # published_in only
        ap = fig4.schema.path("AP")    # writes only
        cache.reach_prob(pc)
        cache.reach_prob(ap)
        # Mutate writes between existing nodes: PC stays fresh, AP stale.
        fig4.add_edge("writes", "Tom", "p3")
        assert cache.contains(pc)
        assert not cache.contains(ap)
        cache.reach_prob(pc)
        assert cache.hits == 1  # served from cache

    def test_stale_entry_recomputed_correctly(self, fig4):
        import numpy as np
        from repro.hin.matrices import reachable_probability_matrix

        cache = PathMatrixCache(fig4)
        ap = fig4.schema.path("AP")
        cache.reach_prob(ap)
        fig4.add_edge("writes", "Tom", "p4")
        refreshed = cache.reach_prob(ap)
        np.testing.assert_allclose(
            refreshed.toarray(),
            reachable_probability_matrix(fig4, ap).toarray(),
        )

    def test_stats_snapshot(self, fig4):
        cache = PathMatrixCache(fig4, byte_budget=1 << 20)
        cache.reach_prob(fig4.schema.path("APC"))
        stats = cache.stats()
        assert stats.num_cached == cache.num_cached
        assert stats.nbytes == cache.nbytes
        assert stats.byte_budget == 1 << 20
        assert stats.misses >= 1
        assert "cache:" in stats.summary()

    def test_last_plan_recorded(self, fig4):
        cache = PathMatrixCache(fig4)
        assert cache.last_plan is None
        cache.reach_prob(fig4.schema.path("APC"))
        plan = cache.last_plan
        assert plan is not None
        assert plan.key == ("writes", "published_in")
        assert plan.steps


SPECS = ["APC", "APA", "APAPC", "APAPA", "AP", "APCPA"]


class TestByteBudgetEviction:
    def test_nbytes_never_exceeds_budget(self, fig4):
        budget = 256
        cache = PathMatrixCache(fig4, byte_budget=budget)
        for spec in SPECS * 2:
            cache.reach_prob(fig4.schema.path(spec))
            assert cache.nbytes <= budget
        assert cache.evictions > 0

    def test_eviction_never_changes_results(self, fig4):
        budgeted = PathMatrixCache(fig4, byte_budget=1024)
        for spec in SPECS + list(reversed(SPECS)):
            path = fig4.schema.path(spec)
            np.testing.assert_allclose(
                budgeted.reach_prob(path).toarray(),
                reachable_probability_matrix(fig4, path).toarray(),
                atol=1e-12,
            )

    def test_zero_budget_keeps_nothing(self, fig4):
        cache = PathMatrixCache(fig4, byte_budget=0)
        path = fig4.schema.path("APC")
        result = cache.reach_prob(path)
        assert cache.num_cached == 0 and cache.nbytes == 0
        np.testing.assert_allclose(
            result.toarray(),
            reachable_probability_matrix(fig4, path).toarray(),
        )

    def test_lru_evicts_oldest_first(self, fig4):
        cache = PathMatrixCache(fig4, cache_prefixes=False)
        ap = fig4.schema.path("AP")
        pc = fig4.schema.path("PC")
        cache.reach_prob(ap)
        cache.reach_prob(pc)
        # Touch AP so PC becomes least-recently-used, then shrink the
        # budget to one entry's worth.
        cache.reach_prob(ap)
        cache.byte_budget = cache.nbytes - 1
        cache.reach_prob(fig4.schema.path("PA"))
        assert cache.contains(ap) or cache.num_cached <= 2
        assert not cache.contains(pc)

    def test_negative_budget_rejected(self, fig4):
        from repro.hin.errors import QueryError

        with pytest.raises(QueryError):
            PathMatrixCache(fig4, byte_budget=-1)


class TestMidPlanMutation:
    def test_mutation_during_execution_leaves_the_entry_stale(
        self, fig4, monkeypatch
    ):
        """Entries are tagged with the versions captured *before* the
        plan executes: a mutation landing mid-plan therefore leaves the
        stored entry stale (recomputed on next lookup).  Tagging at
        store time instead would pair pre-mutation data with the
        post-mutation signature -- permanently fresh, permanently
        wrong."""
        from repro.hin.graph import HeteroGraph

        cache = PathMatrixCache(fig4)
        ap = fig4.schema.path("AP")
        original = HeteroGraph.adjacency
        fired = []

        def adjacency_then_mutate(self, relation_name):
            matrix = original(self, relation_name)
            if relation_name == "writes" and not fired:
                fired.append(True)
                # Lands after the plan read the adjacency but before
                # the cache stores the product.  A parallel edge
                # accumulates weight, changing the row-normalised
                # probabilities without changing any matrix shape.
                self.add_edge("writes", "Tom", "p1")
            return matrix

        monkeypatch.setattr(
            HeteroGraph, "adjacency", adjacency_then_mutate
        )
        first = cache.reach_prob(ap)
        served = cache.reach_prob(ap)
        fresh = reachable_probability_matrix(fig4, ap)
        np.testing.assert_allclose(
            served.toarray(), fresh.toarray()
        )
        # The mutation really changed the matrix, so serving the first
        # result again would have been a stale answer.
        assert np.abs(first.toarray() - fresh.toarray()).max() > 1e-12
