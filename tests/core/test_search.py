"""Unit tests for ranked relevance search."""

import pytest

from repro.core.search import rank_targets, top_k_pairs, top_k_targets
from repro.hin.errors import QueryError


class TestRankTargets:
    def test_full_ranking_covers_target_type(self, fig4):
        path = fig4.schema.path("APC")
        ranking = rank_targets(fig4, path, "Tom")
        assert len(ranking) == fig4.num_nodes("conference")

    def test_descending_scores(self, fig4):
        path = fig4.schema.path("APC")
        scores = [s for _, s in rank_targets(fig4, path, "Tom")]
        assert scores == sorted(scores, reverse=True)

    def test_tom_ranks_kdd_first(self, fig4):
        path = fig4.schema.path("APC")
        assert rank_targets(fig4, path, "Tom")[0][0] == "KDD"

    def test_raw_mode(self, fig4):
        path = fig4.schema.path("APC")
        ranking = rank_targets(fig4, path, "Tom", normalized=False)
        assert ranking[0] == ("KDD", pytest.approx(0.5))


class TestTopKTargets:
    def test_k_limits_results(self, fig4):
        path = fig4.schema.path("APC")
        assert len(top_k_targets(fig4, path, "Tom", k=1)) == 1

    def test_k_larger_than_type(self, fig4):
        path = fig4.schema.path("APC")
        results = top_k_targets(fig4, path, "Tom", k=100)
        assert len(results) == fig4.num_nodes("conference")

    def test_invalid_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_targets(fig4, path, "Tom", k=0)

    def test_unknown_source(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_targets(fig4, path, "ghost", k=1)


class TestTopKPairs:
    def test_strongest_pairs_sorted(self, fig4):
        path = fig4.schema.path("APC")
        triples = top_k_pairs(fig4, path, k=5)
        scores = [score for _, _, score in triples]
        assert scores == sorted(scores, reverse=True)

    def test_contains_expected_best_pair(self, fig4):
        path = fig4.schema.path("APC")
        triples = top_k_pairs(fig4, path, k=3)
        pairs = {(s, t) for s, t, _ in triples}
        assert ("Tom", "KDD") in pairs or ("Jim", "SIGMOD") in pairs

    def test_k_capped_at_matrix_size(self, fig4):
        path = fig4.schema.path("APC")
        total = fig4.num_nodes("author") * fig4.num_nodes("conference")
        assert len(top_k_pairs(fig4, path, k=10_000)) == total

    def test_invalid_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_pairs(fig4, path, k=-1)

    def test_deterministic(self, fig4):
        path = fig4.schema.path("APC")
        assert top_k_pairs(fig4, path, k=6) == top_k_pairs(fig4, path, k=6)


class TestTopKPairsSparse:
    def test_matches_dense_variant(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        sparse_result = top_k_pairs_sparse(fig4, path, k=4)
        dense_result = top_k_pairs(fig4, path, k=4)
        assert sparse_result == dense_result

    def test_matches_dense_on_acm(self, acm):
        from repro.core.search import top_k_pairs_sparse

        graph = acm.graph
        path = graph.schema.path("APVC")
        assert top_k_pairs_sparse(graph, path, k=10) == top_k_pairs(
            graph, path, k=10
        )

    def test_raw_mode(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        triples = top_k_pairs_sparse(fig4, path, k=2, normalized=False)
        assert all(score > 0 for _, _, score in triples)

    def test_fewer_connected_pairs_than_k(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        triples = top_k_pairs_sparse(fig4, path, k=1000)
        # Only connected pairs are returned (zero pairs omitted).
        assert all(score > 0 for _, _, score in triples)
        assert len(triples) < 1000

    def test_bad_k(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_pairs_sparse(fig4, path, k=0)
