"""Unit tests for ranked relevance search."""

import numpy as np
import pytest

from repro.core.search import (
    rank_targets,
    select_top_k,
    top_k_pairs,
    top_k_targets,
)
from repro.hin.errors import QueryError


class TestSelectTopK:
    """The argpartition selection helper: identical to a full sort."""

    def test_matches_full_sort(self):
        rng = np.random.default_rng(0)
        scores = rng.random(200)
        keys = [f"n{i:03d}" for i in range(200)]
        full = sorted(
            range(200), key=lambda i: (-scores[i], keys[i])
        )
        for k in (1, 5, 50, 199, 200, 1000):
            expected = [(keys[i], float(scores[i])) for i in full[:k]]
            assert select_top_k(scores, keys, k) == expected

    def test_boundary_ties_break_by_key(self):
        # Three candidates tied at the k-th score: the smallest keys
        # win, exactly as the documented full-sort tie-break.
        scores = np.array([0.9, 0.5, 0.5, 0.5, 0.1])
        keys = ["e", "d", "b", "c", "a"]
        assert select_top_k(scores, keys, 2) == [
            ("e", 0.9),
            ("b", 0.5),
        ]
        assert select_top_k(scores, keys, 3) == [
            ("e", 0.9),
            ("b", 0.5),
            ("c", 0.5),
        ]

    def test_all_zero_scores(self):
        scores = np.zeros(6)
        keys = ["f", "e", "d", "c", "b", "a"]
        assert select_top_k(scores, keys, 2) == [
            ("a", 0.0),
            ("b", 0.0),
        ]

    def test_nonpositive_k_clamps_to_empty(self):
        assert select_top_k(np.array([1.0]), ["a"], 0) == []
        assert select_top_k(np.array([1.0]), ["a"], -5) == []

    def test_oversized_k_clamps_to_full_ranking(self):
        scores = np.array([0.5, 1.0, 0.5])
        keys = ["b", "a", "c"]
        assert select_top_k(scores, keys, 99) == [
            ("a", 1.0),
            ("b", 0.5),
            ("c", 0.5),
        ]

    def test_mismatched_lengths(self):
        with pytest.raises(QueryError):
            select_top_k(np.array([1.0, 2.0]), ["a"], 3)


class TestRankTargets:
    def test_full_ranking_covers_target_type(self, fig4):
        path = fig4.schema.path("APC")
        ranking = rank_targets(fig4, path, "Tom")
        assert len(ranking) == fig4.num_nodes("conference")

    def test_descending_scores(self, fig4):
        path = fig4.schema.path("APC")
        scores = [s for _, s in rank_targets(fig4, path, "Tom")]
        assert scores == sorted(scores, reverse=True)

    def test_tom_ranks_kdd_first(self, fig4):
        path = fig4.schema.path("APC")
        assert rank_targets(fig4, path, "Tom")[0][0] == "KDD"

    def test_raw_mode(self, fig4):
        path = fig4.schema.path("APC")
        ranking = rank_targets(fig4, path, "Tom", normalized=False)
        assert ranking[0] == ("KDD", pytest.approx(0.5))


class TestTopKTargets:
    def test_k_limits_results(self, fig4):
        path = fig4.schema.path("APC")
        assert len(top_k_targets(fig4, path, "Tom", k=1)) == 1

    def test_k_larger_than_type(self, fig4):
        path = fig4.schema.path("APC")
        results = top_k_targets(fig4, path, "Tom", k=100)
        assert len(results) == fig4.num_nodes("conference")

    def test_invalid_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_targets(fig4, path, "Tom", k=0)

    def test_unknown_source(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_targets(fig4, path, "ghost", k=1)

    def test_equals_rank_prefix(self, fig4):
        """Selection-based top-k is element-wise the full ranking's
        prefix, tie-break included."""
        path = fig4.schema.path("APC")
        for k in (1, 2, 3):
            assert (
                top_k_targets(fig4, path, "Mary", k=k)
                == rank_targets(fig4, path, "Mary")[:k]
            )


class TestSearchCacheThreading:
    """The ``cache=`` satellite: repeated single-source queries stop
    rebuilding both halves every call."""

    def test_rank_targets_reuses_cache(self, fig4):
        from repro.core.cache import PathMatrixCache

        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        first = rank_targets(fig4, path, "Tom", cache=cache)
        misses = cache.stats().misses
        assert misses > 0
        second = rank_targets(fig4, path, "Tom", cache=cache)
        assert cache.stats().misses == misses
        assert cache.stats().hits > 0
        assert second == first

    def test_top_k_targets_reuses_cache(self, fig4):
        from repro.core.cache import PathMatrixCache

        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        first = top_k_targets(fig4, path, "Tom", k=2, cache=cache)
        misses = cache.stats().misses
        second = top_k_targets(fig4, path, "Tom", k=2, cache=cache)
        assert cache.stats().misses == misses
        assert second == first

    def test_cached_equals_uncached(self, fig4):
        from repro.core.cache import PathMatrixCache
        from repro.core.hetesim import hetesim_all_targets

        cache = PathMatrixCache(fig4)
        for spec in ("APC", "APCP"):
            path = fig4.schema.path(spec)
            np.testing.assert_allclose(
                hetesim_all_targets(fig4, path, "Tom", cache=cache),
                hetesim_all_targets(fig4, path, "Tom"),
                rtol=1e-12,
                atol=1e-15,
            )


class TestTopKPairs:
    def test_strongest_pairs_sorted(self, fig4):
        path = fig4.schema.path("APC")
        triples = top_k_pairs(fig4, path, k=5)
        scores = [score for _, _, score in triples]
        assert scores == sorted(scores, reverse=True)

    def test_contains_expected_best_pair(self, fig4):
        path = fig4.schema.path("APC")
        triples = top_k_pairs(fig4, path, k=3)
        pairs = {(s, t) for s, t, _ in triples}
        assert ("Tom", "KDD") in pairs or ("Jim", "SIGMOD") in pairs

    def test_k_capped_at_matrix_size(self, fig4):
        path = fig4.schema.path("APC")
        total = fig4.num_nodes("author") * fig4.num_nodes("conference")
        assert len(top_k_pairs(fig4, path, k=10_000)) == total

    def test_invalid_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_pairs(fig4, path, k=-1)

    def test_deterministic(self, fig4):
        path = fig4.schema.path("APC")
        assert top_k_pairs(fig4, path, k=6) == top_k_pairs(fig4, path, k=6)


class TestTopKPairsSparse:
    def test_matches_dense_variant(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        sparse_result = top_k_pairs_sparse(fig4, path, k=4)
        dense_result = top_k_pairs(fig4, path, k=4)
        assert sparse_result == dense_result

    def test_matches_dense_on_acm(self, acm):
        from repro.core.search import top_k_pairs_sparse

        graph = acm.graph
        path = graph.schema.path("APVC")
        assert top_k_pairs_sparse(graph, path, k=10) == top_k_pairs(
            graph, path, k=10
        )

    def test_raw_mode(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        triples = top_k_pairs_sparse(fig4, path, k=2, normalized=False)
        assert all(score > 0 for _, _, score in triples)

    def test_fewer_connected_pairs_than_k(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        triples = top_k_pairs_sparse(fig4, path, k=1000)
        # Only connected pairs are returned (zero pairs omitted).
        assert all(score > 0 for _, _, score in triples)
        assert len(triples) < 1000

    def test_bad_k(self, fig4):
        from repro.core.search import top_k_pairs_sparse

        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            top_k_pairs_sparse(fig4, path, k=0)
