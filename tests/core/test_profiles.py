"""Unit tests for automatic object profiling."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.core.profiles import build_profile
from repro.hin.errors import QueryError


@pytest.fixture(scope="module")
def acm_profile(acm):
    engine = HeteSimEngine(acm.graph)
    return build_profile(
        engine, "author", acm.personas["hub_author"], k=3
    )


class TestBuildProfile:
    def test_covers_reachable_types(self, acm_profile):
        types = {section.target_type for section in acm_profile.sections}
        assert {"paper", "venue", "conference", "term", "subject",
                "affiliation"} <= types

    def test_shortest_paths_chosen(self, acm_profile):
        assert acm_profile.section("paper").path.code() == "AP"
        assert acm_profile.section("conference").path.code() == "APVC"
        assert acm_profile.section("term").path.code() == "APT"

    def test_rankings_match_engine(self, acm, acm_profile):
        engine = HeteSimEngine(acm.graph)
        hub = acm.personas["hub_author"]
        section = acm_profile.section("conference")
        assert section.ranking == engine.top_k(hub, "APVC", k=3)

    def test_home_conference_first(self, acm_profile):
        assert acm_profile.section("conference").ranking[0][0] == "KDD"

    def test_target_type_restriction(self, acm):
        engine = HeteSimEngine(acm.graph)
        profile = build_profile(
            engine, "author", acm.personas["hub_author"], k=2,
            target_types=["conference"],
        )
        assert [s.target_type for s in profile.sections] == ["conference"]

    def test_unreachable_types_omitted(self):
        from repro.hin.graph import HeteroGraph
        from repro.hin.schema import NetworkSchema

        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B"), ("c", "C")],
            [("r", "a", "b")],  # c unreachable from a
        )
        graph = HeteroGraph(schema)
        graph.add_edge("r", "a1", "b1")
        graph.add_node("c", "c1")
        engine = HeteSimEngine(graph)
        profile = build_profile(engine, "a", "a1", k=1)
        assert [s.target_type for s in profile.sections] == ["b"]

    def test_text_rendering(self, acm_profile):
        text = acm_profile.to_text()
        assert "Profile of author 'KDD-star':" in text
        assert "conference (path APVC):" in text
        assert "1. KDD" in text

    def test_missing_section_raises(self, acm_profile):
        with pytest.raises(QueryError):
            acm_profile.section("ghost")

    def test_unknown_object_rejected(self, acm):
        engine = HeteSimEngine(acm.graph)
        with pytest.raises(QueryError):
            build_profile(engine, "author", "ghost")

    def test_bad_k_rejected(self, acm):
        engine = HeteSimEngine(acm.graph)
        with pytest.raises(QueryError):
            build_profile(engine, "author", "KDD-star", k=0)

    def test_profile_of_conference(self, acm):
        """The Table 2 direction: profiling a conference."""
        engine = HeteSimEngine(acm.graph)
        profile = build_profile(
            engine, "conference", "KDD", k=3,
            target_types=["author", "subject"],
        )
        authors = [k for k, _ in profile.section("author").ranking]
        assert authors[0] == "KDD-star"
        subjects = [k for k, _ in profile.section("subject").ranking]
        assert subjects[0].startswith("H.2")
