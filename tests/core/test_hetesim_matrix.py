"""Consistency tests among the matrix-level HeteSim entry points."""

import numpy as np
import pytest

from repro.core.hetesim import (
    half_reach_matrices,
    hetesim_all_sources,
    hetesim_all_targets,
    hetesim_matrix,
    hetesim_pair,
)
from repro.hin.errors import QueryError


PATHS = ["APC", "AP", "APA", "APAPC"]


class TestEntryPointConsistency:
    @pytest.mark.parametrize("spec", PATHS)
    def test_pair_matches_matrix(self, fig4, spec):
        path = fig4.schema.path(spec)
        matrix = hetesim_matrix(fig4, path)
        sources = fig4.node_keys(path.source_type.name)
        targets = fig4.node_keys(path.target_type.name)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert hetesim_pair(fig4, path, s, t) == pytest.approx(
                    matrix[i, j], abs=1e-12
                )

    @pytest.mark.parametrize("spec", PATHS)
    def test_all_targets_matches_matrix_row(self, fig4, spec):
        path = fig4.schema.path(spec)
        matrix = hetesim_matrix(fig4, path)
        sources = fig4.node_keys(path.source_type.name)
        for i, s in enumerate(sources):
            row = hetesim_all_targets(fig4, path, s)
            np.testing.assert_allclose(row, matrix[i], atol=1e-12)

    @pytest.mark.parametrize("spec", PATHS)
    def test_all_sources_matches_matrix_column(self, fig4, spec):
        path = fig4.schema.path(spec)
        matrix = hetesim_matrix(fig4, path)
        targets = fig4.node_keys(path.target_type.name)
        for j, t in enumerate(targets):
            column = hetesim_all_sources(fig4, path, t)
            np.testing.assert_allclose(column, matrix[:, j], atol=1e-12)

    def test_raw_variants_consistent(self, fig4):
        path = fig4.schema.path("APC")
        matrix = hetesim_matrix(fig4, path, normalized=False)
        tom = fig4.node_index("author", "Tom")
        kdd = fig4.node_index("conference", "KDD")
        assert hetesim_pair(
            fig4, path, "Tom", "KDD", normalized=False
        ) == pytest.approx(matrix[tom, kdd])
        row = hetesim_all_targets(fig4, path, "Tom", normalized=False)
        np.testing.assert_allclose(row, matrix[tom], atol=1e-12)


class TestHalfReachMatrices:
    def test_even_path_shapes(self, fig4):
        path = fig4.schema.path("APA")
        left, right = half_reach_matrices(fig4, path)
        n_authors = fig4.num_nodes("author")
        n_papers = fig4.num_nodes("paper")
        assert left.shape == (n_authors, n_papers)
        assert right.shape == (n_authors, n_papers)

    def test_odd_path_shapes(self, fig4):
        path = fig4.schema.path("APC")  # even (length 2)
        odd = fig4.schema.path("AP")    # length 1, odd
        left, right = half_reach_matrices(fig4, odd)
        n_edges = fig4.adjacency("writes").nnz
        assert left.shape == (fig4.num_nodes("author"), n_edges)
        assert right.shape == (fig4.num_nodes("paper"), n_edges)
        # even case for contrast
        left2, right2 = half_reach_matrices(fig4, path)
        assert left2.shape[1] == fig4.num_nodes("paper")

    def test_odd_longer_path_shapes(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")  # length 3, odd, middle P->V
        left, right = half_reach_matrices(graph, path)
        n_edges = graph.adjacency("published_in").nnz
        assert left.shape == (graph.num_nodes("author"), n_edges)
        assert right.shape == (graph.num_nodes("conference"), n_edges)

    def test_product_is_raw_matrix(self, fig4):
        path = fig4.schema.path("APC")
        left, right = half_reach_matrices(fig4, path)
        raw = hetesim_matrix(fig4, path, normalized=False)
        np.testing.assert_allclose((left @ right.T).toarray(), raw)

    def test_half_rows_are_distributions(self, fig4):
        path = fig4.schema.path("APC")
        left, right = half_reach_matrices(fig4, path)
        np.testing.assert_allclose(
            np.asarray(left.sum(axis=1)).ravel(), 1.0
        )
        np.testing.assert_allclose(
            np.asarray(right.sum(axis=1)).ravel(), 1.0
        )


class TestZeroHandling:
    def test_isolated_source_row_is_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        row = hetesim_all_targets(fig4, path, "lurker")
        np.testing.assert_array_equal(row, 0.0)

    def test_isolated_target_column_is_zero(self, fig4):
        fig4.add_node("conference", "NIPS")
        path = fig4.schema.path("APC")
        matrix = hetesim_matrix(fig4, path)
        nips = fig4.node_index("conference", "NIPS")
        np.testing.assert_array_equal(matrix[:, nips], 0.0)

    def test_no_nan_anywhere(self, fig4):
        fig4.add_node("author", "lurker")
        fig4.add_node("conference", "NIPS")
        for spec in PATHS:
            matrix = hetesim_matrix(fig4, fig4.schema.path(spec))
            assert not np.isnan(matrix).any()
