"""Unit tests for the threshold-algorithm top-k search."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.core.threshold import threshold_top_k
from repro.hin.errors import QueryError


class TestExactness:
    @pytest.mark.parametrize("spec", ["APVC", "APVCVPA"])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_engine_ranking(self, acm, spec, k):
        graph = acm.graph
        engine = HeteSimEngine(graph)
        path = graph.schema.path(spec)
        hub = acm.personas["hub_author"]
        ta = threshold_top_k(graph, path, hub, k=k)
        exact = engine.top_k(hub, path, k=k)
        assert [key for key, _ in ta.ranking] == [key for key, _ in exact]
        for (_, a), (_, b) in zip(ta.ranking, exact):
            assert a == pytest.approx(b, abs=1e-10)

    def test_raw_mode_matches(self, acm):
        graph = acm.graph
        engine = HeteSimEngine(graph)
        path = graph.schema.path("APVC")
        young = acm.personas["young_sigir"]
        ta = threshold_top_k(graph, path, young, k=5, normalized=False)
        exact = engine.top_k(young, path, k=5, normalized=False)
        assert [key for key, _ in ta.ranking] == [key for key, _ in exact]

    def test_toy_graph(self, fig4):
        path = fig4.schema.path("APC")
        result = threshold_top_k(fig4, path, "Tom", k=2)
        assert result.ranking[0] == ("KDD", pytest.approx(1.0))

    def test_random_graphs(self):
        from repro.datasets.random_hin import make_random_hin
        from repro.datasets.schemas import toy_apc_schema

        for seed in range(5):
            graph = make_random_hin(
                toy_apc_schema(),
                sizes={"author": 12, "paper": 20, "conference": 6},
                edge_prob=0.2,
                seed=seed,
                ensure_connected_rows=True,
            )
            engine = HeteSimEngine(graph)
            path = graph.schema.path("APC")
            for source in graph.node_keys("author")[:3]:
                ta = threshold_top_k(graph, path, source, k=3)
                exact = engine.top_k(source, path, k=3)
                assert [key for key, _ in ta.ranking] == [
                    key for key, _ in exact
                ], f"seed={seed} source={source}"


class TestWorkAccounting:
    def test_visit_counts_reported(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        result = threshold_top_k(graph, path, hub, k=1)
        assert 0 < result.middles_visited <= result.middles_total
        assert 0 < result.visit_ratio <= 1.0

    def test_k1_on_skewed_query_can_terminate_early(self, acm):
        """A one-conference author's mass is concentrated: the k=1 search
        should not need the full support."""
        graph = acm.graph
        path = graph.schema.path("APVC")
        young = acm.personas["young_sigcomm"]
        result = threshold_top_k(graph, path, young, k=1, normalized=False)
        # Not guaranteed in general, but on this planted skew it holds;
        # guard with <= so the test documents rather than flakes.
        assert result.middles_visited <= result.middles_total


class TestEdgeCases:
    def test_dangling_source(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        result = threshold_top_k(fig4, path, "lurker", k=2)
        assert result.middles_total == 0
        assert all(score == 0.0 for _, score in result.ranking)

    def test_k_larger_than_targets(self, fig4):
        path = fig4.schema.path("APC")
        result = threshold_top_k(fig4, path, "Tom", k=50)
        assert len(result.ranking) == fig4.num_nodes("conference")

    def test_bad_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            threshold_top_k(fig4, path, "Tom", k=0)

    def test_unknown_source(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            threshold_top_k(fig4, path, "ghost")
