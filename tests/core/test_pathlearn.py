"""Unit tests for supervised path-weight learning (Section 5.1)."""

import pytest

from repro.core.engine import HeteSimEngine
from repro.core.pathlearn import learn_path_weights
from repro.hin.errors import PathError, QueryError


@pytest.fixture()
def engine(fig4):
    return HeteSimEngine(fig4)


def direct_publication_labels(fig4):
    """Unambiguous labels matching the APC semantics: the positives are
    the all-papers-in-one-conference pairs (APC score 1) and the
    negatives the no-direct-publication pairs (APC score 0).  Mary, who
    splits her papers between the two conferences, is excluded so the
    labels are exactly realisable by the APC feature alone -- the
    co-author path APAPC is a strictly worse explanation."""
    return [
        ("Tom", "KDD", 1),
        ("Tom", "SIGMOD", 0),
        ("Jim", "SIGMOD", 1),
        ("Jim", "KDD", 0),
    ]


class TestLearning:
    def test_informative_path_gets_the_weight(self, engine, fig4):
        pairs = direct_publication_labels(fig4)
        result = learn_path_weights(engine, ["APC", "APAPC"], pairs)
        assert result.best_path() == "APC"
        assert result.weights["APC"] > result.weights["APAPC"]

    def test_weights_normalised(self, engine, fig4):
        pairs = direct_publication_labels(fig4)
        result = learn_path_weights(engine, ["APC", "APAPC"], pairs)
        assert sum(result.weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in result.weights.values())

    def test_residual_reported(self, engine, fig4):
        pairs = direct_publication_labels(fig4)
        result = learn_path_weights(engine, ["APC"], pairs)
        assert result.residual >= 0

    def test_all_zero_labels_fall_back_to_uniform(self, engine):
        pairs = [("Tom", "SIGMOD", 0), ("Jim", "KDD", 0)]
        result = learn_path_weights(engine, ["APC", "APAPC"], pairs)
        assert result.weights == {"APC": 0.5, "APAPC": 0.5}

    def test_as_measure_round_trip(self, engine, fig4):
        pairs = direct_publication_labels(fig4)
        result = learn_path_weights(engine, ["APC", "APAPC"], pairs)
        measure = result.as_measure(engine)
        # The learned measure must separate the labelled classes on
        # average.
        positives = [
            measure.relevance(s, t) for s, t, label in pairs if label == 1
        ]
        negatives = [
            measure.relevance(s, t) for s, t, label in pairs if label == 0
        ]
        assert sum(positives) / len(positives) > sum(negatives) / len(
            negatives
        )

    def test_as_measure_drops_zero_weight_paths(self, engine, fig4):
        pairs = direct_publication_labels(fig4)
        result = learn_path_weights(engine, ["APC", "APAPC"], pairs)
        measure = result.as_measure(engine)
        assert all(w > 0 for w in measure.weights.values())


class TestValidation:
    def test_no_paths_rejected(self, engine):
        with pytest.raises(QueryError):
            learn_path_weights(engine, [], [("Tom", "KDD", 1)])

    def test_no_pairs_rejected(self, engine):
        with pytest.raises(QueryError):
            learn_path_weights(engine, ["APC"], [])

    def test_non_binary_label_rejected(self, engine):
        with pytest.raises(QueryError):
            learn_path_weights(engine, ["APC"], [("Tom", "KDD", 2)])

    def test_mismatched_candidate_paths_rejected(self, engine):
        with pytest.raises(PathError):
            learn_path_weights(
                engine, ["APC", "APA"], [("Tom", "KDD", 1)]
            )

    def test_unknown_pair_objects_rejected(self, engine):
        with pytest.raises(QueryError):
            learn_path_weights(engine, ["APC"], [("ghost", "KDD", 1)])
