"""Unit tests for optimal matrix-chain evaluation."""

import numpy as np
import pytest

from repro.core.chain import optimal_chain_order, reach_prob_chain
from repro.hin.errors import QueryError
from repro.hin.matrices import reachable_probability_matrix


class TestOptimalChainOrder:
    def test_single_matrix_no_steps(self):
        assert optimal_chain_order([3, 4]) == []

    def test_two_matrices_one_step(self):
        assert optimal_chain_order([3, 4, 5]) == [(0, 1)]

    def test_clrs_textbook_example(self):
        """CLRS 15.2: dims (30,35,15,5,10,20,25) -> optimal
        ((A1 (A2 A3)) ((A4 A5) A6))."""
        schedule = optimal_chain_order([30, 35, 15, 5, 10, 20, 25])
        # 5 multiplications for 6 matrices.
        assert len(schedule) == 5
        # First emitted step (post-order) is A2 x A3.
        assert schedule[0] == (1, 2)

    def test_schedule_is_executable(self):
        rng = np.random.default_rng(0)
        dims = [4, 7, 2, 9, 3]
        matrices = [
            rng.random((dims[i], dims[i + 1]))
            for i in range(len(dims) - 1)
        ]
        expected = matrices[0] @ matrices[1] @ matrices[2] @ matrices[3]
        working = list(matrices)
        for left, right in optimal_chain_order(dims):
            working[left] = working[left] @ working[right]
            working.pop(right)
        assert len(working) == 1
        np.testing.assert_allclose(working[0], expected, atol=1e-10)

    def test_skewed_dims_prefer_small_middle(self):
        """(100x100)(100x2)(2x100): multiplying the right pair first
        costs 100*2*100 + 100*100*100; left-first costs 100*100*2 +
        100*2*100 -- the DP must pick left-first."""
        schedule = optimal_chain_order([100, 100, 2, 100])
        assert schedule[0] == (0, 1)

    def test_empty_chain_rejected(self):
        with pytest.raises(QueryError):
            optimal_chain_order([5])


class TestReachProbChain:
    @pytest.mark.parametrize("spec", ["AP", "APC", "APAPC"])
    def test_equals_left_to_right(self, fig4, spec):
        path = fig4.schema.path(spec)
        chain = reach_prob_chain(fig4, path).toarray()
        direct = reachable_probability_matrix(fig4, path).toarray()
        np.testing.assert_allclose(chain, direct, atol=1e-12)

    @pytest.mark.parametrize("spec", ["APVC", "APVCVPA", "CVPAPA"])
    def test_equals_on_acm(self, acm, spec):
        graph = acm.graph
        path = graph.schema.path(spec)
        chain = reach_prob_chain(graph, path).toarray()
        direct = reachable_probability_matrix(graph, path).toarray()
        np.testing.assert_allclose(chain, direct, atol=1e-10)
