"""Unit tests for the on-disk matrix store (Section 4.6, item 1)."""

import numpy as np
import pytest

from repro.core.cache import PathMatrixCache
from repro.core.store import MatrixStore
from repro.hin.errors import QueryError
from repro.hin.matrices import reachable_probability_matrix


class TestMatrixStore:
    def test_save_and_load_roundtrip(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        loaded = store.load(path)
        np.testing.assert_allclose(
            loaded.toarray(),
            reachable_probability_matrix(fig4, path).toarray(),
        )

    def test_contains(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])
        assert store.contains(apc)
        assert not store.contains(fig4.schema.path("APA"))

    def test_stored_paths_listing(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC"), fig4.schema.path("APA")])
        assert len(store.stored_paths()) == 2

    def test_load_missing_raises(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        with pytest.raises(QueryError):
            store.load(fig4.schema.path("APC"))

    def test_load_into_cache(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        apa = fig4.schema.path("APA")
        store.save(fig4, [apc, apa])

        cache = PathMatrixCache(fig4)
        loaded = store.load_into(cache)
        assert loaded == 2
        assert cache.contains(apc) and cache.contains(apa)
        # Fetching from the warmed cache is a hit, not a recomputation.
        cache.reach_prob(apc)
        assert cache.hits == 1

    def test_loaded_matrices_answer_queries(self, fig4, tmp_path):
        """The §4.6 workflow: persist off-line, reload, query on-line."""
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])

        cache = PathMatrixCache(fig4)
        store.load_into(cache)
        matrix = cache.reach_prob(apc)
        tom = fig4.node_index("author", "Tom")
        kdd = fig4.node_index("conference", "KDD")
        assert matrix[tom, kdd] == pytest.approx(1.0)

    def test_overwrite_same_path(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])
        store.save(fig4, [apc])  # idempotent overwrite
        assert len(store.stored_paths()) == 1

    def test_reuses_supplied_cache(self, fig4, tmp_path):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        cache.reach_prob(path)
        store = MatrixStore(tmp_path)
        store.save(fig4, [path], cache=cache)
        assert cache.hits == 1  # save() fetched from the cache

    def test_inverse_relation_paths_roundtrip(self, fig4, tmp_path):
        """Paths containing inverse relation names must survive the
        filename slug and reload through the schema."""
        store = MatrixStore(tmp_path)
        cpa = fig4.schema.path("CPA")  # built from inverse relations
        store.save(fig4, [cpa])
        cache = PathMatrixCache(fig4)
        store.load_into(cache)
        assert cache.contains(cpa)


class TestCrashSafety:
    def test_no_tmp_files_left_after_save(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC"), fig4.schema.path("APA")])
        assert list(tmp_path.glob("*.tmp")) == []

    def test_index_records_format_and_checksums(self, fig4, tmp_path):
        import hashlib
        import json

        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC")])
        document = json.loads(
            (tmp_path / "index.json").read_text(encoding="utf-8")
        )
        assert document["format"] == 2
        ((key, entry),) = document["entries"].items()
        payload = (tmp_path / entry["file"]).read_bytes()
        assert entry["sha256"] == hashlib.sha256(payload).hexdigest()

    def test_legacy_flat_index_still_loads(self, fig4, tmp_path):
        import json

        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        index_path = tmp_path / "index.json"
        document = json.loads(index_path.read_text(encoding="utf-8"))
        flat = {
            key: entry["file"] for key, entry in document["entries"].items()
        }
        index_path.write_text(json.dumps(flat), encoding="utf-8")
        assert store.load(path).nnz > 0  # no checksum, but loadable

    def test_next_save_upgrades_legacy_index(self, fig4, tmp_path):
        import json

        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        index_path = tmp_path / "index.json"
        document = json.loads(index_path.read_text(encoding="utf-8"))
        flat = {
            key: entry["file"] for key, entry in document["entries"].items()
        }
        index_path.write_text(json.dumps(flat), encoding="utf-8")
        store.save(fig4, [path])
        upgraded = json.loads(index_path.read_text(encoding="utf-8"))
        assert upgraded["format"] == 2

    def test_checksum_mismatch_raises_integrity_error(self, fig4, tmp_path):
        from repro.hin.errors import StoreIntegrityError

        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        npz = next(tmp_path.glob("*.npz"))
        payload = bytearray(npz.read_bytes())
        payload[-1] ^= 0xFF
        npz.write_bytes(bytes(payload))
        with pytest.raises(StoreIntegrityError):
            store.load(path)

    def test_retry_policy_validation(self, tmp_path):
        with pytest.raises(QueryError):
            MatrixStore(tmp_path, io_retries=0)
        with pytest.raises(QueryError):
            MatrixStore(tmp_path, io_backoff_s=-1.0)


class TestRetriedIO:
    def _plan(self, site, occurrences, transient=True):
        from repro.runtime.faults import FaultPlan, FaultSpec

        return FaultPlan(
            [
                FaultSpec(site, occ, "fail", transient=transient)
                for occ in occurrences
            ]
        )

    def test_transient_write_fault_absorbed_by_retry(self, fig4, tmp_path):
        from repro.runtime.faults import SITE_STORE_WRITE
        from repro.runtime.limits import execution_scope

        store = MatrixStore(tmp_path, io_backoff_s=0.0)
        path = fig4.schema.path("APC")
        plan = self._plan(SITE_STORE_WRITE, [0])
        with execution_scope(faults=plan):
            store.save(fig4, [path])
        assert (SITE_STORE_WRITE, 0, "fail") in plan.fired
        assert store.load(path).nnz > 0

    def test_transient_read_fault_absorbed_by_retry(self, fig4, tmp_path):
        from repro.runtime.faults import SITE_STORE_READ
        from repro.runtime.limits import execution_scope

        store = MatrixStore(tmp_path, io_backoff_s=0.0)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        plan = self._plan(SITE_STORE_READ, [0])
        with execution_scope(faults=plan):
            loaded = store.load(path)
        assert loaded.nnz > 0
        assert plan.fired == [(SITE_STORE_READ, 0, "fail")]

    def test_persistent_faults_exhaust_retries(self, fig4, tmp_path):
        from repro.core.store import DEFAULT_IO_RETRIES
        from repro.runtime.faults import SITE_STORE_READ
        from repro.runtime.limits import execution_scope

        store = MatrixStore(tmp_path, io_backoff_s=0.0)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        plan = self._plan(SITE_STORE_READ, range(DEFAULT_IO_RETRIES))
        with execution_scope(faults=plan):
            with pytest.raises(OSError):
                store.load(path)
        assert len(plan.fired) == DEFAULT_IO_RETRIES

    def test_terminal_injected_fault_is_not_retried(self, fig4, tmp_path):
        """Non-transient injected faults are typed errors, not OSError:
        the retry loop must not absorb them."""
        from repro.hin.errors import InjectedFaultError
        from repro.runtime.faults import SITE_STORE_READ
        from repro.runtime.limits import execution_scope

        store = MatrixStore(tmp_path, io_backoff_s=0.0)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        plan = self._plan(SITE_STORE_READ, [0], transient=False)
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError):
                store.load(path)
        assert len(plan.fired) == 1
