"""Unit tests for the on-disk matrix store (Section 4.6, item 1)."""

import numpy as np
import pytest

from repro.core.cache import PathMatrixCache
from repro.core.store import MatrixStore
from repro.hin.errors import QueryError
from repro.hin.matrices import reachable_probability_matrix


class TestMatrixStore:
    def test_save_and_load_roundtrip(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        path = fig4.schema.path("APC")
        store.save(fig4, [path])
        loaded = store.load(path)
        np.testing.assert_allclose(
            loaded.toarray(),
            reachable_probability_matrix(fig4, path).toarray(),
        )

    def test_contains(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])
        assert store.contains(apc)
        assert not store.contains(fig4.schema.path("APA"))

    def test_stored_paths_listing(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        store.save(fig4, [fig4.schema.path("APC"), fig4.schema.path("APA")])
        assert len(store.stored_paths()) == 2

    def test_load_missing_raises(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        with pytest.raises(QueryError):
            store.load(fig4.schema.path("APC"))

    def test_load_into_cache(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        apa = fig4.schema.path("APA")
        store.save(fig4, [apc, apa])

        cache = PathMatrixCache(fig4)
        loaded = store.load_into(cache)
        assert loaded == 2
        assert cache.contains(apc) and cache.contains(apa)
        # Fetching from the warmed cache is a hit, not a recomputation.
        cache.reach_prob(apc)
        assert cache.hits == 1

    def test_loaded_matrices_answer_queries(self, fig4, tmp_path):
        """The §4.6 workflow: persist off-line, reload, query on-line."""
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])

        cache = PathMatrixCache(fig4)
        store.load_into(cache)
        matrix = cache.reach_prob(apc)
        tom = fig4.node_index("author", "Tom")
        kdd = fig4.node_index("conference", "KDD")
        assert matrix[tom, kdd] == pytest.approx(1.0)

    def test_overwrite_same_path(self, fig4, tmp_path):
        store = MatrixStore(tmp_path)
        apc = fig4.schema.path("APC")
        store.save(fig4, [apc])
        store.save(fig4, [apc])  # idempotent overwrite
        assert len(store.stored_paths()) == 1

    def test_reuses_supplied_cache(self, fig4, tmp_path):
        cache = PathMatrixCache(fig4)
        path = fig4.schema.path("APC")
        cache.reach_prob(path)
        store = MatrixStore(tmp_path)
        store.save(fig4, [path], cache=cache)
        assert cache.hits == 1  # save() fetched from the cache

    def test_inverse_relation_paths_roundtrip(self, fig4, tmp_path):
        """Paths containing inverse relation names must survive the
        filename slug and reload through the schema."""
        store = MatrixStore(tmp_path)
        cpa = fig4.schema.path("CPA")  # built from inverse relations
        store.save(fig4, [cpa])
        cache = PathMatrixCache(fig4)
        store.load_into(cache)
        assert cache.contains(cpa)
