"""Unit tests for relevance explanations."""

import pytest

from repro.core.explain import explain_relevance
from repro.core.hetesim import hetesim_pair
from repro.hin.errors import QueryError


class TestEvenPathExplanations:
    def test_shared_paper_explains_mary_kdd(self, fig4):
        path = fig4.schema.path("APC")
        contributions = explain_relevance(fig4, path, "Mary", "KDD")
        assert contributions[0].middle == "p2"
        assert contributions[0].share == pytest.approx(1.0)

    def test_tom_kdd_splits_between_two_papers(self, fig4):
        path = fig4.schema.path("APC")
        contributions = explain_relevance(fig4, path, "Tom", "KDD")
        middles = {c.middle for c in contributions}
        assert middles == {"p1", "p2"}
        for contribution in contributions:
            assert contribution.share == pytest.approx(0.5)

    def test_contributions_sum_to_raw_score(self, fig4):
        path = fig4.schema.path("APC")
        raw = hetesim_pair(fig4, path, "Tom", "KDD", normalized=False)
        contributions = explain_relevance(fig4, path, "Tom", "KDD", k=10)
        assert sum(c.contribution for c in contributions) == pytest.approx(raw)

    def test_shares_sum_to_one(self, fig4):
        path = fig4.schema.path("APAPC")
        contributions = explain_relevance(
            fig4, path, "Tom", "SIGMOD", k=100
        )
        assert sum(c.share for c in contributions) == pytest.approx(1.0)

    def test_descending_contribution_order(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVCVPA")
        hub = acm.personas["hub_author"]
        contributions = explain_relevance(
            graph, path, hub, "peer-author-1", k=10
        )
        values = [c.contribution for c in contributions]
        assert values == sorted(values, reverse=True)

    def test_conference_middle_explains_peer_similarity(self, acm):
        """Under APVCVPA the middle type is conference: the explanation
        for hub ~ peer must be dominated by KDD."""
        graph = acm.graph
        path = graph.schema.path("APVCVPA")
        hub = acm.personas["hub_author"]
        contributions = explain_relevance(
            graph, path, hub, "peer-author-1", k=1
        )
        assert contributions[0].middle == "KDD"


class TestOddPathExplanations:
    def test_edge_objects_reported_as_pairs(self, fig5):
        path = fig5.schema.path("AB")
        contributions = explain_relevance(fig5, path, "a2", "b3")
        assert contributions[0].middle == ("a2", "b3")
        assert contributions[0].share == pytest.approx(1.0)

    def test_odd_acm_path(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVC")
        hub = acm.personas["hub_author"]
        contributions = explain_relevance(graph, path, hub, "KDD", k=3)
        # Middle objects are (paper, venue) publication instances; the
        # venues must belong to KDD.
        for contribution in contributions:
            paper, venue = contribution.middle
            assert venue.startswith("KDD")


class TestEdgeCases:
    def test_unrelated_pair_empty(self, fig4):
        path = fig4.schema.path("APC")
        assert explain_relevance(fig4, path, "Tom", "SIGMOD") == []

    def test_k_truncates(self, fig4):
        path = fig4.schema.path("APC")
        assert len(explain_relevance(fig4, path, "Tom", "KDD", k=1)) == 1

    def test_bad_k(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            explain_relevance(fig4, path, "Tom", "KDD", k=0)

    def test_unknown_nodes(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            explain_relevance(fig4, path, "ghost", "KDD")
        with pytest.raises(QueryError):
            explain_relevance(fig4, path, "Tom", "ghost")

    def test_forward_backward_probabilities_consistent(self, fig4):
        path = fig4.schema.path("APC")
        for contribution in explain_relevance(fig4, path, "Mary", "KDD"):
            assert contribution.contribution == pytest.approx(
                contribution.forward_probability
                * contribution.backward_probability
            )
