"""HeteSim on the paper's worked examples (Example 2, Fig. 5)."""

import numpy as np
import pytest

from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.hin.errors import QueryError


class TestExample2:
    """Example 2: HeteSim(Tom, KDD | APC) = 0.5 (raw)."""

    def test_raw_value(self, fig4):
        path = fig4.schema.path("APC")
        assert hetesim_pair(
            fig4, path, "Tom", "KDD", normalized=False
        ) == pytest.approx(0.5)

    def test_normalized_value_is_one(self, fig4):
        # Tom's forward distribution and KDD's backward distribution are
        # both uniform over {p1, p2}; their cosine is 1.
        path = fig4.schema.path("APC")
        assert hetesim_pair(fig4, path, "Tom", "KDD") == pytest.approx(1.0)

    def test_tom_unrelated_to_sigmod_via_apc(self, fig4):
        path = fig4.schema.path("APC")
        assert hetesim_pair(fig4, path, "Tom", "SIGMOD") == 0.0

    def test_tom_related_to_sigmod_via_coauthors(self, fig4):
        """Section 4.2: Tom relates to SIGMOD along APAPC (his co-author
        Mary publishes there), but not along APC."""
        path = fig4.schema.path("APAPC")
        assert hetesim_pair(fig4, path, "Tom", "SIGMOD") > 0.0

    def test_jim_most_relevant_to_sigmod(self, fig4):
        path = fig4.schema.path("APC")
        jim = hetesim_pair(fig4, path, "Jim", "SIGMOD")
        mary = hetesim_pair(fig4, path, "Mary", "SIGMOD")
        tom = hetesim_pair(fig4, path, "Tom", "SIGMOD")
        assert jim > mary > tom


class TestFig5:
    """Fig. 5(c): raw HeteSim values of the bipartite example."""

    def test_raw_matrix_matches_paper(self, fig5):
        path = fig5.schema.path("AB")
        raw = hetesim_matrix(fig5, path, normalized=False)
        expected = np.array(
            [
                [1 / 2, 1 / 4, 0.0, 0.0],
                [0.0, 1 / 6, 1 / 3, 1 / 6],
                [0.0, 0.0, 0.0, 1 / 2],
            ]
        )
        np.testing.assert_allclose(raw, expected)

    def test_a2_closest_to_b3(self, fig5):
        """a2 links b2, b3, b4 equally, but b3 links only a2 -- so b3 is
        the most related (the paper's mutual-influence argument)."""
        path = fig5.schema.path("AB")
        raw = hetesim_matrix(fig5, path, normalized=False)
        a2 = fig5.node_index("a", "a2")
        b_scores = raw[a2]
        b3 = fig5.node_index("b", "b3")
        assert b_scores.argmax() == b3

    def test_normalized_in_unit_interval(self, fig5):
        path = fig5.schema.path("AB")
        normalized = hetesim_matrix(fig5, path)
        assert (normalized >= 0).all() and (normalized <= 1 + 1e-12).all()

    def test_normalization_preserves_order(self, fig5):
        """Fig. 5(d): normalisation rescales but keeps each row's ranking."""
        path = fig5.schema.path("AB")
        raw = hetesim_matrix(fig5, path, normalized=False)
        normalized = hetesim_matrix(fig5, path)
        for row in range(raw.shape[0]):
            assert list(np.argsort(raw[row])) == list(np.argsort(normalized[row]))


class TestValidation:
    def test_unknown_source_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            hetesim_pair(fig4, path, "Nobody", "KDD")

    def test_unknown_target_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            hetesim_pair(fig4, path, "Tom", "NIPS")

    def test_wrong_typed_key_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            hetesim_pair(fig4, path, "KDD", "Tom")
