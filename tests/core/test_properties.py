"""The paper's Properties 1-5, verified numerically.

Property 1 (unique atomic decomposition) is covered in
``tests/hin/test_decomposition.py`` and Property 2 (U/V transposition) in
``tests/hin/test_matrices.py``; this module covers the measure-level
Properties 3-5 plus the semi-metric axioms of Section 4.5.
"""

import numpy as np
import pytest

from repro.baselines.simrank import simrank_meeting_iterations
from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.datasets.random_hin import make_random_bipartite, make_random_hin
from repro.datasets.schemas import acm_schema, toy_apc_schema


@pytest.fixture(scope="module")
def apc_graph():
    return make_random_hin(
        toy_apc_schema(),
        sizes={"author": 15, "paper": 30, "conference": 5},
        edge_prob=0.15,
        seed=11,
        ensure_connected_rows=True,
    )


PATHS_TO_CHECK = ["APC", "AP", "APA", "APCPA", "CPA", "PC", "CPAPC"]


class TestProperty3Symmetry:
    """HeteSim(a, b | P) == HeteSim(b, a | P^-1) for arbitrary paths."""

    @pytest.mark.parametrize("spec", PATHS_TO_CHECK)
    def test_matrix_symmetry(self, apc_graph, spec):
        path = apc_graph.schema.path(spec)
        forward = hetesim_matrix(apc_graph, path)
        backward = hetesim_matrix(apc_graph, path.reverse())
        np.testing.assert_allclose(forward, backward.T, atol=1e-12)

    @pytest.mark.parametrize("spec", PATHS_TO_CHECK)
    def test_raw_matrix_symmetry(self, apc_graph, spec):
        path = apc_graph.schema.path(spec)
        forward = hetesim_matrix(apc_graph, path, normalized=False)
        backward = hetesim_matrix(
            apc_graph, path.reverse(), normalized=False
        )
        np.testing.assert_allclose(forward, backward.T, atol=1e-12)

    def test_symmetric_path_gives_symmetric_matrix(self, apc_graph):
        path = apc_graph.schema.path("APA")
        matrix = hetesim_matrix(apc_graph, path)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)


class TestProperty4SelfMaximum:
    """HeteSim in [0, 1]; 1 exactly when the half-distributions match."""

    @pytest.mark.parametrize("spec", PATHS_TO_CHECK)
    def test_unit_interval(self, apc_graph, spec):
        path = apc_graph.schema.path(spec)
        matrix = hetesim_matrix(apc_graph, path)
        assert (matrix >= -1e-12).all()
        assert (matrix <= 1 + 1e-12).all()

    @pytest.mark.parametrize("spec", ["APA", "APCPA", "CPAPC"])
    def test_self_relevance_is_one_on_symmetric_paths(self, apc_graph, spec):
        path = apc_graph.schema.path(spec)
        matrix = hetesim_matrix(apc_graph, path)
        diagonal = np.diag(matrix)
        # Objects with a live half-distribution score exactly 1 against
        # themselves; isolated objects score 0 by convention.
        assert ((np.isclose(diagonal, 1.0)) | (diagonal == 0.0)).all()

    def test_self_is_row_maximum_on_symmetric_paths(self, apc_graph):
        path = apc_graph.schema.path("APA")
        matrix = hetesim_matrix(apc_graph, path)
        for i in range(matrix.shape[0]):
            if matrix[i, i] > 0:
                assert matrix[i, i] >= matrix[i].max() - 1e-12

    def test_identity_of_indiscernibles_distance(self, apc_graph):
        """dis(s, s) = 1 - HeteSim(s, s) = 0 on symmetric paths."""
        path = apc_graph.schema.path("APA")
        matrix = hetesim_matrix(apc_graph, path)
        connected = np.diag(matrix) > 0
        distances = 1.0 - np.diag(matrix)[connected]
        np.testing.assert_allclose(distances, 0.0, atol=1e-12)

    def test_non_negativity(self, apc_graph):
        for spec in PATHS_TO_CHECK:
            matrix = hetesim_matrix(apc_graph, apc_graph.schema.path(spec))
            assert (matrix >= -1e-15).all()


class TestProperty5SimRankConnection:
    """On a bipartite graph with C = 1, the k-hop SimRank recursion equals
    raw HeteSim along (R R^-1)^k (the appendix's induction)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_source_side(self, seed, hops):
        graph = make_random_bipartite(8, 6, edge_prob=0.4, seed=seed)
        iterations = simrank_meeting_iterations(graph, "r", hops, side="source")
        # (R R^-1)^k as a meta path: ABAB...A with 2k relations.
        spec = "A" + "BA" * hops
        meta = graph.schema.path(spec)
        hetesim_raw = hetesim_matrix(graph, meta, normalized=False)
        np.testing.assert_allclose(
            iterations[hops - 1], hetesim_raw, atol=1e-10
        )

    @pytest.mark.parametrize("hops", [1, 2])
    def test_target_side(self, hops):
        graph = make_random_bipartite(7, 9, edge_prob=0.4, seed=5)
        iterations = simrank_meeting_iterations(graph, "r", hops, side="target")
        spec = "B" + "AB" * hops
        meta = graph.schema.path(spec)
        hetesim_raw = hetesim_matrix(graph, meta, normalized=False)
        np.testing.assert_allclose(
            iterations[hops - 1], hetesim_raw, atol=1e-10
        )


class TestAcmPaths:
    """Properties hold on the richer ACM schema, including odd paths."""

    @pytest.mark.parametrize("spec", ["APVC", "CVPA", "APT", "CVPAF", "APVCVPA"])
    def test_symmetry_and_range(self, acm, spec):
        graph = acm.graph
        path = graph.schema.path(spec)
        forward = hetesim_matrix(graph, path)
        backward = hetesim_matrix(graph, path.reverse())
        np.testing.assert_allclose(forward, backward.T, atol=1e-12)
        assert (forward >= -1e-12).all() and (forward <= 1 + 1e-9).all()
