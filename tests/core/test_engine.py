"""Unit tests for the high-level HeteSimEngine."""

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.hin.errors import QueryError


class TestRelevance:
    def test_matches_functional_layer(self, fig4_engine, fig4):
        for spec in ("APC", "APA", "AP", "APAPC"):
            path = fig4.schema.path(spec)
            engine_matrix = fig4_engine.relevance_matrix(path)
            functional = hetesim_matrix(fig4, path)
            np.testing.assert_allclose(engine_matrix, functional, atol=1e-12)

    def test_pair_query(self, fig4_engine):
        assert fig4_engine.relevance(
            "Tom", "KDD", "APC", normalized=False
        ) == pytest.approx(0.5)
        assert fig4_engine.relevance("Tom", "KDD", "APC") == pytest.approx(1.0)

    def test_accepts_path_specs(self, fig4_engine, fig4):
        by_string = fig4_engine.relevance("Tom", "KDD", "APC")
        by_object = fig4_engine.relevance(
            "Tom", "KDD", fig4.schema.path("APC")
        )
        by_names = fig4_engine.relevance(
            "Tom", "KDD", ["author", "paper", "conference"]
        )
        assert by_string == by_object == by_names

    def test_vector_matches_matrix_row(self, fig4_engine):
        matrix = fig4_engine.relevance_matrix("APC")
        vector = fig4_engine.relevance_vector("Tom", "APC")
        np.testing.assert_allclose(vector, matrix[0], atol=1e-12)

    def test_unknown_object_rejected(self, fig4_engine):
        with pytest.raises(QueryError):
            fig4_engine.relevance("ghost", "KDD", "APC")

    def test_raw_mode(self, fig4_engine):
        raw = fig4_engine.relevance_matrix("APC", normalized=False)
        assert raw.max() <= 1.0 + 1e-12
        tom_kdd = raw[0, 0]
        assert tom_kdd == pytest.approx(0.5)


class TestCaching:
    def test_halves_cached_per_path(self, fig4_engine):
        path = fig4_engine.path("APC")
        first = fig4_engine.halves(path)
        second = fig4_engine.halves(path)
        assert first[0] is second[0]

    def test_shared_prefixes_across_paths(self, fig4_engine):
        fig4_engine.relevance_matrix("APAPC")
        # The underlying PM cache holds prefixes reused by shorter paths.
        assert fig4_engine.cache.num_cached > 0

    def test_clear_cache(self, fig4_engine):
        fig4_engine.relevance_matrix("APC")
        fig4_engine.clear_cache()
        assert fig4_engine.cache.num_cached == 0

    def test_results_unchanged_after_cache_warm(self, fig4_engine):
        cold = fig4_engine.relevance_matrix("APAPC")
        warm = fig4_engine.relevance_matrix("APAPC")
        np.testing.assert_array_equal(cold, warm)


class TestRanking:
    def test_rank_order_descending(self, fig4_engine):
        ranking = fig4_engine.rank("Tom", "APC")
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_prefix_of_rank(self, fig4_engine):
        assert fig4_engine.top_k("Tom", "APC", k=1) == fig4_engine.rank(
            "Tom", "APC"
        )[:1]

    def test_top_k_nonpositive_k_is_empty(self, fig4_engine):
        assert fig4_engine.top_k("Tom", "APC", k=0) == []
        assert fig4_engine.top_k("Tom", "APC", k=-3) == []

    def test_deterministic_tie_break(self, fig4_engine):
        first = fig4_engine.rank("Tom", "APC")
        second = fig4_engine.rank("Tom", "APC")
        assert first == second

    def test_tom_top_conference_is_kdd(self, fig4_engine):
        assert fig4_engine.top_k("Tom", "APC", k=1)[0][0] == "KDD"


class TestProfile:
    def test_profile_shape(self, fig4_engine):
        profile = fig4_engine.profile(
            "Tom",
            {"conferences": "APC", "co-authors": "APA"},
            k=2,
        )
        assert set(profile) == {"conferences", "co-authors"}
        assert len(profile["conferences"]) == 2

    def test_profile_self_first_on_symmetric_path(self, fig4_engine):
        profile = fig4_engine.profile("Tom", {"coauthors": "APA"}, k=3)
        assert profile["coauthors"][0][0] == "Tom"
        assert profile["coauthors"][0][1] == pytest.approx(1.0)


class TestRelevanceSubmatrix:
    def test_rows_match_full_matrix(self, fig4_engine, fig4):
        full = fig4_engine.relevance_matrix("APC")
        sub = fig4_engine.relevance_submatrix(["Mary", "Tom"], "APC")
        mary = fig4.node_index("author", "Mary")
        tom = fig4.node_index("author", "Tom")
        np.testing.assert_allclose(sub[0], full[mary], atol=1e-12)
        np.testing.assert_allclose(sub[1], full[tom], atol=1e-12)

    def test_raw_mode(self, fig4_engine, fig4):
        full = fig4_engine.relevance_matrix("APC", normalized=False)
        sub = fig4_engine.relevance_submatrix(
            ["Tom"], "APC", normalized=False
        )
        tom = fig4.node_index("author", "Tom")
        np.testing.assert_allclose(sub[0], full[tom], atol=1e-12)

    def test_empty_subset_rejected(self, fig4_engine):
        with pytest.raises(QueryError):
            fig4_engine.relevance_submatrix([], "APC")

    def test_unknown_source_rejected(self, fig4_engine):
        with pytest.raises(QueryError):
            fig4_engine.relevance_submatrix(["ghost"], "APC")

    def test_duplicate_sources_allowed(self, fig4_engine):
        sub = fig4_engine.relevance_submatrix(["Tom", "Tom"], "APC")
        np.testing.assert_allclose(sub[0], sub[1])


class TestMutationSafety:
    def test_mutation_invalidates_caches(self, fig4):
        engine = HeteSimEngine(fig4)
        before = engine.relevance("Tom", "SIGMOD", "APC")
        assert before == 0.0
        # Tom publishes in SIGMOD: scores must change on the next query.
        fig4.add_edge("writes", "Tom", "p3")
        after = engine.relevance("Tom", "SIGMOD", "APC")
        assert after > 0.0

    def test_symmetric_path_shares_half_matrix(self, fig4_engine):
        path = fig4_engine.path("APA")
        left, right, _, _ = fig4_engine.halves(path)
        assert left is right

    def test_version_counter_visible(self, fig4):
        engine = HeteSimEngine(fig4)
        engine.relevance_matrix("APC")
        cached = engine.cache.num_cached
        assert cached > 0
        fig4.add_node("author", "newcomer")
        engine.relevance_matrix("APC")  # triggers rebuild
        assert engine.graph.version == fig4.version

    def test_unrelated_relation_mutation_keeps_halves(self, fig4):
        """Selective invalidation: adding an affiliation-style edge to a
        relation outside the path must not discard its half matrices."""
        engine = HeteSimEngine(fig4)
        path = engine.path("PC")  # only published_in
        before = engine.halves(path)
        # Mutate writes with existing endpoints: published_in untouched.
        fig4.add_edge("writes", "Tom", "p3")
        after = engine.halves(path)
        assert before[0] is after[0]

    def test_touched_relation_mutation_refreshes_halves(self, fig4):
        engine = HeteSimEngine(fig4)
        path = engine.path("APC")
        before = engine.halves(path)
        fig4.add_edge("writes", "Tom", "p3")
        after = engine.halves(path)
        assert before[0] is not after[0]


class _RacyHalves(dict):
    """Half-memo dict that re-enacts the stale-read interleaving.

    The first ``get`` captures whatever is memoised, lets a *fresh*
    materialisation land (by calling ``engine.halves`` inline, exactly
    what a concurrent warmer would do between a reader's memo lookup
    and its freshness check), then hands the reader the captured stale
    value.  With the signature stored beside the result in one entry
    the reader rejects the stale value; with the signature in a second
    dict the reader pairs it with the freshly written signature and
    serves pre-mutation matrices.
    """

    def __init__(self, engine, path, mapping):
        super().__init__(mapping)
        self._engine = engine
        self._path = path
        self._armed = True

    def get(self, key, default=None):
        stale = super().get(key, default)
        if self._armed and stale is not None:
            self._armed = False  # disarm before nesting: no recursion
            self._engine.halves(self._path)
        return stale


class TestStaleHalvesRace:
    def test_stale_tuple_cannot_pair_with_fresh_signature(self, fig4):
        engine = HeteSimEngine(fig4)
        path = engine.path("APC")
        engine.halves(path)  # memoise at the pre-mutation signature
        fig4.add_edge("writes", "Tom", "p3")  # invalidates the memo
        engine._halves = _RacyHalves(engine, path, engine._halves)

        left, _, _, _ = engine.halves(path)

        fresh_left, _, _, _ = HeteSimEngine(fig4).halves(path)
        np.testing.assert_array_equal(
            left.toarray(), fresh_left.toarray()
        )


class TestRelevancePairs:
    def test_matches_individual_queries(self, fig4_engine):
        pairs = [("Tom", "KDD"), ("Mary", "SIGMOD"), ("Jim", "KDD")]
        batched = fig4_engine.relevance_pairs(pairs, "APC")
        individual = [
            fig4_engine.relevance(s, t, "APC") for s, t in pairs
        ]
        assert batched == pytest.approx(individual)

    def test_raw_mode(self, fig4_engine):
        scores = fig4_engine.relevance_pairs(
            [("Tom", "KDD")], "APC", normalized=False
        )
        assert scores == [pytest.approx(0.5)]

    def test_empty_rejected(self, fig4_engine):
        with pytest.raises(QueryError):
            fig4_engine.relevance_pairs([], "APC")

    def test_unknown_pair_rejected(self, fig4_engine):
        with pytest.raises(QueryError):
            fig4_engine.relevance_pairs([("ghost", "KDD")], "APC")


class TestWarm:
    """`engine.warm`: the §4.6 off-line stage as an API."""

    def test_warm_memoises_halves(self, fig4):
        engine = HeteSimEngine(fig4)
        report = engine.warm(["APC", "APCPA"], workers=2)
        assert set(report.paths) == {"APC", "APCPA"}
        for spec in ("APC", "APCPA"):
            assert engine.has_halves(engine.path(spec))
        # Warmed queries trigger no further materialisation.
        misses = engine.cache.stats().misses
        engine.top_k("Tom", "APC", k=2)
        engine.top_k("Tom", "APCPA", k=2)
        assert engine.cache.stats().misses == misses

    def test_warm_deduplicates_specs(self, fig4):
        engine = HeteSimEngine(fig4)
        report = engine.warm(["APC", "APC", "APC"])
        assert report.paths == ("APC",)

    def test_warm_persists_through_store(self, fig4, tmp_path):
        from repro.core.cache import PathMatrixCache
        from repro.core.store import MatrixStore

        engine = HeteSimEngine(fig4)
        store = MatrixStore(tmp_path / "store")
        report = engine.warm(["APC"], store=store)
        assert report.persisted
        assert store.stored_paths()

        # A fresh process reloads the halves instead of recomputing.
        cache = PathMatrixCache(fig4)
        assert store.load_into(cache) == len(report.persisted)
        fresh = HeteSimEngine(fig4)
        fresh.cache = cache
        misses_before = cache.stats().misses
        fresh.halves(fresh.path("APC"))
        assert cache.stats().misses == misses_before
        assert fresh.relevance("Tom", "KDD", "APC") == pytest.approx(
            HeteSimEngine(fig4).relevance("Tom", "KDD", "APC")
        )

    def test_warm_report_summary(self, fig4):
        engine = HeteSimEngine(fig4)
        summary = engine.warm(["APC"], workers=3).summary()
        assert "APC" in summary and "3 worker(s)" in summary

    def test_warm_reports_skipped_odd_paths(self, fig4, tmp_path):
        from repro.core.store import MatrixStore

        engine = HeteSimEngine(fig4)
        store = MatrixStore(tmp_path / "store")
        report = engine.warm(["AP", "APC"], store=store)
        # The odd path is memoised in process...
        assert engine.has_halves(engine.path("AP"))
        # ...but its edge-object transition halves cannot persist, and
        # the report must say so instead of implying full coverage.
        assert report.skipped == ("AP",)
        assert "skipped" in report.summary()
        assert "AP" in report.summary()

    def test_warm_without_store_skips_nothing(self, fig4):
        engine = HeteSimEngine(fig4)
        report = engine.warm(["AP"])
        assert report.skipped == ()
        assert "skipped" not in report.summary()
