"""Unit tests for the low-rank approximate measure."""

import numpy as np
import pytest

from repro.core.engine import HeteSimEngine
from repro.core.hetesim import hetesim_matrix
from repro.core.lowrank import LowRankHeteSim
from repro.hin.errors import QueryError


@pytest.fixture(scope="module")
def acm_path(acm):
    return acm.graph.schema.path("APVCVPA")


class TestApproximationQuality:
    def test_error_shrinks_with_rank(self, acm, acm_path):
        graph = acm.graph
        exact = hetesim_matrix(graph, acm_path)

        def error(rank):
            approx = LowRankHeteSim(graph, acm_path, rank=rank)
            return float(
                np.abs(approx.relevance_matrix() - exact).mean()
            )

        assert error(12) <= error(2) + 1e-12

    def test_near_full_rank_is_accurate(self):
        from repro.datasets.random_hin import make_random_hin
        from repro.datasets.schemas import toy_apc_schema

        graph = make_random_hin(
            toy_apc_schema(),
            sizes={"author": 15, "paper": 25, "conference": 8},
            edge_prob=0.2,
            seed=4,
            ensure_connected_rows=True,
        )
        path = graph.schema.path("APC")
        # Per-half clamping: left factors at 14/15, right at its svds
        # ceiling of 7/8 -- nearly all the spectral energy.
        approx = LowRankHeteSim(graph, path, rank=14)
        assert (approx.rank_left, approx.rank_right) == (14, 7)
        assert approx.captured_energy > 0.99
        exact = hetesim_matrix(graph, path)
        error = np.abs(approx.relevance_matrix() - exact)
        assert error.mean() < 0.05
        assert error.max() < 0.15

    def test_captured_energy_reported(self, acm, acm_path):
        approx = LowRankHeteSim(acm.graph, acm_path, rank=8)
        assert 0 < approx.captured_energy <= 1 + 1e-9

    def test_more_rank_more_energy(self, acm, acm_path):
        low = LowRankHeteSim(acm.graph, acm_path, rank=2)
        high = LowRankHeteSim(acm.graph, acm_path, rank=10)
        assert high.captured_energy >= low.captured_energy - 1e-12


class TestQueries:
    def test_pair_matches_matrix_entry(self, acm, acm_path):
        graph = acm.graph
        approx = LowRankHeteSim(graph, acm_path, rank=8)
        matrix = approx.relevance_matrix()
        hub = acm.personas["hub_author"]
        i = graph.node_index("author", hub)
        j = graph.node_index("author", "peer-author-1")
        assert approx.relevance(hub, "peer-author-1") == pytest.approx(
            matrix[i, j], abs=1e-10
        )

    def test_top_k_finds_planted_structure(self, acm, acm_path):
        """Even a modest rank keeps the planted top neighbourhood."""
        graph = acm.graph
        engine = HeteSimEngine(graph)
        hub = acm.personas["hub_author"]
        exact_top = {k for k, _ in engine.top_k(hub, acm_path, k=5)}
        approx = LowRankHeteSim(graph, acm_path, rank=12)
        approx_top = {k for k, _ in approx.top_k(hub, k=5)}
        assert len(exact_top & approx_top) >= 3

    def test_raw_mode(self, acm, acm_path):
        graph = acm.graph
        approx = LowRankHeteSim(graph, acm_path, rank=8)
        raw = approx.relevance_matrix(normalized=False)
        exact_raw = hetesim_matrix(graph, acm_path, normalized=False)
        assert np.abs(raw - exact_raw).mean() < 0.05


class TestValidation:
    def test_bad_rank(self, acm, acm_path):
        with pytest.raises(QueryError):
            LowRankHeteSim(acm.graph, acm_path, rank=0)

    def test_generous_rank_clamped_per_half(self, fig4):
        path = fig4.schema.path("APC")
        approx = LowRankHeteSim(fig4, path, rank=100)
        # Halves are 3x4 and 2x4: ceilings 2 and 1.
        assert (approx.rank_left, approx.rank_right) == (2, 1)

    def test_tiny_half_rejected(self):
        from repro.datasets.schemas import bipartite_schema
        from repro.hin.graph import HeteroGraph

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1")
        path = graph.schema.path("ABA")  # halves have a 1-sized dim
        with pytest.raises(QueryError):
            LowRankHeteSim(graph, path, rank=3)

    def test_unknown_keys(self, acm, acm_path):
        approx = LowRankHeteSim(acm.graph, acm_path, rank=4)
        with pytest.raises(QueryError):
            approx.relevance("ghost", "peer-author-1")
        with pytest.raises(QueryError):
            approx.top_k("ghost")
        with pytest.raises(QueryError):
            approx.top_k("KDD-star", k=0)
