"""Unit tests for Monte-Carlo approximate HeteSim."""

import pytest

from repro.core.approx import monte_carlo_hetesim
from repro.core.hetesim import hetesim_pair
from repro.hin.errors import QueryError


class TestConvergence:
    def test_converges_on_even_path(self, fig4):
        path = fig4.schema.path("APC")
        exact = hetesim_pair(fig4, path, "Tom", "KDD")
        estimate = monte_carlo_hetesim(
            fig4, path, "Tom", "KDD", walks=4000, seed=0
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_converges_on_odd_path(self, fig5):
        path = fig5.schema.path("AB")
        exact = hetesim_pair(fig5, path, "a2", "b3")
        estimate = monte_carlo_hetesim(
            fig5, path, "a2", "b3", walks=4000, seed=0
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_raw_mode_converges(self, fig4):
        path = fig4.schema.path("APC")
        exact = hetesim_pair(fig4, path, "Tom", "KDD", normalized=False)
        estimate = monte_carlo_hetesim(
            fig4, path, "Tom", "KDD", walks=4000, normalized=False, seed=1
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_more_walks_reduce_error(self, fig4):
        """Average error over seeds shrinks with the walk budget."""
        path = fig4.schema.path("APAPC")
        exact = hetesim_pair(fig4, path, "Tom", "SIGMOD")

        def mean_error(walks):
            errors = [
                abs(
                    monte_carlo_hetesim(
                        fig4, path, "Tom", "SIGMOD", walks=walks, seed=seed
                    )
                    - exact
                )
                for seed in range(5)
            ]
            return sum(errors) / len(errors)

        assert mean_error(2000) <= mean_error(20) + 1e-9


class TestBehaviour:
    def test_deterministic_per_seed(self, fig4):
        path = fig4.schema.path("APC")
        first = monte_carlo_hetesim(fig4, path, "Tom", "KDD", walks=50, seed=7)
        second = monte_carlo_hetesim(fig4, path, "Tom", "KDD", walks=50, seed=7)
        assert first == second

    def test_zero_for_unreachable_pair(self, fig4):
        path = fig4.schema.path("APC")
        assert monte_carlo_hetesim(
            fig4, path, "Tom", "SIGMOD", walks=200, seed=0
        ) == 0.0

    def test_range(self, fig4):
        path = fig4.schema.path("APC")
        for seed in range(5):
            estimate = monte_carlo_hetesim(
                fig4, path, "Mary", "KDD", walks=100, seed=seed
            )
            assert 0 <= estimate <= 1 + 1e-9

    def test_dangling_source_scores_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        assert monte_carlo_hetesim(
            fig4, path, "lurker", "KDD", walks=100, seed=0
        ) == 0.0

    def test_weighted_edges_respected(self):
        """Heavier edges attract proportionally more walks."""
        from repro.datasets.schemas import bipartite_schema
        from repro.hin.graph import HeteroGraph

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1", weight=9.0)
        graph.add_edge("r", "a1", "b2", weight=1.0)
        path = graph.schema.path("AB")
        heavy = monte_carlo_hetesim(
            graph, path, "a1", "b1", walks=3000, normalized=False, seed=0
        )
        light = monte_carlo_hetesim(
            graph, path, "a1", "b2", walks=3000, normalized=False, seed=0
        )
        assert heavy > light


class TestValidation:
    def test_bad_walk_count(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            monte_carlo_hetesim(fig4, path, "Tom", "KDD", walks=0)

    def test_unknown_endpoints(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            monte_carlo_hetesim(fig4, path, "ghost", "KDD")
        with pytest.raises(QueryError):
            monte_carlo_hetesim(fig4, path, "Tom", "ghost")
