"""Unit tests for the planned materialisation layer (plan + backend)."""

import numpy as np
import pytest

from repro.core.backend import execute_plan, materialise, reach_prob_chain
from repro.core.plan import (
    estimate_product,
    optimal_chain_order,
    plan_path,
    sparse_chain_schedule,
)
from repro.hin.errors import QueryError
from repro.hin.matrices import reachable_probability_matrix


class TestOptimalChainOrder:
    def test_single_matrix_no_steps(self):
        assert optimal_chain_order([3, 4]) == []

    def test_two_matrices_one_step(self):
        assert optimal_chain_order([3, 4, 5]) == [(0, 1)]

    def test_clrs_textbook_example(self):
        """CLRS 15.2: dims (30,35,15,5,10,20,25) -> optimal
        ((A1 (A2 A3)) ((A4 A5) A6))."""
        schedule = optimal_chain_order([30, 35, 15, 5, 10, 20, 25])
        # 5 multiplications for 6 matrices.
        assert len(schedule) == 5
        # First emitted step (post-order) is A2 x A3.
        assert schedule[0] == (1, 2)

    def test_schedule_is_executable(self):
        rng = np.random.default_rng(0)
        dims = [4, 7, 2, 9, 3]
        matrices = [
            rng.random((dims[i], dims[i + 1]))
            for i in range(len(dims) - 1)
        ]
        expected = matrices[0] @ matrices[1] @ matrices[2] @ matrices[3]
        working = list(matrices)
        for left, right in optimal_chain_order(dims):
            working[left] = working[left] @ working[right]
            working.pop(right)
        assert len(working) == 1
        np.testing.assert_allclose(working[0], expected, atol=1e-10)

    def test_skewed_dims_prefer_small_middle(self):
        """(100x100)(100x2)(2x100): multiplying the right pair first
        costs 100*2*100 + 100*100*100; left-first costs 100*100*2 +
        100*2*100 -- the DP must pick left-first."""
        schedule = optimal_chain_order([100, 100, 2, 100])
        assert schedule[0] == (0, 1)

    def test_empty_chain_rejected(self):
        with pytest.raises(QueryError):
            optimal_chain_order([5])


class TestSparseChainSchedule:
    def test_single_factor_empty_schedule(self):
        schedule, estimates = sparse_chain_schedule([(3, 4)], [5.0])
        assert schedule == []
        assert estimates == []

    def test_two_factors_one_step(self):
        schedule, estimates = sparse_chain_schedule(
            [(3, 4), (4, 5)], [6.0, 8.0]
        )
        assert schedule == [(0, 1)]
        assert len(estimates) == 1
        shape, flops, nnz = estimates[0]
        assert shape == (3, 5)
        assert flops > 0 and nnz > 0

    def test_very_sparse_factor_multiplied_first(self):
        """Equal shapes but one near-empty factor: starting from the
        sparse end keeps every intermediate tiny, so the DP must break
        the left-to-right default."""
        shapes = [(100, 100), (100, 100), (100, 100)]
        nnzs = [10000.0, 10000.0, 10.0]
        schedule, estimates = sparse_chain_schedule(shapes, nnzs)
        assert schedule[0] == (1, 2)
        # The first product's estimated work reflects the sparse factor.
        assert estimates[0][1] < estimates[1][1]

    def test_near_ties_stay_left_associative(self):
        """Uniform chains keep the prefix-friendly left-to-right order."""
        shapes = [(50, 50)] * 4
        nnzs = [250.0] * 4
        schedule, _ = sparse_chain_schedule(shapes, nnzs)
        assert schedule == [(0, 1), (0, 1), (0, 1)]

    def test_estimate_product_zero_inputs(self):
        assert estimate_product((0, 5), 0.0, (5, 3), 4.0) == (0.0, 0.0)

    def test_estimate_product_dense_inputs_predict_dense_output(self):
        flops, nnz = estimate_product((10, 10), 100.0, (10, 10), 100.0)
        assert flops == pytest.approx(1000.0)
        assert nnz == pytest.approx(100.0, rel=1e-6)


class TestPlanPath:
    @pytest.mark.parametrize("spec", ["AP", "APC", "APAPC"])
    def test_planned_equals_left_to_right(self, fig4, spec):
        path = fig4.schema.path(spec)
        planned, stats = materialise(fig4, path)
        direct = reachable_probability_matrix(fig4, path).toarray()
        np.testing.assert_allclose(planned.toarray(), direct, atol=1e-12)
        assert stats.output_nnz == planned.nnz

    @pytest.mark.parametrize("spec", ["APVC", "APVCVPA", "CVPAPA"])
    def test_planned_equals_on_acm(self, acm, spec):
        graph = acm.graph
        path = graph.schema.path(spec)
        planned = reach_prob_chain(graph, path).toarray()
        direct = reachable_probability_matrix(graph, path).toarray()
        np.testing.assert_allclose(planned, direct, atol=1e-10)

    def test_plan_records_steps_and_describe(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVCVPA")
        plan = plan_path(graph, path)
        assert len(plan.steps) == len(plan.factors) - 1
        assert plan.est_flops > 0
        description = plan.describe()
        assert "plan[" in description

    def test_adjacency_weights_plan_uses_mirror(self, acm):
        """Symmetric count chains compute the shared half only once."""
        graph = acm.graph
        path = graph.schema.path("APVPA")
        plan = plan_path(graph, path, weights="adjacency")
        assert plan.shared is not None
        kinds = [factor.kind for factor in plan.factors]
        assert kinds[0] == "shared" and kinds[-1] == "shared_T"

    def test_adjacency_mirror_matches_direct_product(self, acm):
        graph = acm.graph
        path = graph.schema.path("APVPA")
        planned, stats = materialise(graph, path, weights="adjacency")
        product = None
        for relation in path.relations:
            step = graph.adjacency(relation.name)
            product = step if product is None else (product @ step).tocsr()
        np.testing.assert_allclose(
            planned.toarray(), product.toarray(), atol=1e-9
        )
        assert stats.shared is not None

    def test_bad_weights_rejected(self, fig4):
        with pytest.raises(QueryError):
            plan_path(fig4, fig4.schema.path("APC"), weights="bogus")

    def test_extra_right_factor_joins_chain(self, fig4):
        path = fig4.schema.path("AP")
        extra = reachable_probability_matrix(fig4, fig4.schema.path("PC"))
        planned, _ = materialise(fig4, path, extra_right=extra)
        direct = (
            reachable_probability_matrix(fig4, path) @ extra
        ).toarray()
        np.testing.assert_allclose(planned.toarray(), direct, atol=1e-12)

    def test_densified_steps_still_exact(self, fig4):
        """Tiny toy products fill in past the threshold and go dense;
        the result must be identical CSR either way."""
        path = fig4.schema.path("APAPA")
        planned, stats = materialise(fig4, path)
        direct = reachable_probability_matrix(fig4, path).toarray()
        np.testing.assert_allclose(planned.toarray(), direct, atol=1e-12)
        assert any(step.densified for step in stats.steps)

    def test_execute_plan_stats_shapes(self, fig4):
        path = fig4.schema.path("APC")
        plan = plan_path(fig4, path)
        matrix, stats = execute_plan(fig4, plan)
        assert stats.key == ("writes", "published_in")
        assert stats.output_shape == tuple(matrix.shape)
        assert stats.seconds >= 0
        for step in stats.steps:
            assert step.nnz >= 0 and step.seconds >= 0
