"""Public-API hygiene: exports resolve, everything public is documented.

These tests keep the packaging honest: every name in an ``__all__``
actually exists, every public module/class/function carries a docstring,
and the version marker stays consistent.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.hin",
    "repro.core",
    "repro.baselines",
    "repro.learning",
    "repro.datasets",
    "repro.experiments",
    "repro.runtime",
    "repro.serve",
    "repro.analysis",
]


def _all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if not hasattr(package, "__path__"):
            continue
        for info in pkgutil.iter_modules(package.__path__):
            names.add(f"{package_name}.{info.name}")
    # CLI module lives at top level.
    names.add("repro.cli")
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} must define __all__"
    for name in exported:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name!r} but it is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    """Every exported class/function has a docstring; every public method
    of exported classes does too."""
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        assert inspect.getdoc(item), f"{package_name}.{name} undocumented"
        if inspect.isclass(item):
            for attr_name, attr in vars(item).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    assert inspect.getdoc(attr), (
                        f"{package_name}.{name}.{attr_name} undocumented"
                    )


def test_version_marker():
    assert repro.__version__ == "1.0.0"


def test_base_error_catches_everything():
    """Every library error type derives from ReproError."""
    from repro.hin.errors import (
        AnalysisError,
        BudgetExceededError,
        DeadlineExceededError,
        GraphError,
        InjectedFaultError,
        PathError,
        QueryError,
        ReportError,
        ReproError,
        ResourceLimitError,
        SchemaError,
        StoreIntegrityError,
    )

    for error_type in (
        SchemaError,
        GraphError,
        PathError,
        QueryError,
        ResourceLimitError,
        DeadlineExceededError,
        BudgetExceededError,
        StoreIntegrityError,
        InjectedFaultError,
        ReportError,
        AnalysisError,
    ):
        assert issubclass(error_type, ReproError)

    for limit_error in (DeadlineExceededError, BudgetExceededError):
        assert issubclass(limit_error, ResourceLimitError)
