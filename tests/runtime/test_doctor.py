"""Tests for the artefact health checker behind ``repro doctor``."""

import json

from repro.core.store import MatrixStore
from repro.hin.io import save_graph
from repro.runtime.doctor import run_doctor


def _saved(fig4, tmp_path):
    graph_path = tmp_path / "graph.json"
    save_graph(fig4, graph_path)
    return graph_path


def _checks_by_name(report):
    return {check.name: check for check in report.checks}


class TestGraphChecks:
    def test_healthy_graph_passes(self, fig4, tmp_path):
        report = run_doctor(_saved(fig4, tmp_path))
        assert report.ok
        names = _checks_by_name(report)
        assert names["graph.load"].ok
        assert names["graph.schema"].ok
        assert "OK" in report.summary()

    def test_missing_graph_file_named_error(self, tmp_path):
        report = run_doctor(tmp_path / "absent.json")
        assert not report.ok
        check = _checks_by_name(report)["graph.load"]
        assert not check.ok
        assert check.error == "FileNotFoundError"
        assert "[FAIL] graph.load" in check.render()

    def test_invalid_json_named_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        report = run_doctor(path)
        assert not report.ok
        assert _checks_by_name(report)["graph.load"].error == (
            "JSONDecodeError"
        )

    def test_graph_only_mode_skips_store_checks(self, fig4, tmp_path):
        report = run_doctor(_saved(fig4, tmp_path))
        assert all(
            not check.name.startswith("store.") for check in report.checks
        )


class TestStoreChecks:
    def test_healthy_store_passes(self, fig4, tmp_path):
        graph_path = _saved(fig4, tmp_path)
        store_dir = tmp_path / "store"
        store = MatrixStore(store_dir)
        store.save(fig4, [fig4.schema.path("APC"), fig4.schema.path("APA")])
        report = run_doctor(graph_path, store_dir)
        assert report.ok
        names = _checks_by_name(report)
        assert names["store.index"].ok
        entry_checks = [n for n in names if n.startswith("store.entry:")]
        assert len(entry_checks) == 2
        assert "doctor:" in report.summary()

    def test_missing_store_directory(self, fig4, tmp_path):
        report = run_doctor(_saved(fig4, tmp_path), tmp_path / "nowhere")
        assert not report.ok
        check = _checks_by_name(report)["store.index"]
        assert check.error == "FileNotFoundError"

    def test_corrupted_payload_names_integrity_error(self, fig4, tmp_path):
        graph_path = _saved(fig4, tmp_path)
        store_dir = tmp_path / "store"
        store = MatrixStore(store_dir)
        store.save(fig4, [fig4.schema.path("APC")])
        npz = next(store_dir.glob("*.npz"))
        payload = bytearray(npz.read_bytes())
        payload[0] ^= 0xFF
        npz.write_bytes(bytes(payload))
        report = run_doctor(graph_path, store_dir)
        assert not report.ok
        failing = [c for c in report.checks if not c.ok]
        assert len(failing) == 1
        assert failing[0].name.startswith("store.entry:")
        assert failing[0].error == "StoreIntegrityError"
        assert "checksum mismatch" in failing[0].detail

    def test_deleted_payload_names_error(self, fig4, tmp_path):
        graph_path = _saved(fig4, tmp_path)
        store_dir = tmp_path / "store"
        store = MatrixStore(store_dir)
        store.save(fig4, [fig4.schema.path("APC")])
        next(store_dir.glob("*.npz")).unlink()
        report = run_doctor(graph_path, store_dir)
        assert not report.ok
        failing = [c for c in report.checks if not c.ok]
        assert failing[0].error == "FileNotFoundError"

    def test_unreadable_index_names_error(self, fig4, tmp_path):
        graph_path = _saved(fig4, tmp_path)
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "index.json").write_text("{broken", encoding="utf-8")
        report = run_doctor(graph_path, store_dir)
        assert not report.ok
        assert _checks_by_name(report)["store.index"].error == (
            "JSONDecodeError"
        )

    def test_store_relations_checked_against_graph(self, fig4, fig5, tmp_path):
        """A store built on one schema fails doctor against another graph."""
        graph_path = tmp_path / "graph5.json"
        save_graph(fig5, graph_path)
        store_dir = tmp_path / "store"
        store = MatrixStore(store_dir)
        store.save(fig4, [fig4.schema.path("APC")])
        report = run_doctor(graph_path, store_dir)
        assert not report.ok
        failing = [c for c in report.checks if not c.ok]
        assert failing[0].error == "SchemaError"

    def test_legacy_flat_index_is_unverifiable_but_present(
        self, fig4, tmp_path
    ):
        graph_path = _saved(fig4, tmp_path)
        store_dir = tmp_path / "store"
        store = MatrixStore(store_dir)
        store.save(fig4, [fig4.schema.path("APC")])
        # Rewrite the index in the legacy flat {key: filename} format.
        index_path = store_dir / "index.json"
        document = json.loads(index_path.read_text(encoding="utf-8"))
        flat = {
            key: entry["file"] for key, entry in document["entries"].items()
        }
        index_path.write_text(json.dumps(flat), encoding="utf-8")
        report = run_doctor(graph_path, store_dir)
        assert report.ok  # loads fine; checksum just cannot be verified
