"""Tests for the degradation policy chain (ResilientRuntime).

All breach scenarios are deterministic: ``deadline_ms=0`` trips on the
first cooperative check of a cold engine, and one-byte budgets trip on
the first charge.  Warm caches legitimately skip enforcement (a fully
cached query does no bounded work), so every test builds a cold engine.
"""

import pytest

from repro.core.engine import HeteSimEngine
from repro.hin.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    QueryError,
)
from repro.runtime.limits import ExecutionLimits
from repro.runtime.resilience import (
    DEFAULT_POLICY,
    DegradedResult,
    ResilientRuntime,
    Strategy,
)

PAIR = ("Tom", "KDD", "APC")
LONG_PATH = "APCPA"


class TestConstruction:
    def test_accepts_engine_and_graph(self, fig4):
        engine = HeteSimEngine(fig4)
        assert ResilientRuntime(engine).engine is engine
        assert ResilientRuntime(fig4).graph is fig4

    def test_rejects_other_inputs(self):
        with pytest.raises(QueryError):
            ResilientRuntime("not a graph")

    def test_rejects_bad_on_limit(self, fig4):
        with pytest.raises(QueryError):
            ResilientRuntime(fig4, on_limit="retry")

    def test_rejects_empty_policy(self, fig4):
        with pytest.raises(QueryError):
            ResilientRuntime(fig4, policy=())

    def test_degrade_mode_requires_unenforced_floor(self, fig4):
        with pytest.raises(QueryError):
            ResilientRuntime(
                fig4,
                limits=ExecutionLimits(deadline_ms=10),
                policy=(Strategy("exact"),),
            )

    def test_fail_mode_allows_fully_enforced_policy(self, fig4):
        runtime = ResilientRuntime(
            fig4,
            limits=ExecutionLimits(deadline_ms=10),
            on_limit="fail",
            policy=(Strategy("exact"),),
        )
        assert runtime.policy == (Strategy("exact"),)

    def test_engine_runtime_factory(self, fig4):
        engine = HeteSimEngine(fig4)
        runtime = engine.runtime(ExecutionLimits(deadline_ms=10))
        assert isinstance(runtime, ResilientRuntime)
        assert runtime.engine is engine


class TestUnlimited:
    def test_relevance_matches_engine_exactly(self, fig4):
        engine = HeteSimEngine(fig4)
        expected = engine.relevance(*PAIR)
        result = ResilientRuntime(HeteSimEngine(fig4)).relevance(*PAIR)
        assert isinstance(result, DegradedResult)
        assert result.value == pytest.approx(expected)
        assert result.strategy == "exact"
        assert not result.degraded
        assert result.tripped is None
        assert [a.strategy for a in result.attempts] == ["exact"]
        assert result.summary() == "exact (no limits tripped)"

    def test_top_k_matches_engine_exactly(self, fig4):
        expected = HeteSimEngine(fig4).top_k("Tom", "APC", k=3)
        result = ResilientRuntime(HeteSimEngine(fig4)).top_k(
            "Tom", "APC", k=3
        )
        assert result.value == expected
        assert not result.degraded

    def test_top_k_clamps_nonpositive_k(self, fig4):
        result = ResilientRuntime(fig4).top_k("Tom", "APC", k=0)
        assert result.value == []
        assert result.strategy == "exact"
        assert not result.degraded

    def test_unknown_object_raises_query_error(self, fig4):
        with pytest.raises(QueryError):
            ResilientRuntime(fig4).relevance("Nobody", "KDD", "APC")


class TestDeadlineDegradation:
    def test_zero_deadline_degrades_and_names_limit(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4), limits=ExecutionLimits(deadline_ms=0)
        )
        result = runtime.relevance(*PAIR)
        assert result.degraded
        assert result.tripped == "deadline"
        assert result.attempts[0].strategy == "exact"
        assert result.attempts[0].tripped == "deadline"
        assert result.attempts[0].error == "DeadlineExceededError"
        assert not result.attempts[0].succeeded
        assert result.attempts[-1].succeeded
        # The unenforced floor strategies answer; the answer is an
        # approximation, but it is a valid normalized relevance.
        assert result.strategy in ("lowrank", "truncate-final")
        assert 0.0 <= result.value <= 1.0 + 1e-9
        assert "degraded: tripped deadline" in result.summary()

    def test_lossless_floor_preserves_the_exact_value(self, fig4):
        """A truncation floor with a negligible eps reproduces the exact
        answer, so degradation provenance and accuracy can both hold."""
        exact = HeteSimEngine(fig4).relevance(*PAIR)
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(deadline_ms=0),
            policy=(
                Strategy("exact"),
                Strategy("floor", truncate_eps=1e-12, enforced=False),
            ),
        )
        result = runtime.relevance(*PAIR)
        assert result.degraded
        assert result.strategy == "floor"
        assert result.tripped == "deadline"
        assert result.value == pytest.approx(exact, abs=1e-9)

    def test_zero_deadline_fail_mode_raises_typed_error(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(deadline_ms=0),
            on_limit="fail",
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            runtime.relevance(*PAIR)
        assert excinfo.value.limit == "deadline"


class TestBudgetDegradation:
    def test_one_byte_budget_degrades_top_k(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4), limits=ExecutionLimits(max_bytes=1)
        )
        result = runtime.top_k("Tom", LONG_PATH, k=3)
        assert result.degraded
        assert result.tripped == "max_bytes"
        assert result.attempts[0].strategy == "exact"
        assert result.attempts[0].error == "BudgetExceededError"
        # The fallback still produces a well-formed descending ranking
        # over the path's target type.
        authors = set(fig4.node_keys("author"))
        assert len(result.value) == 3
        assert all(key in authors for key, _ in result.value)
        scores = [score for _, score in result.value]
        assert scores == sorted(scores, reverse=True)

    def test_lossless_floor_preserves_the_exact_ranking(self, fig4):
        expected = HeteSimEngine(fig4).top_k("Tom", LONG_PATH, k=3)
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(max_bytes=1),
            policy=(
                Strategy("exact"),
                Strategy("floor", truncate_eps=1e-12, enforced=False),
            ),
        )
        result = runtime.top_k("Tom", LONG_PATH, k=3)
        assert result.degraded
        assert result.strategy == "floor"
        assert [key for key, _ in result.value] == [
            key for key, _ in expected
        ]
        for (_, got), (_, want) in zip(result.value, expected):
            assert got == pytest.approx(want, abs=1e-9)

    def test_one_byte_budget_fail_mode_raises_typed_error(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(max_bytes=1),
            on_limit="fail",
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            runtime.relevance("Tom", "Tom", LONG_PATH)
        assert excinfo.value.limit == "max_bytes"
        assert excinfo.value.allowed == 1


class TestAccuracyMetadata:
    def test_truncation_floor_reports_truncated_mass(self, fig4):
        policy = (
            Strategy("exact"),
            # eps > 1 drops every entry: the dropped mass is certainly
            # positive without depending on the toy network's values.
            Strategy("floor", truncate_eps=1.5, enforced=False),
        )
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(max_bytes=1),
            policy=policy,
        )
        result = runtime.relevance("Tom", "Tom", LONG_PATH)
        assert result.strategy == "floor"
        assert result.tripped == "max_bytes"
        assert "truncated_mass" in result.accuracy
        assert result.accuracy["truncated_mass"] > 0.0

    def test_pruning_floor_reports_dropped_forward_mass(self, fig4):
        policy = (
            Strategy("exact"),
            Strategy(
                "floor", truncate_eps=1e-9, prune_mass=0.3, enforced=False
            ),
        )
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(max_bytes=1),
            policy=policy,
        )
        result = runtime.top_k("Tom", LONG_PATH, k=3)
        assert result.strategy == "floor"
        assert "dropped_forward_mass" in result.accuracy

    def test_lowrank_floor_reports_rank_and_energy(self, fig4):
        policy = (
            Strategy("exact"),
            Strategy("lr", kind="lowrank", rank=4, enforced=False),
            Strategy("floor", truncate_eps=1e-6, enforced=False),
        )
        runtime = ResilientRuntime(
            HeteSimEngine(fig4),
            limits=ExecutionLimits(max_bytes=1),
            policy=policy,
        )
        result = runtime.relevance("Tom", "Tom", LONG_PATH)
        if result.strategy == "lr":
            assert result.accuracy["rank"] >= 1
            assert 0.0 < result.accuracy["captured_energy"] <= 1.0 + 1e-9
        else:
            # Matrices too tiny to factor: the chain fell through to the
            # truncation floor, which is exactly its job.
            assert result.strategy == "floor"

    def test_summary_renders_attempt_chain(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4), limits=ExecutionLimits(max_bytes=1)
        )
        result = runtime.top_k("Tom", LONG_PATH, k=2)
        summary = result.summary()
        assert "exact[max_bytes]" in summary
        assert result.strategy in summary


class TestPolicyShape:
    def test_default_policy_starts_exact_ends_unenforced(self):
        assert DEFAULT_POLICY[0].name == "exact"
        assert DEFAULT_POLICY[0].enforced
        assert not DEFAULT_POLICY[-1].enforced

    def test_every_attempt_recorded_in_order(self, fig4):
        runtime = ResilientRuntime(
            HeteSimEngine(fig4), limits=ExecutionLimits(deadline_ms=0)
        )
        result = runtime.relevance(*PAIR)
        names = [attempt.strategy for attempt in result.attempts]
        expected_prefix = [s.name for s in DEFAULT_POLICY[: len(names)]]
        assert names == expected_prefix
        assert all(a.elapsed_ms >= 0 for a in result.attempts)
