"""Unit tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.core.backend import materialise
from repro.hin.errors import InjectedFaultError, QueryError
from repro.runtime.faults import (
    SITE_EXECUTOR_STEP,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    FaultPlan,
    FaultSpec,
    ambient_faults,
)
from repro.runtime.limits import execution_scope


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(QueryError):
            FaultSpec("executor.nope", 0, "fail")

    def test_unknown_action_rejected(self):
        with pytest.raises(QueryError):
            FaultSpec(SITE_EXECUTOR_STEP, 0, "explode")

    def test_negative_occurrence_rejected(self):
        with pytest.raises(QueryError):
            FaultSpec(SITE_EXECUTOR_STEP, -1, "fail")

    def test_negative_delay_rejected(self):
        with pytest.raises(QueryError):
            FaultSpec(SITE_EXECUTOR_STEP, 0, "delay", delay_s=-0.1)


class TestFaultPlan:
    def test_occurrence_counters_advance_per_site(self):
        plan = FaultPlan()
        plan.fire(SITE_EXECUTOR_STEP)
        plan.fire(SITE_EXECUTOR_STEP)
        plan.filter(SITE_STORE_READ, b"payload")
        assert plan.occurrences(SITE_EXECUTOR_STEP) == 2
        assert plan.occurrences(SITE_STORE_READ) == 1
        assert plan.occurrences(SITE_STORE_WRITE) == 0

    def test_fail_fires_at_exact_occurrence(self):
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 2, "fail")])
        plan.fire(SITE_EXECUTOR_STEP)
        plan.fire(SITE_EXECUTOR_STEP)
        with pytest.raises(InjectedFaultError) as excinfo:
            plan.fire(SITE_EXECUTOR_STEP)
        assert excinfo.value.site == SITE_EXECUTOR_STEP
        assert excinfo.value.occurrence == 2
        assert plan.fired == [(SITE_EXECUTOR_STEP, 2, "fail")]

    def test_transient_fail_raises_oserror(self):
        plan = FaultPlan(
            [FaultSpec(SITE_STORE_READ, 0, "fail", transient=True)]
        )
        with pytest.raises(OSError):
            plan.filter(SITE_STORE_READ, b"payload")

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultSpec(SITE_EXECUTOR_STEP, 0, "delay", delay_s=0.02)]
        )
        started = time.perf_counter()
        plan.fire(SITE_EXECUTOR_STEP)
        assert time.perf_counter() - started >= 0.015
        assert plan.fired == [(SITE_EXECUTOR_STEP, 0, "delay")]

    def test_corrupt_transforms_payload(self):
        plan = FaultPlan([FaultSpec(SITE_STORE_READ, 0, "corrupt")])
        corrupted = plan.filter(SITE_STORE_READ, b"abc")
        assert corrupted != b"abc"
        assert len(corrupted) == 3
        # Subsequent occurrences pass through untouched.
        assert plan.filter(SITE_STORE_READ, b"abc") == b"abc"

    def test_corrupt_of_empty_payload_is_not_a_noop(self):
        plan = FaultPlan([FaultSpec(SITE_STORE_WRITE, 0, "corrupt")])
        assert plan.filter(SITE_STORE_WRITE, b"") != b""

    def test_corrupt_at_payloadless_site_degenerates_to_fail(self):
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 0, "corrupt")])
        with pytest.raises(InjectedFaultError):
            plan.fire(SITE_EXECUTOR_STEP)

    def test_reset_rewinds_counters_and_log(self):
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 0, "fail")])
        with pytest.raises(InjectedFaultError):
            plan.fire(SITE_EXECUTOR_STEP)
        plan.reset()
        assert plan.occurrences(SITE_EXECUTOR_STEP) == 0
        assert plan.fired == []
        with pytest.raises(InjectedFaultError):
            plan.fire(SITE_EXECUTOR_STEP)  # fires again after reset

    def test_sample_is_seed_deterministic(self):
        first = FaultPlan.sample(seed=7, n_faults=4)
        second = FaultPlan.sample(seed=7, n_faults=4)
        assert first.specs == second.specs
        different = FaultPlan.sample(seed=8, n_faults=4)
        assert first.specs != different.specs

    def test_sample_respects_sites_and_actions(self):
        plan = FaultPlan.sample(
            seed=0,
            n_faults=6,
            sites=(SITE_STORE_READ,),
            actions=("delay",),
            max_occurrence=3,
        )
        for spec in plan.specs:
            assert spec.site == SITE_STORE_READ
            assert spec.action == "delay"
            assert 0 <= spec.occurrence < 3


class TestAmbientWiring:
    def test_ambient_faults_reads_scope(self):
        assert ambient_faults() is None
        plan = FaultPlan()
        with execution_scope(faults=plan):
            assert ambient_faults() is plan
        assert ambient_faults() is None

    def test_backend_fires_executor_site(self, fig4):
        path = fig4.schema.path("APCPA")
        plan = FaultPlan([FaultSpec(SITE_EXECUTOR_STEP, 0, "fail")])
        with execution_scope(faults=plan):
            with pytest.raises(InjectedFaultError) as excinfo:
                materialise(fig4, path)
        assert excinfo.value.site == SITE_EXECUTOR_STEP
        assert plan.fired == [(SITE_EXECUTOR_STEP, 0, "fail")]

    def test_backend_counts_every_step(self, fig4):
        path = fig4.schema.path("APCPA")
        plan = FaultPlan()
        with execution_scope(faults=plan):
            _, stats = materialise(fig4, path)
        assert plan.occurrences(SITE_EXECUTOR_STEP) == len(stats.steps)
