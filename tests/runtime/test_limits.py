"""Unit tests for ExecutionLimits / LimitTracker / execution scopes.

The tracker is driven with a fake clock so every deadline assertion is
deterministic; the backend-integration tests use a cold engine (warm
caches legitimately skip enforcement because no bounded work happens).
"""

import pytest

from repro.core.backend import materialise
from repro.hin.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    QueryError,
)
from repro.runtime.limits import (
    ExecutionLimits,
    current_context,
    execution_scope,
)


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestExecutionLimits:
    def test_defaults_are_unlimited(self):
        assert ExecutionLimits().unlimited

    def test_any_field_clears_unlimited(self):
        assert not ExecutionLimits(deadline_ms=10).unlimited
        assert not ExecutionLimits(max_nnz=10).unlimited
        assert not ExecutionLimits(max_bytes=10).unlimited
        assert not ExecutionLimits(max_densified_cells=10).unlimited

    @pytest.mark.parametrize(
        "field", ["deadline_ms", "max_nnz", "max_bytes", "max_densified_cells"]
    )
    def test_negative_values_rejected(self, field):
        with pytest.raises(QueryError):
            ExecutionLimits(**{field: -1})

    def test_zero_deadline_is_legal(self):
        assert ExecutionLimits(deadline_ms=0).deadline_ms == 0


class TestLimitTracker:
    def test_deadline_trips_once_elapsed(self):
        clock = FakeClock()
        tracker = ExecutionLimits(deadline_ms=50).tracker(clock=clock)
        tracker.check_deadline()  # 0 ms elapsed: fine
        clock.advance(0.049)
        tracker.check_deadline()  # 49 ms: still fine
        clock.advance(0.002)
        with pytest.raises(DeadlineExceededError) as excinfo:
            tracker.check_deadline()
        assert excinfo.value.limit == "deadline"
        assert excinfo.value.observed == pytest.approx(51.0)
        assert excinfo.value.allowed == 50

    def test_no_deadline_never_trips(self):
        clock = FakeClock()
        tracker = ExecutionLimits(max_nnz=10).tracker(clock=clock)
        clock.advance(1e6)
        tracker.check_deadline()  # no deadline configured

    def test_nnz_budget_is_cumulative(self):
        tracker = ExecutionLimits(max_nnz=100).tracker()
        tracker.charge(nnz=60, nbytes=0)
        with pytest.raises(BudgetExceededError) as excinfo:
            tracker.charge(nnz=41, nbytes=0)
        assert excinfo.value.limit == "max_nnz"
        assert excinfo.value.observed == 101
        assert excinfo.value.allowed == 100

    def test_byte_budget_is_cumulative(self):
        tracker = ExecutionLimits(max_bytes=1000).tracker()
        tracker.charge(nnz=0, nbytes=999)
        tracker.charge(nnz=0, nbytes=1)  # exactly at the cap: fine
        with pytest.raises(BudgetExceededError) as excinfo:
            tracker.charge(nnz=0, nbytes=1)
        assert excinfo.value.limit == "max_bytes"

    def test_densify_veto(self):
        tracker = ExecutionLimits(max_densified_cells=10_000).tracker()
        tracker.check_densify(10_000)  # at the cap: fine
        with pytest.raises(BudgetExceededError) as excinfo:
            tracker.check_densify(10_001)
        assert excinfo.value.limit == "max_densified_cells"

    def test_counters_accumulate(self):
        tracker = ExecutionLimits().tracker()
        tracker.charge(nnz=3, nbytes=24)
        tracker.charge(nnz=5, nbytes=40)
        assert tracker.nnz_charged == 8
        assert tracker.bytes_charged == 64
        assert tracker.steps_executed == 2


class TestExecutionScope:
    def test_no_ambient_context_by_default(self):
        assert current_context() is None

    def test_scope_installs_and_restores(self):
        tracker = ExecutionLimits(max_nnz=5).tracker()
        with execution_scope(tracker=tracker) as context:
            assert current_context() is context
            assert context.tracker is tracker
        assert current_context() is None

    def test_scopes_nest(self):
        outer_tracker = ExecutionLimits(max_nnz=1).tracker()
        inner_tracker = ExecutionLimits(max_nnz=2).tracker()
        with execution_scope(tracker=outer_tracker) as outer:
            with execution_scope(tracker=inner_tracker) as inner:
                assert current_context() is inner
            assert current_context() is outer

    def test_scope_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with execution_scope():
                raise RuntimeError("boom")
        assert current_context() is None

    def test_negative_truncate_eps_rejected(self):
        with pytest.raises(QueryError):
            with execution_scope(truncate_eps=-0.1):
                pass  # pragma: no cover


class TestBackendEnforcement:
    def test_tiny_nnz_budget_trips_materialise(self, fig4):
        path = fig4.schema.path("APCPA")
        tracker = ExecutionLimits(max_nnz=1).tracker()
        with execution_scope(tracker=tracker):
            with pytest.raises(BudgetExceededError) as excinfo:
                materialise(fig4, path)
        assert excinfo.value.limit == "max_nnz"

    def test_tiny_byte_budget_trips_materialise(self, fig4):
        path = fig4.schema.path("APCPA")
        tracker = ExecutionLimits(max_bytes=1).tracker()
        with execution_scope(tracker=tracker):
            with pytest.raises(BudgetExceededError):
                materialise(fig4, path)

    def test_zero_deadline_trips_materialise(self, fig4):
        path = fig4.schema.path("APC")
        tracker = ExecutionLimits(deadline_ms=0).tracker()
        with execution_scope(tracker=tracker):
            with pytest.raises(DeadlineExceededError):
                materialise(fig4, path)

    def test_generous_limits_leave_result_identical(self, fig4):
        path = fig4.schema.path("APCPA")
        plain, _ = materialise(fig4, path)
        tracker = ExecutionLimits(
            deadline_ms=60_000, max_nnz=10**9, max_bytes=10**12
        ).tracker()
        with execution_scope(tracker=tracker):
            bounded, _ = materialise(fig4, path)
        assert (plain != bounded).nnz == 0
        assert tracker.steps_executed > 0
        assert tracker.nnz_charged > 0
        assert tracker.bytes_charged > 0

    def test_truncation_accumulates_dropped_mass(self, fig4):
        path = fig4.schema.path("APCPA")
        exact, _ = materialise(fig4, path)
        # eps > 1 drops every entry of the first product, so the dropped
        # mass is positive regardless of the toy network's values.
        with execution_scope(truncate_eps=1.5) as context:
            truncated, _ = materialise(fig4, path)
        assert context.truncated_mass > 0.0
        assert truncated.nnz < exact.nnz

    def test_explicit_context_overrides_ambient(self, fig4):
        from repro.core.plan import plan_path
        from repro.core.backend import execute_plan
        from repro.runtime.limits import ExecutionContext

        path = fig4.schema.path("APCPA")
        plan = plan_path(fig4, path)
        ambient_tracker = ExecutionLimits(max_nnz=1).tracker()
        with execution_scope(tracker=ambient_tracker):
            # The explicit (unlimited) context wins over the ambient one.
            execute_plan(fig4, plan, context=ExecutionContext())


class TestIntersect:
    def test_none_other_returns_self(self):
        limits = ExecutionLimits(deadline_ms=10)
        assert limits.intersect(None) is limits

    def test_strictest_value_wins_per_field(self):
        mine = ExecutionLimits(deadline_ms=10, max_nnz=100)
        theirs = ExecutionLimits(deadline_ms=50, max_nnz=20)
        merged = mine.intersect(theirs)
        assert merged.deadline_ms == 10
        assert merged.max_nnz == 20

    def test_disjoint_fields_union(self):
        mine = ExecutionLimits(deadline_ms=10)
        theirs = ExecutionLimits(max_bytes=4096, max_densified_cells=9)
        merged = mine.intersect(theirs)
        assert merged.deadline_ms == 10
        assert merged.max_bytes == 4096
        assert merged.max_densified_cells == 9
        assert merged.max_nnz is None

    def test_unlimited_intersect_unlimited(self):
        assert ExecutionLimits().intersect(ExecutionLimits()).unlimited
