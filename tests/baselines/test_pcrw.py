"""Unit tests for the PCRW baseline."""

import numpy as np
import pytest

from repro.baselines.pcrw import pcrw_matrix, pcrw_pair, pcrw_rank, pcrw_vector
from repro.hin.errors import QueryError


class TestPcrw:
    def test_pair_is_reach_probability(self, fig4):
        path = fig4.schema.path("APC")
        assert pcrw_pair(fig4, path, "Tom", "KDD") == pytest.approx(1.0)
        assert pcrw_pair(fig4, path, "Mary", "KDD") == pytest.approx(0.5)

    def test_matrix_rows_substochastic(self, fig4):
        path = fig4.schema.path("APC")
        matrix = pcrw_matrix(fig4, path)
        assert (matrix.sum(axis=1) <= 1 + 1e-12).all()

    def test_vector_matches_matrix(self, fig4):
        path = fig4.schema.path("APC")
        matrix = pcrw_matrix(fig4, path)
        tom = fig4.node_index("author", "Tom")
        np.testing.assert_allclose(pcrw_vector(fig4, path, "Tom"), matrix[tom])

    def test_asymmetry(self, fig4):
        """PCRW(s, t | P) != PCRW(t, s | P^-1) in general -- the property
        HeteSim fixes (Section 5.2.2)."""
        forward = fig4.schema.path("APC")
        backward = forward.reverse()
        tom_kdd = pcrw_pair(fig4, forward, "Tom", "KDD")
        kdd_tom = pcrw_pair(fig4, backward, "KDD", "Tom")
        assert tom_kdd != pytest.approx(kdd_tom)

    def test_rank_descending_and_complete(self, fig4):
        path = fig4.schema.path("APC")
        ranking = pcrw_rank(fig4, path, "Tom")
        assert len(ranking) == fig4.num_nodes("conference")
        scores = [s for _, s in ranking]
        assert scores == sorted(scores, reverse=True)
        assert ranking[0][0] == "KDD"

    def test_unknown_nodes_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(QueryError):
            pcrw_pair(fig4, path, "ghost", "KDD")
        with pytest.raises(QueryError):
            pcrw_pair(fig4, path, "Tom", "ghost")

    def test_dangling_source_scores_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APC")
        assert pcrw_pair(fig4, path, "lurker", "KDD") == 0.0
