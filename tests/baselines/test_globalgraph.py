"""Dedicated tests for the type-flattened global index."""

import numpy as np
import pytest

from repro.baselines.globalgraph import build_global_index
from repro.hin.graph import HeteroGraph
from repro.hin.schema import NetworkSchema


class TestBuildGlobalIndex:
    def test_offsets_follow_schema_order(self, fig4):
        index = build_global_index(fig4)
        assert index.offsets["author"] == 0
        assert index.offsets["paper"] == fig4.num_nodes("author")
        assert index.offsets["conference"] == fig4.num_nodes(
            "author"
        ) + fig4.num_nodes("paper")

    def test_every_label_roundtrips(self, fig4):
        index = build_global_index(fig4)
        for otype in fig4.schema.object_types:
            for local, key in enumerate(fig4.node_keys(otype.name)):
                global_index = index.index_of(otype.name, local)
                assert index.label_of(global_index) == (otype.name, key)

    def test_adjacency_is_directed(self, fig4):
        index = build_global_index(fig4)
        matrix = index.adjacency.toarray()
        # Forward edges only: author rows -> paper columns populated,
        # the transpose block empty.
        a_slice = index.type_slice("author", fig4.num_nodes("author"))
        p_slice = index.type_slice("paper", fig4.num_nodes("paper"))
        assert matrix[a_slice, p_slice].sum() > 0
        assert matrix[p_slice, a_slice].sum() == 0

    def test_edge_count_preserved(self, fig4):
        index = build_global_index(fig4)
        assert index.adjacency.nnz == fig4.num_edges()

    def test_empty_relationless_graph(self):
        schema = NetworkSchema.from_spec([("a", "A"), ("b", "B")], [])
        graph = HeteroGraph(schema)
        graph.add_node("a", "x")
        graph.add_node("b", "y")
        index = build_global_index(graph)
        assert index.num_nodes == 2
        assert index.adjacency.nnz == 0

    def test_weighted_edges_carried(self):
        schema = NetworkSchema.from_spec(
            [("a", "A"), ("b", "B")], [("r", "a", "b")]
        )
        graph = HeteroGraph(schema)
        graph.add_edge("r", "x", "y", weight=3.5)
        index = build_global_index(graph)
        i = index.index_of("a", 0)
        j = index.index_of("b", 0)
        assert index.adjacency[i, j] == 3.5

    def test_type_slice_bounds(self, fig4):
        index = build_global_index(fig4)
        block = index.type_slice("paper", fig4.num_nodes("paper"))
        assert block.stop - block.start == fig4.num_nodes("paper")
