"""Unit tests for the SimRank baseline and its Property 5 recursion."""

import numpy as np
import pytest

from repro.baselines.globalgraph import build_global_index
from repro.baselines.simrank import simrank, simrank_meeting_iterations
from repro.core.hetesim import hetesim_matrix
from repro.datasets.random_hin import make_random_bipartite
from repro.hin.errors import QueryError


class TestGlobalIndex:
    def test_total_node_count(self, fig4):
        index = build_global_index(fig4)
        assert index.num_nodes == fig4.num_nodes()

    def test_roundtrip_labels(self, fig4):
        index = build_global_index(fig4)
        tom_global = index.index_of("author", fig4.node_index("author", "Tom"))
        assert index.label_of(tom_global) == ("author", "Tom")

    def test_adjacency_blocks(self, fig4):
        index = build_global_index(fig4)
        writes = fig4.adjacency("writes").toarray()
        a_slice = index.type_slice("author", fig4.num_nodes("author"))
        p_slice = index.type_slice("paper", fig4.num_nodes("paper"))
        block = index.adjacency.toarray()[a_slice, p_slice]
        np.testing.assert_allclose(block, writes)


class TestSimRank:
    def test_diagonal_is_one(self, fig4):
        similarity = simrank(fig4, iterations=3)
        np.testing.assert_allclose(np.diag(similarity), 1.0)

    def test_symmetric(self, fig4):
        similarity = simrank(fig4, iterations=3)
        np.testing.assert_allclose(similarity, similarity.T, atol=1e-12)

    def test_range(self, fig4):
        similarity = simrank(fig4, iterations=4)
        assert (similarity >= -1e-12).all()
        assert (similarity <= 1 + 1e-12).all()

    def test_zero_iterations_is_identity(self, fig4):
        similarity = simrank(fig4, iterations=0)
        np.testing.assert_allclose(similarity, np.eye(similarity.shape[0]))

    def test_similar_authors_score_higher(self, fig4):
        """Tom and Mary share a paper; Tom and Jim do not."""
        index = build_global_index(fig4)
        similarity = simrank(fig4, iterations=5)

        def sim(author_a, author_b):
            i = index.index_of("author", fig4.node_index("author", author_a))
            j = index.index_of("author", fig4.node_index("author", author_b))
            return similarity[i, j]

        assert sim("Tom", "Mary") > sim("Tom", "Jim")

    def test_bad_parameters(self, fig4):
        with pytest.raises(QueryError):
            simrank(fig4, decay=0.0)
        with pytest.raises(QueryError):
            simrank(fig4, decay=1.5)
        with pytest.raises(QueryError):
            simrank(fig4, iterations=-1)


class TestMeetingRecursion:
    def test_property5_identity(self):
        """S^A_k == raw HeteSim(. | (R R^-1)^k) -- Property 5 with C=1."""
        graph = make_random_bipartite(6, 5, edge_prob=0.5, seed=2)
        for hops in (1, 2, 3):
            recursion = simrank_meeting_iterations(graph, "r", hops)[-1]
            meta = graph.schema.path("A" + "BA" * hops)
            hetesim_raw = hetesim_matrix(graph, meta, normalized=False)
            np.testing.assert_allclose(recursion, hetesim_raw, atol=1e-10)

    def test_iterations_list_length(self):
        graph = make_random_bipartite(5, 5, seed=1)
        assert len(simrank_meeting_iterations(graph, "r", 4)) == 4

    def test_matrices_symmetric(self):
        graph = make_random_bipartite(6, 4, seed=9)
        for matrix in simrank_meeting_iterations(graph, "r", 3):
            np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_bad_parameters(self):
        graph = make_random_bipartite(4, 4, seed=0)
        with pytest.raises(QueryError):
            simrank_meeting_iterations(graph, "r", 0)
        with pytest.raises(QueryError):
            simrank_meeting_iterations(graph, "r", 2, side="both")


class TestNaiveCrossValidation:
    def test_matrix_matches_naive_on_fig4(self, fig4):
        from repro.baselines.simrank import simrank_naive

        fast = simrank(fig4, decay=0.8, iterations=4)
        slow = simrank_naive(fig4, decay=0.8, iterations=4)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_matrix_matches_naive_on_random_bipartite(self):
        from repro.baselines.simrank import simrank_naive

        graph = make_random_bipartite(5, 4, edge_prob=0.5, seed=3)
        fast = simrank(graph, decay=0.6, iterations=3)
        slow = simrank_naive(graph, decay=0.6, iterations=3)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_naive_validates_parameters(self, fig4):
        from repro.baselines.simrank import simrank_naive

        with pytest.raises(QueryError):
            simrank_naive(fig4, decay=0.0)
