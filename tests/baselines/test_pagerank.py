"""Unit tests for Personalized PageRank."""

import numpy as np
import pytest

from repro.baselines.pagerank import personalized_pagerank, ppr_rank
from repro.hin.errors import QueryError


class TestPersonalizedPagerank:
    def test_scores_are_distribution(self, fig4):
        scores, _ = personalized_pagerank(fig4, "author", "Tom")
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert (scores >= 0).all()

    def test_query_node_has_high_mass(self, fig4):
        scores, index = personalized_pagerank(fig4, "author", "Tom")
        tom = index.index_of("author", fig4.node_index("author", "Tom"))
        assert scores[tom] == scores.max()

    def test_damping_zero_is_pure_restart(self, fig4):
        scores, index = personalized_pagerank(
            fig4, "author", "Tom", damping=0.0
        )
        tom = index.index_of("author", fig4.node_index("author", "Tom"))
        assert scores[tom] == pytest.approx(1.0)

    def test_bad_parameters(self, fig4):
        with pytest.raises(QueryError):
            personalized_pagerank(fig4, "author", "Tom", damping=1.0)
        with pytest.raises(QueryError):
            personalized_pagerank(fig4, "author", "ghost")

    def test_nearby_conference_scores_higher(self, fig4):
        ranking = ppr_rank(fig4, "author", "Tom", "conference")
        assert ranking[0][0] == "KDD"

    def test_rank_covers_target_type(self, fig4):
        ranking = ppr_rank(fig4, "author", "Tom", "conference")
        assert len(ranking) == fig4.num_nodes("conference")

    def test_deterministic(self, fig4):
        first = ppr_rank(fig4, "author", "Mary", "conference")
        second = ppr_rank(fig4, "author", "Mary", "conference")
        assert first == second

    def test_index_reuse(self, fig4):
        from repro.baselines.globalgraph import build_global_index

        index = build_global_index(fig4)
        scores, returned = personalized_pagerank(
            fig4, "author", "Tom", index=index
        )
        assert returned is index
        assert scores.shape == (index.num_nodes,)
