"""Unit tests for the PathSim baseline."""

import numpy as np
import pytest

from repro.baselines.pathsim import (
    path_count_matrix,
    pathsim_matrix,
    pathsim_pair,
    pathsim_rank,
)
from repro.hin.errors import PathError, QueryError


class TestPathCounts:
    def test_counts_path_instances(self, fig4):
        path = fig4.schema.path("APA")
        counts = path_count_matrix(fig4, path).toarray()
        tom = fig4.node_index("author", "Tom")
        mary = fig4.node_index("author", "Mary")
        # Tom and Mary share exactly one paper (p2).
        assert counts[tom, mary] == 1
        # Tom-Tom: two papers.
        assert counts[tom, tom] == 2

    def test_counts_unnormalised(self, fig4):
        path = fig4.schema.path("APA")
        counts = path_count_matrix(fig4, path)
        assert counts.dtype.kind == "f"
        assert counts.sum() > fig4.num_nodes("author")


class TestPathSim:
    def test_self_similarity_is_one(self, fig4):
        path = fig4.schema.path("APA")
        matrix = pathsim_matrix(fig4, path)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric_matrix(self, fig4):
        path = fig4.schema.path("APA")
        matrix = pathsim_matrix(fig4, path)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_known_value(self, fig4):
        # PathSim(Tom, Mary | APA) = 2*1 / (2 + 2) = 0.5.
        path = fig4.schema.path("APA")
        assert pathsim_pair(fig4, path, "Tom", "Mary") == pytest.approx(0.5)

    def test_unit_interval(self, fig4):
        path = fig4.schema.path("APA")
        matrix = pathsim_matrix(fig4, path)
        assert (matrix >= 0).all() and (matrix <= 1 + 1e-12).all()

    def test_asymmetric_path_rejected(self, fig4):
        path = fig4.schema.path("APC")
        with pytest.raises(PathError):
            pathsim_matrix(fig4, path)
        with pytest.raises(PathError):
            pathsim_pair(fig4, path, "Tom", "KDD")
        with pytest.raises(PathError):
            pathsim_rank(fig4, path, "Tom")

    def test_rank_self_first(self, fig4):
        path = fig4.schema.path("APA")
        ranking = pathsim_rank(fig4, path, "Tom")
        assert ranking[0] == ("Tom", pytest.approx(1.0))

    def test_rank_matches_matrix(self, fig4):
        path = fig4.schema.path("APA")
        matrix = pathsim_matrix(fig4, path)
        tom = fig4.node_index("author", "Tom")
        ranked = dict(pathsim_rank(fig4, path, "Tom"))
        for j, author in enumerate(fig4.node_keys("author")):
            assert ranked[author] == pytest.approx(matrix[tom, j])

    def test_unknown_nodes_rejected(self, fig4):
        path = fig4.schema.path("APA")
        with pytest.raises(QueryError):
            pathsim_pair(fig4, path, "ghost", "Tom")
        with pytest.raises(QueryError):
            pathsim_rank(fig4, path, "ghost")

    def test_isolated_object_scores_zero(self, fig4):
        fig4.add_node("author", "lurker")
        path = fig4.schema.path("APA")
        assert pathsim_pair(fig4, path, "lurker", "lurker") == 0.0
