"""Unit tests for the neighbour-set similarity baselines."""

import numpy as np
import pytest

from repro.baselines.neighborhood import (
    cosine_similarity_matrix,
    jaccard_similarity_matrix,
    neighborhood_rank,
    scan_similarity_matrix,
)
from repro.hin.errors import QueryError


class TestCosine:
    def test_self_similarity_one(self, fig4):
        matrix = cosine_similarity_matrix(fig4, "writes")
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, fig4):
        matrix = cosine_similarity_matrix(fig4, "writes")
        np.testing.assert_allclose(matrix, matrix.T)

    def test_known_value(self, fig4):
        # Tom {p1,p2}, Mary {p2,p3}: overlap 1, norms sqrt(2) each.
        matrix = cosine_similarity_matrix(fig4, "writes")
        tom = fig4.node_index("author", "Tom")
        mary = fig4.node_index("author", "Mary")
        assert matrix[tom, mary] == pytest.approx(0.5)

    def test_disjoint_pair_zero(self, fig4):
        matrix = cosine_similarity_matrix(fig4, "writes")
        tom = fig4.node_index("author", "Tom")
        jim = fig4.node_index("author", "Jim")
        assert matrix[tom, jim] == 0.0

    def test_isolated_node_scores_zero(self, fig4):
        fig4.add_node("author", "lurker")
        matrix = cosine_similarity_matrix(fig4, "writes")
        lurker = fig4.node_index("author", "lurker")
        np.testing.assert_array_equal(matrix[lurker], 0.0)


class TestJaccard:
    def test_known_value(self, fig4):
        # Tom {p1,p2}, Mary {p2,p3}: |∩|=1, |∪|=3.
        matrix = jaccard_similarity_matrix(fig4, "writes")
        tom = fig4.node_index("author", "Tom")
        mary = fig4.node_index("author", "Mary")
        assert matrix[tom, mary] == pytest.approx(1 / 3)

    def test_self_similarity_one(self, fig4):
        matrix = jaccard_similarity_matrix(fig4, "writes")
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_range(self, fig4):
        matrix = jaccard_similarity_matrix(fig4, "writes")
        assert (matrix >= 0).all() and (matrix <= 1 + 1e-12).all()

    def test_ignores_weights(self):
        from repro.datasets.schemas import bipartite_schema
        from repro.hin.graph import HeteroGraph

        graph = HeteroGraph(bipartite_schema())
        graph.add_edge("r", "a1", "b1", weight=5.0)
        graph.add_edge("r", "a2", "b1", weight=1.0)
        matrix = jaccard_similarity_matrix(graph, "r")
        assert matrix[0, 1] == pytest.approx(1.0)


class TestScan:
    def test_known_value(self, fig4):
        # SCAN(Tom, Mary) = 1 / sqrt(2*2) = 0.5.
        matrix = scan_similarity_matrix(fig4, "writes")
        tom = fig4.node_index("author", "Tom")
        mary = fig4.node_index("author", "Mary")
        assert matrix[tom, mary] == pytest.approx(0.5)

    def test_symmetric(self, fig4):
        matrix = scan_similarity_matrix(fig4, "writes")
        np.testing.assert_allclose(matrix, matrix.T)

    def test_inverse_relation_works(self, fig4):
        """Paper similarity through shared authors (writes^-1)."""
        matrix = scan_similarity_matrix(fig4, "writes^-1")
        assert matrix.shape == (4, 4)
        p1 = fig4.node_index("paper", "p1")
        p2 = fig4.node_index("paper", "p2")
        assert matrix[p1, p2] > 0


class TestRank:
    def test_self_first(self, fig4):
        ranking = neighborhood_rank(fig4, "writes", "Tom")
        assert ranking[0] == ("Tom", pytest.approx(1.0))

    def test_all_measures_agree_on_ordering_here(self, fig4):
        orders = [
            [k for k, _ in neighborhood_rank(fig4, "writes", "Tom", m)]
            for m in ("cosine", "jaccard", "scan")
        ]
        assert orders[0] == orders[1] == orders[2]

    def test_unknown_measure_rejected(self, fig4):
        with pytest.raises(QueryError):
            neighborhood_rank(fig4, "writes", "Tom", measure="euclid")

    def test_unknown_source_rejected(self, fig4):
        with pytest.raises(QueryError):
            neighborhood_rank(fig4, "writes", "ghost")
