"""Unit tests for the metrics model: series, families, the registry.

Tests construct private :class:`MetricsRegistry` instances -- the
process-wide ``REGISTRY`` accumulates counts from every other test in
the session and is only ever asserted on for *deltas* (see the serve
and integration suites).
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.hin.errors import QueryError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instance_label,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(QueryError):
            Counter().inc(-1)

    def test_reset(self):
        counter = Counter()
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0

    def test_concurrent_increments_all_land(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == pytest.approx(12.0)

    def test_may_go_negative(self):
        gauge = Gauge()
        gauge.dec(4)
        assert gauge.value == pytest.approx(-4.0)


class TestHistogram:
    def test_bucketing_boundaries_are_inclusive(self):
        # Prometheus `le` semantics: an observation equal to a bound
        # counts in that bound's bucket.
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 5.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 2),  # 0.5, 1.0
            (5.0, 3),  # + 5.0
            (10.0, 4),  # + 7.0
            (math.inf, 5),  # + 100.0
        ]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(113.5)

    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(QueryError):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(QueryError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(QueryError):
            Histogram(buckets=())

    def test_reset(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.5)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.cumulative() == [(1.0, 0), (math.inf, 0)]


class TestFamiliesAndRegistry:
    def test_labels_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "help text")
        child = family.labels(cache="c0")
        child.inc(3)
        # Same labels in any keyword order address the same series.
        assert family.labels(cache="c0") is child
        assert family.labels(cache="c1") is not child
        assert family.labels(cache="c0").value == 3.0

    def test_unlabelled_conveniences(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b_level").set(9)
        registry.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
        assert registry.counter("a_total").value == 2.0
        assert registry.gauge("b_level").value == 9.0
        assert registry.histogram("c_seconds", buckets=(1.0,)).labels().count == 1

    def test_redeclaring_same_family_returns_it(self):
        registry = MetricsRegistry()
        first = registry.counter("dup_total", "first help")
        again = registry.counter("dup_total", "second help ignored")
        assert again is first

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(QueryError):
            registry.gauge("x_total")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(QueryError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_families_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta_total")
        registry.counter("alpha_total")
        assert [f.name for f in registry.families()] == [
            "alpha_total",
            "zeta_total",
        ]

    def test_registry_reset_clears_every_series(self):
        registry = MetricsRegistry()
        registry.counter("n_total").labels(side="l").inc(4)
        registry.histogram("h", buckets=(1.0,)).observe(0.2)
        registry.reset()
        assert registry.counter("n_total").labels(side="l").value == 0.0
        assert registry.histogram("h", buckets=(1.0,)).labels().count == 0


class TestInstanceLabel:
    def test_sequential_and_unique(self):
        first = instance_label("t")
        second = instance_label("t")
        assert first != second
        assert first.startswith("t") and second.startswith("t")
        assert int(second[1:]) > int(first[1:])


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0, 2.0)).quantile(0.5))

    def test_q_out_of_range_rejected(self):
        histogram = Histogram(buckets=(1.0,))
        with pytest.raises(QueryError):
            histogram.quantile(-0.1)
        with pytest.raises(QueryError):
            histogram.quantile(1.1)

    def test_interpolates_within_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 1.5):
            histogram.observe(value)
        # rank 2 of 4 lands mid-bucket (1, 2]: 1 below, 3 inside.
        assert histogram.quantile(0.5) == pytest.approx(
            1.0 + (2.0 - 1.0) * (1.0 / 3.0)
        )

    def test_first_bucket_interpolates_from_zero(self):
        histogram = Histogram(buckets=(10.0,))
        histogram.observe(3.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)
        assert histogram.quantile(0.5) == pytest.approx(5.0)

    def test_infinite_tail_clamps_to_last_bound(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0
