"""Unit tests for the span tracer: nesting, threads, cost when off.

The ambient-span contextvar is module-global while :class:`Tracer`
instances are not, so tests build private tracers and never enable the
process-wide ``TRACER`` (the CLI owns that).
"""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    ROOT_LIMIT,
    Span,
    Tracer,
    adopt_span,
    current_span,
)
from repro.serve import Dispatcher


class TestDisabledTracer:
    def test_span_is_the_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("anything", key="value") is NULL_SPAN

    def test_noop_supports_full_span_surface(self):
        with Tracer().span("x") as span:
            assert span is NULL_SPAN
            assert span.set(a=1) is span
            span.add_child(Span("child"))
            span.finish()
        assert span.duration_ms == 0.0
        assert current_span() is None

    def test_disabled_records_no_roots(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.roots == []


class TestNesting:
    def test_children_attach_to_ambient_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            assert current_span() is root
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
            assert current_span() is root
        assert current_span() is None
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in child.children] == ["grandchild"]
        assert tracer.roots == [root]

    def test_attributes_and_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", path="APC") as span:
            span.set(nnz=42)
        assert span.attributes == {"path": "APC", "nnz": 42}

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.roots
        assert root.error == "ValueError: boom"
        assert root.seconds is not None

    def test_durations_are_stamped(self):
        tracer = Tracer(enabled=True)
        with tracer.span("timed") as span:
            assert span.seconds is None
        assert span.seconds >= 0.0
        assert span.duration_ms == span.seconds * 1e3

    def test_root_ring_is_bounded(self):
        tracer = Tracer(enabled=True)
        for index in range(ROOT_LIMIT + 10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.roots) == ROOT_LIMIT
        assert tracer.roots[0].name == "s10"
        tracer.reset()
        assert tracer.roots == []


class TestRendering:
    def test_to_dict_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", path="APC"):
            with tracer.span("child"):
                pass
        node = tracer.roots[0].to_dict()
        assert node["name"] == "root"
        assert node["attributes"] == {"path": "APC"}
        assert [c["name"] for c in node["children"]] == ["child"]
        assert "error" not in node

    def test_render_indents_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child", nnz=3):
                pass
        text = tracer.roots[0].render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "[nnz=3]" in lines[1]


class TestThreadPropagation:
    def test_adopt_span_installs_and_restores(self):
        parent = Span("parent")
        assert current_span() is None
        with adopt_span(parent):
            assert current_span() is parent
        assert current_span() is None

    def test_adopt_none_is_noop_scope(self):
        with adopt_span(None):
            assert current_span() is None

    def test_dispatcher_attaches_worker_spans_to_submitting_tree(self):
        # The RPR005 discipline, applied to spans: the dispatcher
        # captures current_span() at submit time and adopts it inside
        # every pooled worker, so spans started on worker threads nest
        # under the submitting request's tree.
        tracer = Tracer(enabled=True)

        def task(item):
            with tracer.span("worker", item=item):
                return item

        with tracer.span("request") as root:
            Dispatcher(workers=4).map(task, list(range(8)))
        assert sorted(
            child.attributes["item"] for child in root.children
        ) == list(range(8))
        assert all(child.name == "worker" for child in root.children)
        # Worker spans were adopted as children, never retained as
        # roots of their own.
        assert tracer.roots == [root]
