"""Golden-output tests for the Prometheus and JSON exporters.

Exporter output must be byte-stable for a fixed registry state
(families name-sorted, children label-sorted) -- these tests pin the
exact bytes so any accidental format drift fails loudly.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    prometheus_text,
    render_json,
)
from repro.obs.metrics import MetricsRegistry


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    hits = registry.counter("demo_hits_total", "Cache hits.")
    hits.labels(cache="c0").inc(3)
    hits.labels(cache="c1").inc(1.5)
    registry.gauge("demo_entries", "Entries held.").set(7)
    seconds = registry.histogram(
        "demo_seconds", "Wall time.", buckets=(0.01, 0.1, 1.0)
    )
    seconds.observe(0.005)
    seconds.observe(0.05)
    seconds.observe(5.0)
    return registry


GOLDEN_PROMETHEUS = """\
# HELP demo_entries Entries held.
# TYPE demo_entries gauge
demo_entries 7
# HELP demo_hits_total Cache hits.
# TYPE demo_hits_total counter
demo_hits_total{cache="c0"} 3
demo_hits_total{cache="c1"} 1.5
# HELP demo_seconds Wall time.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.01"} 1
demo_seconds_bucket{le="0.1"} 2
demo_seconds_bucket{le="1"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 5.055
demo_seconds_count 3
"""


class TestPrometheusText:
    def test_golden_output(self):
        assert prometheus_text(make_registry()) == GOLDEN_PROMETHEUS

    def test_byte_stable_across_renders(self):
        registry = make_registry()
        assert prometheus_text(registry) == prometheus_text(registry)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total").labels(path='A"P\\C\n').inc()
        text = prometheus_text(registry)
        assert 'esc_total{path="A\\"P\\\\C\\n"} 1' in text


class TestJsonSnapshot:
    def test_golden_structure(self):
        snapshot = json_snapshot(make_registry())
        assert sorted(snapshot) == [
            "demo_entries",
            "demo_hits_total",
            "demo_seconds",
        ]
        assert snapshot["demo_hits_total"] == {
            "kind": "counter",
            "help": "Cache hits.",
            "series": [
                {"labels": {"cache": "c0"}, "value": 3.0},
                {"labels": {"cache": "c1"}, "value": 1.5},
            ],
        }
        histogram = snapshot["demo_seconds"]["series"][0]
        assert histogram["count"] == 3
        assert histogram["sum"] == 5.055
        assert histogram["buckets"] == [
            {"le": "0.01", "count": 1},
            {"le": "0.1", "count": 2},
            {"le": "1", "count": 2},
            {"le": "+Inf", "count": 3},
        ]

    def test_render_json_round_trips(self):
        registry = make_registry()
        assert json.loads(render_json(registry)) == json_snapshot(registry)

    def test_render_json_sorted_keys(self):
        rendered = render_json(make_registry())
        assert rendered.index("demo_entries") < rendered.index(
            "demo_hits_total"
        )


class TestContentType:
    def test_prometheus_content_type_is_exact(self):
        # Strict scrapers reject anything but the 0.0.4 text format
        # announcement; the HTTP tier serves this constant verbatim.
        assert (
            PROMETHEUS_CONTENT_TYPE
            == "text/plain; version=0.0.4; charset=utf-8"
        )


class TestSnapshotPurity:
    """The JSON snapshot endpoint must not perturb the text exporter's
    byte-stability: emit, snapshot, emit again, bytes identical."""

    def test_json_snapshot_preserves_prometheus_bytes(self):
        registry = make_registry()
        before = prometheus_text(registry)
        assert before == GOLDEN_PROMETHEUS
        snapshot = json_snapshot(registry)
        render_json(registry)
        assert prometheus_text(registry) == before

        # Mutating the returned snapshot must not reach the registry.
        snapshot["demo_entries"]["series"][0]["value"] = 999.0
        snapshot["demo_seconds"]["series"][0]["buckets"].clear()
        assert prometheus_text(registry) == before
        assert json_snapshot(registry)["demo_entries"]["series"][0][
            "value"
        ] == 7
