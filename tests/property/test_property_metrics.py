"""Property-based tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.learning.auc import auc_score
from repro.learning.nmi import normalized_mutual_information
from repro.learning.rankdiff import average_rank_difference


@st.composite
def labelings(draw):
    n = draw(st.integers(2, 40))
    a = draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
    return a, b


@st.composite
def binary_problems(draw):
    n = draw(st.integers(2, 50))
    labels = draw(
        st.lists(st.integers(0, 1), min_size=n, max_size=n)
    )
    assume(0 < sum(labels) < n)
    scores = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return labels, scores


class TestNmiProperties:
    @given(labelings())
    @settings(max_examples=100, deadline=None)
    def test_range(self, pair):
        a, b = pair
        nmi = normalized_mutual_information(a, b)
        assert -1e-9 <= nmi <= 1 + 1e-9

    @given(labelings())
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a), abs=1e-10
        )

    @given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_self_nmi_is_one(self, labels):
        assert normalized_mutual_information(labels, labels) == pytest.approx(
            1.0
        )

    @given(labelings(), st.permutations(range(5)))
    @settings(max_examples=60, deadline=None)
    def test_invariant_to_label_permutation(self, pair, permutation):
        a, b = pair
        permuted = [permutation[x] for x in b]
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(a, permuted), abs=1e-10
        )


class TestAucProperties:
    @given(binary_problems())
    @settings(max_examples=100, deadline=None)
    def test_range(self, problem):
        labels, scores = problem
        assert 0 <= auc_score(labels, scores) <= 1

    @given(binary_problems())
    @settings(max_examples=100, deadline=None)
    def test_flipping_scores_flips_auc(self, problem):
        labels, scores = problem
        direct = auc_score(labels, scores)
        flipped = auc_score(labels, [-s for s in scores])
        assert direct + flipped == pytest.approx(1.0, abs=1e-9)

    @given(binary_problems())
    @settings(max_examples=100, deadline=None)
    def test_monotone_transform_invariant(self, problem):
        labels, scores = problem
        # Multiplying by a power of two is exact in binary floating
        # point, so the transform is strictly monotone with no new ties.
        transformed = [4.0 * s for s in scores]
        assert auc_score(labels, scores) == pytest.approx(
            auc_score(labels, transformed), abs=1e-9
        )


class TestRankDiffProperties:
    @given(st.permutations(list("abcdefgh")))
    @settings(max_examples=100, deadline=None)
    def test_identity_is_zero(self, ranking):
        assert average_rank_difference(list(ranking), list(ranking)) == 0.0

    @given(st.permutations(list("abcdefgh")), st.permutations(list("abcdefgh")))
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, ground, measured):
        assert average_rank_difference(list(ground), list(measured)) >= 0.0

    @given(st.permutations(list("abcdefgh")), st.permutations(list("abcdefgh")))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_for_full_permutations(self, ground, measured):
        """With identical item sets, the displacement sum is symmetric."""
        forward = average_rank_difference(list(ground), list(measured))
        backward = average_rank_difference(list(measured), list(ground))
        assert forward == pytest.approx(backward)
