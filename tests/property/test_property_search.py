"""Property-based tests for search, pruning, multi-path, and the store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import HeteSimEngine
from repro.core.multipath import MultiPathHeteSim
from repro.core.pruning import pruned_top_k
from repro.datasets.schemas import toy_apc_schema
from repro.hin.graph import HeteroGraph

MAX_N = 6


@st.composite
def apc_graphs(draw):
    """A random author-paper-conference graph with no isolated papers."""
    n_a = draw(st.integers(2, MAX_N))
    n_p = draw(st.integers(2, MAX_N))
    n_c = draw(st.integers(2, 4))
    writes = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_p - 1)),
            min_size=2,
            max_size=n_a * n_p,
        )
    )
    published = draw(
        st.sets(
            st.tuples(st.integers(0, n_p - 1), st.integers(0, n_c - 1)),
            min_size=2,
            max_size=n_p * n_c,
        )
    )
    graph = HeteroGraph(toy_apc_schema())
    graph.add_nodes("author", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("paper", (f"p{i}" for i in range(n_p)))
    graph.add_nodes("conference", (f"c{i}" for i in range(n_c)))
    for i, j in writes:
        graph.add_edge("writes", f"a{i}", f"p{j}")
    for i, j in published:
        graph.add_edge("published_in", f"p{i}", f"c{j}")
    return graph


class TestPruningProperties:
    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_exact_mode_matches_engine(self, graph):
        """mass_tolerance=0 must reproduce the engine ranking exactly."""
        engine = HeteSimEngine(graph)
        path = graph.schema.path("APC")
        for source in graph.node_keys("author")[:2]:
            pruned = pruned_top_k(graph, path, source, k=4)
            exact = engine.top_k(source, path, k=4)
            assert pruned.is_exact
            assert [k for k, _ in pruned.ranking] == [k for k, _ in exact]
            for (_, a), (_, b) in zip(pruned.ranking, exact):
                assert a == pytest.approx(b, abs=1e-10)

    @given(apc_graphs(), st.floats(0.0, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_dropped_mass_stays_under_tolerance(self, graph, tolerance):
        path = graph.schema.path("APC")
        source = graph.node_keys("author")[0]
        result = pruned_top_k(
            graph, path, source, k=3, mass_tolerance=tolerance
        )
        assert 0 <= result.dropped_mass <= tolerance

    @given(apc_graphs(), st.floats(0.01, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_raw_error_bounded(self, graph, tolerance):
        path = graph.schema.path("APC")
        source = graph.node_keys("author")[0]
        exact = dict(
            pruned_top_k(
                graph, path, source, k=10, normalized=False
            ).ranking
        )
        approx = pruned_top_k(
            graph, path, source, k=10, normalized=False,
            mass_tolerance=tolerance,
        )
        for key, score in approx.ranking:
            assert abs(score - exact[key]) <= approx.dropped_mass + 1e-10


class TestMultiPathProperties:
    @given(apc_graphs(), st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_combination_between_components(self, graph, weight):
        """A convex combination lies between the per-path scores."""
        engine = HeteSimEngine(graph)
        multi = MultiPathHeteSim(
            engine, {"APC": weight, "APAPC": 1.0 - weight}
        )
        source = graph.node_keys("author")[0]
        target = graph.node_keys("conference")[0]
        combined = multi.relevance(source, target)
        first = engine.relevance(source, target, "APC")
        second = engine.relevance(source, target, "APAPC")
        assert min(first, second) - 1e-12 <= combined <= max(
            first, second
        ) + 1e-12

    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matrix_in_unit_interval(self, graph):
        engine = HeteSimEngine(graph)
        multi = MultiPathHeteSim(engine, {"APC": 1.0, "APAPC": 1.0})
        matrix = multi.relevance_matrix()
        assert (matrix >= -1e-12).all() and (matrix <= 1 + 1e-9).all()


class TestStoreProperties:
    @given(apc_graphs())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_matrix(self, tmp_path_factory, graph):
        from repro.core.store import MatrixStore
        from repro.hin.matrices import reachable_probability_matrix

        directory = tmp_path_factory.mktemp("store")
        store = MatrixStore(directory)
        path = graph.schema.path("APC")
        store.save(graph, [path])
        np.testing.assert_allclose(
            store.load(path).toarray(),
            reachable_probability_matrix(graph, path).toarray(),
            atol=1e-12,
        )
