"""Property-based tests for meta-path algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.schemas import acm_schema
from repro.hin.metapath import MetaPath

SCHEMA = acm_schema()

#: Adjacency of the ACM schema's type graph (by code), both directions.
_NEIGHBOR_CODES = {
    "A": ["P", "F"],
    "P": ["A", "V", "T", "S"],
    "V": ["P", "C"],
    "C": ["V"],
    "T": ["P"],
    "S": ["P"],
    "F": ["A"],
}


@st.composite
def acm_paths(draw):
    """A random valid path over the ACM schema, length 1..6."""
    length = draw(st.integers(1, 6))
    code = draw(st.sampled_from(sorted(_NEIGHBOR_CODES)))
    codes = [code]
    for _ in range(length):
        code = draw(st.sampled_from(_NEIGHBOR_CODES[code]))
        codes.append(code)
    return SCHEMA.path("".join(codes))


class TestPathAlgebra:
    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_reverse_is_involution(self, path):
        assert path.reverse().reverse() == path

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_reverse_swaps_endpoints(self, path):
        reverse = path.reverse()
        assert reverse.source_type == path.target_type
        assert reverse.target_type == path.source_type
        assert reverse.length == path.length

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_code_roundtrips_through_parser(self, path):
        assert SCHEMA.path(path.code()) == path

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_symmetric_iff_equal_to_reverse(self, path):
        assert path.is_symmetric == (path == path.reverse())

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_concat_with_reverse_is_symmetric(self, path):
        roundtrip = path.concat(path.reverse())
        assert roundtrip.is_symmetric
        assert roundtrip.length == 2 * path.length

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_halves_reassemble(self, path):
        halves = path.halves()
        if halves.needs_edge_object:
            assert path.length % 2 == 1
            parts = (halves.left.length if halves.left else 0) + 1 + (
                halves.right.length if halves.right else 0
            )
            assert parts == path.length
        else:
            assert path.length % 2 == 0
            assert halves.left.concat(halves.right) == path

    @given(acm_paths())
    @settings(max_examples=100, deadline=None)
    def test_node_types_consistent_with_length(self, path):
        assert len(path.node_types) == path.length + 1

    @given(acm_paths(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_repeat_length(self, path, times):
        if path.source_type != path.target_type:
            with pytest.raises(Exception):
                path.repeat(2)
        else:
            assert path.repeat(times).length == times * path.length
