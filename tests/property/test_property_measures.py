"""Property-based tests (hypothesis) for the measure plugin layer.

On random author-paper-conference networks every plugin must agree
with an independently computed reference -- the core HeteSim kernels,
raw adjacency-chain products, and one-hot walk propagation, none of
which go through :mod:`repro.core.measures` -- and ``combined`` must
be exactly the weighted sum of its components' HeteSim scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hetesim import hetesim_all_targets, hetesim_matrix
from repro.core.measures import MeasureContext, get_measure
from repro.core.reachprob import reach_row
from repro.datasets.random_hin import make_random_hin
from repro.datasets.schemas import toy_apc_schema
from repro.hin.graph import HeteroGraph


@st.composite
def apc_graphs(draw):
    """A random author-paper-conference graph (every type populated)."""
    n_a = draw(st.integers(1, 6))
    n_p = draw(st.integers(1, 6))
    n_c = draw(st.integers(1, 3))
    writes = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_p - 1)),
            min_size=1,
            max_size=n_a * n_p,
        )
    )
    published = draw(
        st.sets(
            st.tuples(st.integers(0, n_p - 1), st.integers(0, n_c - 1)),
            min_size=1,
            max_size=n_p * n_c,
        )
    )
    graph = HeteroGraph(toy_apc_schema())
    graph.add_nodes("author", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("paper", (f"p{i}" for i in range(n_p)))
    graph.add_nodes("conference", (f"c{i}" for i in range(n_c)))
    for i, j in writes:
        graph.add_edge("writes", f"a{i}", f"p{j}")
    for i, j in published:
        graph.add_edge("published_in", f"p{i}", f"c{j}")
    return graph


@st.composite
def seeded_hins(draw):
    """A seeded :func:`make_random_hin` draw (denser, reproducible)."""
    return make_random_hin(
        toy_apc_schema(),
        sizes={
            "author": draw(st.integers(3, 10)),
            "paper": draw(st.integers(3, 15)),
            "conference": draw(st.integers(2, 4)),
        },
        edge_prob=draw(
            st.floats(0.1, 0.6, allow_nan=False, allow_infinity=False)
        ),
        seed=draw(st.integers(0, 1000)),
    )


def adjacency_counts(graph, path):
    matrix = graph.adjacency(path.relations[0].name)
    for relation in path.relations[1:]:
        matrix = matrix @ graph.adjacency(relation.name)
    return matrix.toarray()


class TestPluginsMatchReferences:
    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hetesim_plugin_matches_core_matrix(self, graph):
        ctx = MeasureContext(graph=graph)
        for spec in ("APC", "APCPA"):
            expected = hetesim_matrix(graph, graph.schema.path(spec))
            got = get_measure("hetesim").matrix(ctx, spec)
            np.testing.assert_allclose(got, expected, atol=1e-12)

    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hetesim_plugin_rank_matches_core_vector(self, graph):
        ctx = MeasureContext(graph=graph)
        path = graph.schema.path("APC")
        keys = graph.node_keys("conference")
        for source in graph.node_keys("author")[:3]:
            vector = hetesim_all_targets(graph, path, source)
            expected = sorted(
                zip(keys, vector), key=lambda kv: (-kv[1], kv[0])
            )
            got = get_measure("hetesim").rank(ctx, "APC", source)
            assert [k for k, _ in got] == [k for k, _ in expected]
            np.testing.assert_allclose(
                [s for _, s in got], [s for _, s in expected], atol=1e-12
            )

    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pathsim_plugin_matches_adjacency_chain(self, graph):
        ctx = MeasureContext(graph=graph)
        path = graph.schema.path("APCPA")
        counts = adjacency_counts(graph, path)
        diagonal = np.diag(counts)
        denominator = diagonal[:, None] + diagonal[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = np.where(
                denominator > 0, 2.0 * counts / denominator, 0.0
            )
        got = get_measure("pathsim").matrix(ctx, "APCPA")
        assert np.array_equal(got, expected)

    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_walk_plugins_match_one_hot_propagation(self, graph):
        ctx = MeasureContext(graph=graph)
        path = graph.schema.path("APC")
        for source in graph.node_keys("author")[:3]:
            expected = reach_row(graph, path, source)
            for name in ("pcrw", "reachprob"):
                got = get_measure(name).vector(ctx, "APC", source)
                assert np.array_equal(got, expected), name

    @given(apc_graphs())
    @settings(max_examples=30, deadline=None)
    def test_pair_entries_agree_with_matrix(self, graph):
        ctx = MeasureContext(graph=graph)
        authors = graph.node_keys("author")[:3]
        confs = graph.node_keys("conference")[:2]
        for name, spec in (("hetesim", "APC"), ("pcrw", "APC")):
            matrix = get_measure(name).matrix(ctx, spec)
            for s in authors:
                i = graph.node_index("author", s)
                for t in confs:
                    j = graph.node_index("conference", t)
                    pair = get_measure(name).pair(ctx, spec, s, t)
                    assert pair == pytest.approx(
                        matrix[i, j], abs=1e-12
                    ), name


class TestCombinedIsWeightedSum:
    @given(
        seeded_hins(),
        st.floats(0.05, 0.95, allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_combined_vector_is_weighted_hetesim_sum(self, hin, weight):
        ctx = MeasureContext(graph=hin)
        spec = f"APC={weight:.4f},APCPAPC={1 - weight:.4f}"
        hetesim = get_measure("hetesim")
        source = hin.node_keys("author")[0]
        w1 = float(f"{weight:.4f}")
        w2 = float(f"{1 - weight:.4f}")
        total = w1 + w2
        expected = (
            (w1 / total) * hetesim.vector(ctx, "APC", source)
            + (w2 / total) * hetesim.vector(ctx, "APCPAPC", source)
        )
        got = get_measure("combined").vector(ctx, spec, source)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    @given(seeded_hins())
    @settings(max_examples=25, deadline=None)
    def test_degenerate_combined_equals_plain_hetesim(self, hin):
        ctx = MeasureContext(graph=hin)
        source = hin.node_keys("author")[0]
        got = get_measure("combined").vector(ctx, "APC=1.0", source)
        expected = get_measure("hetesim").vector(ctx, "APC", source)
        np.testing.assert_allclose(got, expected, atol=1e-12)
