"""Property-based tests for matrix normalisation and decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays
from scipy import sparse

from repro.hin.decomposition import decompose_adjacency
from repro.hin.matrices import col_normalize, row_normalize, safe_reciprocal


@st.composite
def nonneg_matrices(draw):
    rows = draw(st.integers(1, 8))
    cols = draw(st.integers(1, 8))
    values = draw(
        arrays(
            dtype=np.float64,
            shape=(rows, cols),
            elements=st.floats(0.01, 10, allow_nan=False),
        )
    )
    # Sparsify: zero out ~half the entries deterministically from the draw.
    mask = draw(
        arrays(dtype=np.bool_, shape=(rows, cols), elements=st.booleans())
    )
    return values * mask


class TestNormalization:
    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_row_sums_zero_or_one(self, dense):
        normalized = row_normalize(sparse.csr_matrix(dense)).toarray()
        sums = normalized.sum(axis=1)
        assert ((np.isclose(sums, 1.0)) | (sums == 0.0)).all()

    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_col_sums_zero_or_one(self, dense):
        normalized = col_normalize(sparse.csr_matrix(dense)).toarray()
        sums = normalized.sum(axis=0)
        assert ((np.isclose(sums, 1.0)) | (sums == 0.0)).all()

    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_property2_duality(self, dense):
        """col_normalize(W) == row_normalize(W')' -- the V/U transposition."""
        matrix = sparse.csr_matrix(dense)
        np.testing.assert_allclose(
            col_normalize(matrix).toarray(),
            row_normalize(matrix.T).toarray().T,
            atol=1e-12,
        )

    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_sparsity_pattern_preserved(self, dense):
        normalized = row_normalize(sparse.csr_matrix(dense)).toarray()
        np.testing.assert_array_equal(normalized > 0, dense > 0)

    @given(nonneg_matrices())
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, dense):
        once = row_normalize(sparse.csr_matrix(dense))
        twice = row_normalize(once)
        np.testing.assert_allclose(once.toarray(), twice.toarray(), atol=1e-12)


class TestDecomposition:
    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_product_recovers_matrix(self, dense):
        """Property 1 over random weighted adjacency matrices."""
        matrix = sparse.csr_matrix(dense)
        w_ae, w_eb = decompose_adjacency(matrix)
        np.testing.assert_allclose(
            (w_ae @ w_eb).toarray(), matrix.toarray(), atol=1e-10
        )

    @given(nonneg_matrices())
    @settings(max_examples=80, deadline=None)
    def test_edge_count(self, dense):
        matrix = sparse.csr_matrix(dense)
        matrix.eliminate_zeros()
        w_ae, w_eb = decompose_adjacency(matrix)
        assert w_ae.shape[1] == matrix.nnz
        assert w_eb.shape[0] == matrix.nnz


class TestSafeReciprocal:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(0, 20),
            elements=st.floats(0, 1e6, allow_nan=False, allow_subnormal=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_zero_maps_to_zero_rest_inverts(self, values):
        result = safe_reciprocal(values)
        assert not np.isnan(result).any()
        assert not np.isinf(result).any()
        zero = values == 0
        np.testing.assert_array_equal(result[zero], 0.0)
        np.testing.assert_allclose(
            result[~zero] * values[~zero], 1.0, atol=1e-9
        )
