"""Property-based tests for the materialisation planner (hypothesis).

The planner may reorder products, substitute cached prefixes, densify
intermediates and evict under a byte budget -- none of which may change
the numbers.  The ground truth everywhere is the strict left-to-right
definitional product (:func:`reachable_probability_matrix` for ``U``
chains, a fold over adjacencies for ``W`` chains, and the Definition 6
edge-object decomposition for odd-path halves).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.backend import materialise
from repro.core.cache import PathMatrixCache
from repro.core.hetesim import half_reach_matrices
from repro.datasets.random_hin import make_random_hin
from repro.datasets.schemas import toy_apc_schema
from repro.hin.decomposition import decompose_adjacency
from repro.hin.matrices import reachable_probability_matrix, row_normalize

MAX_PATH_LENGTH = 6

#: Schema walk graph of the A-P-C toy schema (type code -> successors).
NEXT_TYPE = {"A": "P", "P": "AC", "C": "P"}


@st.composite
def random_hins(draw):
    """A random A-P-C network (Erdos-Renyi edges per relation)."""
    sizes = {
        "author": draw(st.integers(1, 5)),
        "paper": draw(st.integers(1, 5)),
        "conference": draw(st.integers(1, 3)),
    }
    edge_prob = draw(st.sampled_from([0.15, 0.35, 0.7]))
    seed = draw(st.integers(0, 2**16))
    return make_random_hin(
        toy_apc_schema(), sizes, edge_prob=edge_prob, seed=seed
    )


@st.composite
def path_specs(draw, min_length=1, max_length=MAX_PATH_LENGTH):
    """A random schema-valid path spec with 1..max_length relations."""
    length = draw(st.integers(min_length, max_length))
    spec = draw(st.sampled_from("APC"))
    for _ in range(length):
        spec += draw(st.sampled_from(NEXT_TYPE[spec[-1]]))
    return spec


def _legacy_halves(graph, path):
    """Left-to-right reference for :func:`half_reach_matrices`.

    Even paths: the two definitional half products.  Odd paths: the
    Definition 6 edge-object decomposition applied after the plain
    half products.
    """
    halves = path.halves()
    if not halves.needs_edge_object:
        return (
            reachable_probability_matrix(graph, halves.left),
            reachable_probability_matrix(graph, halves.right.reverse()),
        )
    middle = halves.middle_relation
    w_ae, w_eb = decompose_adjacency(graph.adjacency(middle.name))
    forward = row_normalize(w_ae)
    backward = row_normalize(w_eb.T)
    left = (
        forward
        if halves.left is None
        else reachable_probability_matrix(graph, halves.left) @ forward
    )
    right = (
        backward
        if halves.right is None
        else reachable_probability_matrix(graph, halves.right.reverse())
        @ backward
    )
    return left, right


class TestPlannerEquivalence:
    @given(random_hins(), path_specs())
    @settings(max_examples=40, deadline=None)
    def test_planned_matches_left_to_right(self, graph, spec):
        path = graph.schema.path(spec)
        planned, stats = materialise(graph, path)
        direct = reachable_probability_matrix(graph, path)
        np.testing.assert_allclose(
            planned.toarray(), direct.toarray(), atol=1e-12
        )
        assert stats.output_shape == tuple(direct.shape)

    @given(random_hins(), path_specs())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_plan_matches_left_to_right(self, graph, spec):
        path = graph.schema.path(spec)
        planned, _ = materialise(graph, path, weights="adjacency")
        product = None
        for relation in path.relations:
            step = graph.adjacency(relation.name)
            product = step if product is None else (product @ step).tocsr()
        np.testing.assert_allclose(
            planned.toarray(), product.toarray(), atol=1e-9
        )

    @given(random_hins(), path_specs())
    @settings(max_examples=40, deadline=None)
    def test_halves_match_edge_object_reference(self, graph, spec):
        """Odd paths go through the Definition 6 edge-object split;
        even paths through the plain half products.  Both must match
        the left-to-right reference, cached or not."""
        path = graph.schema.path(spec)
        expected_left, expected_right = _legacy_halves(graph, path)
        for cache in (None, PathMatrixCache(graph, byte_budget=512)):
            left, right = half_reach_matrices(graph, path, cache=cache)
            np.testing.assert_allclose(
                left.toarray(), expected_left.toarray(), atol=1e-12
            )
            np.testing.assert_allclose(
                right.toarray(), expected_right.toarray(), atol=1e-12
            )


class TestEvictionInvariance:
    @given(
        random_hins(),
        st.lists(path_specs(), min_size=2, max_size=6),
        st.sampled_from([0, 256, 1024, 4096]),
    )
    @settings(max_examples=30, deadline=None)
    def test_budgeted_cache_is_bounded_and_exact(self, graph, specs, budget):
        """Under any byte budget the cache never exceeds it and every
        query still returns the definitional left-to-right product."""
        cache = PathMatrixCache(graph, byte_budget=budget)
        for spec in specs:
            path = graph.schema.path(spec)
            result = cache.reach_prob(path)
            assert cache.nbytes <= budget
            np.testing.assert_allclose(
                result.toarray(),
                reachable_probability_matrix(graph, path).toarray(),
                atol=1e-12,
            )
