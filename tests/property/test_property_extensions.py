"""Property-based tests for the search extensions: threshold search,
explanations, and subgraphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import HeteSimEngine
from repro.core.explain import explain_relevance
from repro.core.hetesim import hetesim_pair
from repro.core.threshold import threshold_top_k
from repro.datasets.schemas import toy_apc_schema
from repro.hin.graph import HeteroGraph
from repro.hin.subgraph import induced_subgraph

MAX_N = 6


@st.composite
def apc_graphs(draw):
    n_a = draw(st.integers(2, MAX_N))
    n_p = draw(st.integers(2, MAX_N))
    n_c = draw(st.integers(2, 4))
    writes = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_p - 1)),
            min_size=2,
            max_size=n_a * n_p,
        )
    )
    published = draw(
        st.sets(
            st.tuples(st.integers(0, n_p - 1), st.integers(0, n_c - 1)),
            min_size=2,
            max_size=n_p * n_c,
        )
    )
    graph = HeteroGraph(toy_apc_schema())
    graph.add_nodes("author", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("paper", (f"p{i}" for i in range(n_p)))
    graph.add_nodes("conference", (f"c{i}" for i in range(n_c)))
    for i, j in writes:
        graph.add_edge("writes", f"a{i}", f"p{j}")
    for i, j in published:
        graph.add_edge("published_in", f"p{i}", f"c{j}")
    return graph


class TestThresholdProperties:
    @given(apc_graphs(), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_always_matches_exact_search(self, graph, k):
        engine = HeteSimEngine(graph)
        path = graph.schema.path("APC")
        for source in graph.node_keys("author")[:2]:
            ta = threshold_top_k(graph, path, source, k=k)
            exact = engine.top_k(source, path, k=k)
            assert [key for key, _ in ta.ranking] == [
                key for key, _ in exact
            ]
            for (_, a), (_, b) in zip(ta.ranking, exact):
                assert a == pytest.approx(b, abs=1e-10)

    @given(apc_graphs())
    @settings(max_examples=50, deadline=None)
    def test_raw_mode_matches_exact(self, graph):
        engine = HeteSimEngine(graph)
        path = graph.schema.path("APC")
        source = graph.node_keys("author")[0]
        ta = threshold_top_k(graph, path, source, k=3, normalized=False)
        exact = engine.top_k(source, path, k=3, normalized=False)
        assert [key for key, _ in ta.ranking] == [key for key, _ in exact]


class TestExplainProperties:
    @given(apc_graphs())
    @settings(max_examples=50, deadline=None)
    def test_contributions_sum_to_raw_score(self, graph):
        path = graph.schema.path("APC")
        source = graph.node_keys("author")[0]
        target = graph.node_keys("conference")[0]
        raw = hetesim_pair(graph, path, source, target, normalized=False)
        contributions = explain_relevance(
            graph, path, source, target, k=1000
        )
        total = sum(c.contribution for c in contributions)
        assert total == pytest.approx(raw, abs=1e-10)

    @given(apc_graphs())
    @settings(max_examples=50, deadline=None)
    def test_shares_form_distribution(self, graph):
        path = graph.schema.path("APC")
        source = graph.node_keys("author")[0]
        target = graph.node_keys("conference")[0]
        contributions = explain_relevance(
            graph, path, source, target, k=1000
        )
        if contributions:
            assert sum(c.share for c in contributions) == pytest.approx(1.0)
            assert all(c.share >= 0 for c in contributions)


class TestSubgraphProperties:
    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_full_keep_preserves_scores(self, graph):
        sub = induced_subgraph(graph, {})
        path = graph.schema.path("APC")
        sub_path = sub.schema.path("APC")
        for source in graph.node_keys("author")[:2]:
            for target in graph.node_keys("conference")[:2]:
                assert hetesim_pair(
                    graph, path, source, target
                ) == pytest.approx(
                    hetesim_pair(sub, sub_path, source, target), abs=1e-12
                )

    @given(apc_graphs())
    @settings(max_examples=40, deadline=None)
    def test_subset_never_gains_edges(self, graph):
        keep_authors = graph.node_keys("author")[:2]
        sub = induced_subgraph(graph, {"author": keep_authors})
        assert sub.num_edges("writes") <= graph.num_edges("writes")
        assert sub.num_edges("published_in") == graph.num_edges(
            "published_in"
        )
