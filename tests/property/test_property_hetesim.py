"""Property-based tests (hypothesis) for the HeteSim measure.

Random bipartite and tripartite networks are generated from drawn edge
sets; the invariants checked are the paper's Properties 3-4 plus
agreement between the matrix and naive implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hetesim import hetesim_matrix, hetesim_pair
from repro.core.naive import naive_hetesim
from repro.datasets.schemas import bipartite_schema, toy_apc_schema
from repro.hin.graph import HeteroGraph

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

MAX_N = 6


@st.composite
def bipartite_graphs(draw):
    """A random bipartite graph with 1..MAX_N nodes per side."""
    n_a = draw(st.integers(1, MAX_N))
    n_b = draw(st.integers(1, MAX_N))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_b - 1)),
            min_size=1,
            max_size=n_a * n_b,
        )
    )
    graph = HeteroGraph(bipartite_schema())
    graph.add_nodes("a", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("b", (f"b{i}" for i in range(n_b)))
    for i, j in edges:
        graph.add_edge("r", f"a{i}", f"b{j}")
    return graph


@st.composite
def tripartite_graphs(draw):
    """A random author-paper-conference graph."""
    n_a = draw(st.integers(1, MAX_N))
    n_p = draw(st.integers(1, MAX_N))
    n_c = draw(st.integers(1, 3))
    writes = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_p - 1)),
            min_size=1,
            max_size=n_a * n_p,
        )
    )
    published = draw(
        st.sets(
            st.tuples(st.integers(0, n_p - 1), st.integers(0, n_c - 1)),
            min_size=1,
            max_size=n_p * n_c,
        )
    )
    graph = HeteroGraph(toy_apc_schema())
    graph.add_nodes("author", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("paper", (f"p{i}" for i in range(n_p)))
    graph.add_nodes("conference", (f"c{i}" for i in range(n_c)))
    for i, j in writes:
        graph.add_edge("writes", f"a{i}", f"p{j}")
    for i, j in published:
        graph.add_edge("published_in", f"p{i}", f"c{j}")
    return graph


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


class TestBipartiteInvariants:
    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry_on_atomic_relation(self, graph):
        """Property 3 on the odd (length-1) path AB."""
        path = graph.schema.path("AB")
        forward = hetesim_matrix(graph, path)
        backward = hetesim_matrix(graph, path.reverse())
        np.testing.assert_allclose(forward, backward.T, atol=1e-10)

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_unit_interval(self, graph):
        """Property 4 on both AB and the even path ABA."""
        for spec in ("AB", "ABA"):
            matrix = hetesim_matrix(graph, graph.schema.path(spec))
            assert (matrix >= -1e-12).all()
            assert (matrix <= 1 + 1e-9).all()

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_self_max_on_symmetric_path(self, graph):
        matrix = hetesim_matrix(graph, graph.schema.path("ABA"))
        diagonal = np.diag(matrix)
        assert ((np.isclose(diagonal, 1.0)) | (diagonal == 0.0)).all()

    @given(bipartite_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matrix_matches_naive(self, graph):
        path = graph.schema.path("AB")
        for s in graph.node_keys("a")[:3]:
            for t in graph.node_keys("b")[:3]:
                fast = hetesim_pair(graph, path, s, t)
                slow = naive_hetesim(graph, path, s, t)
                assert fast == pytest.approx(slow, abs=1e-10)

    @given(bipartite_graphs())
    @settings(max_examples=30, deadline=None)
    def test_no_nans(self, graph):
        for spec in ("AB", "ABA", "BAB"):
            matrix = hetesim_matrix(graph, graph.schema.path(spec))
            assert not np.isnan(matrix).any()


class TestTripartiteInvariants:
    @given(tripartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_symmetry_even_and_odd(self, graph):
        for spec in ("APC", "APA", "AP"):
            path = graph.schema.path(spec)
            forward = hetesim_matrix(graph, path)
            backward = hetesim_matrix(graph, path.reverse())
            np.testing.assert_allclose(forward, backward.T, atol=1e-10)

    @given(tripartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_range_and_no_nans(self, graph):
        for spec in ("APC", "CPA", "APCPA"):
            matrix = hetesim_matrix(graph, graph.schema.path(spec))
            assert not np.isnan(matrix).any()
            assert (matrix >= -1e-12).all()
            assert (matrix <= 1 + 1e-9).all()

    @given(tripartite_graphs())
    @settings(max_examples=20, deadline=None)
    def test_matrix_matches_naive_on_even_path(self, graph):
        path = graph.schema.path("APC")
        for s in graph.node_keys("author")[:2]:
            for t in graph.node_keys("conference")[:2]:
                fast = hetesim_pair(graph, path, s, t)
                slow = naive_hetesim(graph, path, s, t)
                assert fast == pytest.approx(slow, abs=1e-10)
