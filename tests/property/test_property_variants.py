"""Property-based tests for the Dice variant and chain ordering."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.plan import optimal_chain_order
from repro.core.hetesim import hetesim_matrix
from repro.core.variants import dice_hetesim_matrix
from repro.datasets.schemas import bipartite_schema
from repro.hin.graph import HeteroGraph

MAX_N = 6


@st.composite
def bipartite_graphs(draw):
    n_a = draw(st.integers(1, MAX_N))
    n_b = draw(st.integers(1, MAX_N))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n_a - 1), st.integers(0, n_b - 1)),
            min_size=1,
            max_size=n_a * n_b,
        )
    )
    graph = HeteroGraph(bipartite_schema())
    graph.add_nodes("a", (f"a{i}" for i in range(n_a)))
    graph.add_nodes("b", (f"b{i}" for i in range(n_b)))
    for i, j in edges:
        graph.add_edge("r", f"a{i}", f"b{j}")
    return graph


class TestDiceInvariants:
    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_range_and_symmetry(self, graph):
        path = graph.schema.path("AB")
        forward = dice_hetesim_matrix(graph, path)
        backward = dice_hetesim_matrix(graph, path.reverse())
        assert (forward >= -1e-12).all()
        assert (forward <= 1 + 1e-12).all()
        np.testing.assert_allclose(forward, backward.T, atol=1e-12)

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_dominated_by_cosine(self, graph):
        """AM-GM: Dice <= cosine everywhere, equality on identical
        distributions."""
        for spec in ("AB", "ABA"):
            path = graph.schema.path(spec)
            dice = dice_hetesim_matrix(graph, path)
            cosine = hetesim_matrix(graph, path)
            assert (dice <= cosine + 1e-10).all()

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_self_maximum_on_round_trip(self, graph):
        path = graph.schema.path("ABA")
        matrix = dice_hetesim_matrix(graph, path)
        diagonal = np.diag(matrix)
        assert ((np.isclose(diagonal, 1.0)) | (diagonal == 0.0)).all()


@st.composite
def matrix_chains(draw):
    n = draw(st.integers(1, 5))
    dims = draw(
        st.lists(st.integers(1, 8), min_size=n + 1, max_size=n + 1)
    )
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    matrices = [
        rng.random((dims[i], dims[i + 1])) for i in range(n)
    ]
    return dims, matrices


class TestChainOrderInvariants:
    @given(matrix_chains())
    @settings(max_examples=80, deadline=None)
    def test_schedule_reproduces_product(self, chain):
        dims, matrices = chain
        expected = matrices[0]
        for matrix in matrices[1:]:
            expected = expected @ matrix
        working = list(matrices)
        for left, right in optimal_chain_order(dims):
            working[left] = working[left] @ working[right]
            working.pop(right)
        assert len(working) == 1
        np.testing.assert_allclose(working[0], expected, atol=1e-9)

    @given(matrix_chains())
    @settings(max_examples=80, deadline=None)
    def test_schedule_length(self, chain):
        dims, matrices = chain
        schedule = optimal_chain_order(dims)
        assert len(schedule) == len(matrices) - 1
