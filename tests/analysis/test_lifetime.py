"""Path-sensitive lifetime rules: RPR010 (resources), RPR011 (tokens).

Bad fixtures assert the exact rule id and line; good fixtures assert
silence, including the deliberate escape-analysis outs (ownership
transfer, with-statements, finally cleanup).
"""

import ast
import textwrap

from repro.analysis import ContextTokenRule, ResourceLifetimeRule
from repro.analysis.core import SourceFile


def lint(rule, source, rel="src/repro/example.py"):
    code = textwrap.dedent(source)
    file = SourceFile(None, rel, code, ast.parse(code))
    return [(f.rule, f.line) for f in rule.check(file)]


class TestResourceLifetimeRule:
    def test_early_return_leak_flagged(self):
        assert lint(
            ResourceLifetimeRule(),
            """\
            def publish(shape, fast):
                lease = ShmLease(shape)
                if fast:
                    return None
                lease.release()
            """,
        ) == [("RPR010", 2)]

    def test_exception_path_leak_flagged(self):
        assert lint(
            ResourceLifetimeRule(),
            """\
            def publish(name):
                seg = SharedMemory(name)
                fill(name)
                seg.close()
            """,
        ) == [("RPR010", 2)]

    def test_bare_acquire_without_finally_flagged(self):
        assert lint(
            ResourceLifetimeRule(),
            """\
            def locked(self):
                self._lock.acquire()
                work(self)
                self._lock.release()
            """,
        ) == [("RPR010", 2)]

    def test_finally_release_passes(self):
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def publish(shape):
                    lease = ShmLease(shape)
                    try:
                        fill(shape)
                    finally:
                        lease.release()
                """,
            )
            == []
        )

    def test_with_statement_passes(self):
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def locked(self):
                    with self._lock:
                        work(self)
                """,
            )
            == []
        )

    def test_returned_resource_is_ownership_transfer(self):
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def open_lease(shape):
                    lease = ShmLease(shape)
                    return lease
                """,
            )
            == []
        )

    def test_handoff_counts_as_release(self):
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def publish(shape):
                    lease = ShmLease(shape)
                    try:
                        fill(shape)
                    finally:
                        lease.handoff()
                """,
            )
            == []
        )

    def test_constructor_failure_path_not_a_leak(self):
        # The exception edge out of the acquisition itself means nothing
        # was acquired; only the *normal* successors must release.
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def publish(shape):
                    lease = ShmLease(shape)
                    lease.release()
                """,
            )
            == []
        )

    def test_outside_library_prefix_silent(self):
        assert (
            lint(
                ResourceLifetimeRule(),
                """\
                def publish(shape):
                    lease = ShmLease(shape)
                    return None
                """,
                rel="tests/test_x.py",
            )
            == []
        )


class TestContextTokenRule:
    def test_unreset_token_flagged(self):
        assert lint(
            ContextTokenRule(),
            """\
            from contextvars import ContextVar

            LIMITS = ContextVar("limits")

            def apply(ctx, fast):
                token = LIMITS.set(ctx)
                if fast:
                    return None
                LIMITS.reset(token)
            """,
        ) == [("RPR011", 6)]

    def test_discarded_token_flagged(self):
        assert lint(
            ContextTokenRule(),
            """\
            from contextvars import ContextVar

            LIMITS = ContextVar("limits")

            def apply(ctx):
                LIMITS.set(ctx)
            """,
        ) == [("RPR011", 6)]

    def test_finally_reset_passes(self):
        assert (
            lint(
                ContextTokenRule(),
                """\
                from contextvars import ContextVar

                LIMITS = ContextVar("limits")

                def apply(ctx):
                    token = LIMITS.set(ctx)
                    try:
                        work()
                    finally:
                        LIMITS.reset(token)
                """,
            )
            == []
        )

    def test_returned_token_is_ownership_transfer(self):
        assert (
            lint(
                ContextTokenRule(),
                """\
                from contextvars import ContextVar

                LIMITS = ContextVar("limits")

                def enter(ctx):
                    token = LIMITS.set(ctx)
                    return token
                """,
            )
            == []
        )

    def test_non_contextvar_set_ignored(self):
        assert (
            lint(
                ContextTokenRule(),
                """\
                from contextvars import ContextVar

                LIMITS = ContextVar("limits")

                def store(bag, value):
                    bag.set(value)
                """,
            )
            == []
        )
