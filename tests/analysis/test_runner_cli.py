"""The lint driver and the ``hetesim lint`` CLI surface.

Covers file discovery, RPR000 syntax reporting, baseline wiring,
both report formats, and the exit-code contract CI relies on
(0 clean / 1 unbaselined findings / 2 analysis errors).
"""

import json

import pytest

from repro.analysis import run_lint, render_json, render_text
from repro.cli import main

CLEAN = "def f():\n    return 1\n"
VIOLATION = "def f(m):\n    return m.toarray()\n"


def test_run_lint_clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN)
    result = run_lint([tmp_path], root=tmp_path)
    assert result.ok
    assert result.files_checked == 1
    assert result.findings == []


def test_run_lint_finds_violation_with_relative_path(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bad.py").write_text(VIOLATION)
    result = run_lint([tmp_path], root=tmp_path)
    assert not result.ok
    assert [(f.rule, f.path, f.line) for f in result.findings] == [
        ("RPR001", "pkg/bad.py", 2)
    ]


def test_syntax_error_reported_as_rpr000(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    result = run_lint([tmp_path], root=tmp_path)
    assert [f.rule for f in result.findings] == ["RPR000"]
    assert result.files_checked == 1


def test_duplicate_paths_deduplicated(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN)
    result = run_lint([tmp_path, tmp_path / "ok.py"], root=tmp_path)
    assert result.files_checked == 1


def test_render_text_and_json_agree(tmp_path):
    (tmp_path / "bad.py").write_text(VIOLATION)
    result = run_lint([tmp_path], root=tmp_path)
    text = render_text(result)
    assert "bad.py:2: RPR001 error:" in text
    assert "1 finding(s), 0 baselined, 1 file(s) checked" in text
    payload = json.loads(render_json(result))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "RPR001"
    assert payload["findings"][0]["line"] == 2


class TestCliLint:
    def run(self, *argv):
        return main(["lint", *argv])

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert self.run(str(tmp_path)) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        assert self.run(str(tmp_path)) == 1
        assert "RPR001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        assert self.run(str(tmp_path), "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RPR001"

    def test_baseline_suppresses(self, tmp_path, capsys):
        # Entry paths are relative to the baseline file's directory.
        (tmp_path / "bad.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            "[[suppression]]\n"
            'rule = "RPR001"\n'
            'path = "bad.py"\n'
            'reason = "fixture"\n'
        )
        assert (
            self.run(str(tmp_path), "--baseline", str(baseline)) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_overrides(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            "[[suppression]]\n"
            'rule = "RPR001"\n'
            'path = "bad.py"\n'
            'reason = "fixture"\n'
        )
        assert (
            self.run(
                str(tmp_path), "--baseline", str(baseline), "--no-baseline"
            )
            == 1
        )

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.toml"
        assert (
            self.run(
                str(tmp_path), "--baseline", str(baseline), "--write-baseline"
            )
            == 0
        )
        assert baseline.is_file()
        capsys.readouterr()
        assert self.run(str(tmp_path), "--baseline", str(baseline)) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            '[[suppression]]\nrule = "RPR001"\npath = "x.py"\n'
        )  # no reason
        assert self.run(str(tmp_path), "--baseline", str(baseline)) == 2
        assert "error:" in capsys.readouterr().err


MIXED = (
    "def f(m, x):\n"
    "    if x == 0.1:\n"
    "        return m.toarray()\n"
    "    return None\n"
)  # RPR006 at line 2, RPR001 at line 3


class TestRuleFilters:
    def test_select_keeps_only_named_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(MIXED)
        result = run_lint([tmp_path], root=tmp_path, select={"RPR001"})
        assert [f.rule for f in result.findings] == ["RPR001"]

    def test_ignore_drops_named_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(MIXED)
        result = run_lint([tmp_path], root=tmp_path, ignore={"RPR001"})
        assert "RPR001" not in {f.rule for f in result.findings}
        assert "RPR006" in {f.rule for f in result.findings}

    def test_unknown_rule_id_is_an_analysis_error(self, tmp_path):
        from repro.hin.errors import AnalysisError

        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(AnalysisError, match="RPR999"):
            run_lint([tmp_path], root=tmp_path, select={"RPR999"})
        with pytest.raises(AnalysisError, match="bogus"):
            run_lint([tmp_path], root=tmp_path, ignore={"bogus"})

    def test_syntax_rule_respects_filters(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        selected = run_lint([tmp_path], root=tmp_path, select={"RPR000"})
        assert [f.rule for f in selected.findings] == ["RPR000"]
        filtered = run_lint([tmp_path], root=tmp_path, select={"RPR001"})
        assert filtered.findings == []
        ignored = run_lint([tmp_path], root=tmp_path, ignore={"RPR000"})
        assert ignored.findings == []

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(MIXED)
        assert main(
            ["lint", str(tmp_path), "--select", "RPR001"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR006" not in out
        assert main(
            ["lint", str(tmp_path), "--ignore", "RPR001,RPR006"]
        ) == 0

    def test_cli_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path), "--select", "RPR999"]) == 2
        assert "RPR999" in capsys.readouterr().err


class TestProjectPass:
    def test_project_rules_fire_through_run_lint(self, tmp_path):
        # A src/repro layout inside the lint root so module names
        # resolve; hin importing core is an upward layer violation.
        pkg = tmp_path / "src" / "repro"
        (pkg / "hin").mkdir(parents=True)
        (pkg / "core").mkdir()
        (pkg / "hin" / "graph.py").write_text(
            "from repro.core.engine import HeteSimEngine\n"
        )
        (pkg / "core" / "engine.py").write_text(
            "class HeteSimEngine:\n    pass\n"
        )
        result = run_lint([tmp_path], root=tmp_path)
        layering = [f for f in result.findings if f.rule == "RPR013"]
        assert [(f.path, f.line) for f in layering] == [
            ("src/repro/hin/graph.py", 1)
        ]

    def test_select_filters_project_rules_too(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        (pkg / "hin").mkdir(parents=True)
        (pkg / "hin" / "graph.py").write_text(
            "from repro.serve.dispatch import Dispatcher\n"
        )
        result = run_lint([tmp_path], root=tmp_path, select={"RPR001"})
        assert result.findings == []
        result = run_lint([tmp_path], root=tmp_path, select={"RPR013"})
        assert [f.rule for f in result.findings] == ["RPR013"]

    def test_write_baseline_preserves_reviewed_reasons_end_to_end(
        self, tmp_path, capsys
    ):
        (tmp_path / "bad.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.toml"
        assert main(
            ["lint", str(tmp_path), "--baseline", str(baseline),
             "--write-baseline"]
        ) == 0
        content = baseline.read_text()
        assert "unreviewed:" in content
        baseline.write_text(
            content.replace(
                'reason = "unreviewed: generated by --write-baseline; '
                'replace with a real justification"',
                'reason = "reviewed: row-level densify only"',
            )
        )
        assert main(
            ["lint", str(tmp_path), "--baseline", str(baseline),
             "--write-baseline"]
        ) == 0
        assert "reviewed: row-level densify only" in baseline.read_text()
