"""Dataflow framework: reaching definitions and the must-pass analysis."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    all_paths_hit,
    node_contains_call,
    reaching_definitions,
)


def parsed(source):
    code = textwrap.dedent(source)
    func = ast.parse(code).body[0]
    return func, build_cfg(func)


def releases(name="release"):
    def satisfies(node):
        return node_contains_call(
            node,
            lambda call: isinstance(call.func, ast.Attribute)
            and call.func.attr == name,
        )

    return satisfies


class TestReachingDefinitions:
    def test_branch_merge_keeps_both_definitions(self):
        func, cfg = parsed(
            """\
            def f(c):
                x = 1
                if c:
                    x = 2
                use(x)
            """
        )
        use = cfg.node_for(func.body[2])
        incoming = reaching_definitions(cfg)[use.index]
        x_defs = {node for name, node in incoming if name == "x"}
        assert len(x_defs) == 2  # line 2 and line 4 both reach the use

    def test_rebinding_kills_the_old_definition(self):
        func, cfg = parsed(
            """\
            def f():
                x = 1
                x = 2
                use(x)
            """
        )
        use = cfg.node_for(func.body[2])
        second = cfg.node_for(func.body[1])
        incoming = reaching_definitions(cfg)[use.index]
        assert {n for name, n in incoming if name == "x"} == {second.index}

    def test_loop_definition_reaches_header(self):
        func, cfg = parsed(
            """\
            def f(items):
                total = 0
                for item in items:
                    total = step(total, item)
                return total
            """
        )
        header = cfg.node_for(func.body[1])
        incoming = reaching_definitions(cfg)[header.index]
        total_defs = {n for name, n in incoming if name == "total"}
        assert len(total_defs) == 2  # init before the loop + the back edge

    def test_with_and_except_bind_names(self):
        func, cfg = parsed(
            """\
            def f():
                try:
                    with open("p") as handle:
                        use(handle)
                except OSError as err:
                    log(err)
            """
        )
        with_stmt = func.body[0].body[0]
        use = cfg.node_for(with_stmt.body[0])
        incoming = reaching_definitions(cfg)[use.index]
        assert "handle" in {name for name, _ in incoming}
        handler = func.body[0].handlers[0]
        log = cfg.node_for(handler.body[0])
        incoming = reaching_definitions(cfg)[log.index]
        assert "err" in {name for name, _ in incoming}


class TestAllPathsHit:
    def test_release_on_every_branch_is_must(self):
        func, cfg = parsed(
            """\
            def f(c):
                lease = acquire()
                if c:
                    lease.release()
                else:
                    lease.release()
            """
        )
        acq = cfg.node_for(func.body[0])
        hit = all_paths_hit(cfg, releases())
        assert all(hit[s.index] for s in cfg.successors(acq, "normal"))

    def test_release_on_one_branch_is_not(self):
        func, cfg = parsed(
            """\
            def f(c):
                lease = acquire()
                if c:
                    lease.release()
            """
        )
        acq = cfg.node_for(func.body[0])
        hit = all_paths_hit(cfg, releases())
        assert not all(hit[s.index] for s in cfg.successors(acq, "normal"))

    def test_finally_release_covers_the_raising_path(self):
        func, cfg = parsed(
            """\
            def f():
                lease = acquire()
                try:
                    risky(lease)
                finally:
                    lease.release()
            """
        )
        acq = cfg.node_for(func.body[0])
        hit = all_paths_hit(cfg, releases())
        assert all(hit[s.index] for s in cfg.successors(acq, "normal"))

    def test_early_return_before_release_breaks_must(self):
        func, cfg = parsed(
            """\
            def f(c):
                lease = acquire()
                if c:
                    return None
                lease.release()
            """
        )
        acq = cfg.node_for(func.body[0])
        hit = all_paths_hit(cfg, releases())
        assert not all(hit[s.index] for s in cfg.successors(acq, "normal"))

    def test_loop_whose_every_escape_releases_stays_true(self):
        func, cfg = parsed(
            """\
            def f(items):
                lease = acquire()
                for item in items:
                    consume(item)
                lease.release()
            """
        )
        acq = cfg.node_for(func.body[0])
        hit = all_paths_hit(cfg, releases())
        # consume() raising escapes without release, so the must fails
        # through the exception edge -- but restricting the predicate
        # view to the loop's normal structure, the header must be True
        # only if every escape releases; here the exception edge breaks
        # it.  Assert both facts explicitly.
        header = cfg.node_for(func.body[1])
        assert not hit[header.index]
        assert not all(hit[s.index] for s in cfg.successors(acq, "normal"))

    def test_satisfying_node_answers_true_inclusively(self):
        func, cfg = parsed(
            """\
            def f():
                lease = acquire()
                lease.release()
            """
        )
        release = cfg.node_for(func.body[1])
        hit = all_paths_hit(cfg, releases())
        assert hit[release.index]
        assert not hit[cfg.exit.index]
        assert not hit[cfg.raise_exit.index]


class TestNodeContainsCall:
    def test_matches_only_owned_expressions(self):
        func, cfg = parsed(
            """\
            def f(c):
                if probe(c):
                    probe(1)
            """
        )
        if_node = cfg.node_for(func.body[0])
        is_probe = lambda call: (
            isinstance(call.func, ast.Name) and call.func.id == "probe"
        )
        assert node_contains_call(if_node, is_probe)
        assert not node_contains_call(cfg.entry, is_probe)
