"""CFG construction: hand-drawn expected edge sets for the tricky shapes.

Every test builds a small function, draws its control-flow graph by
hand as ``(src_label, dst_label, kind)`` triples, and asserts exact
set equality against :meth:`CFG.edges` -- no "contains" assertions, so
a phantom edge regression or a lost edge both fail loudly.
"""

import ast
import textwrap

from repro.analysis.cfg import (
    EDGE_EXCEPTION,
    EDGE_NORMAL,
    build_cfg,
    may_raise,
    statement_expressions,
)

N = EDGE_NORMAL
X = EDGE_EXCEPTION


def cfg_for(source):
    code = textwrap.dedent(source)
    func = ast.parse(code).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


class TestStraightLine:
    def test_two_statements(self):
        cfg = cfg_for(
            """\
            def f():
                a = 1
                b = use(a)
            """
        )
        assert cfg.edges() == {
            ("entry", "Assign@2", N),
            ("Assign@2", "Assign@3", N),
            ("Assign@3", "raise_exit", X),  # use(a) may raise
            ("Assign@3", "exit", N),
        }

    def test_if_else_diamond(self):
        cfg = cfg_for(
            """\
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        assert cfg.edges() == {
            ("entry", "If@2", N),
            ("If@2", "Assign@3", N),
            ("If@2", "Assign@5", N),
            ("Assign@3", "Return@6", N),
            ("Assign@5", "Return@6", N),
            ("Return@6", "exit", N),
        }


class TestNestedFinallyWithReturn:
    """A ``return`` unwinds through *both* finallies, innermost first."""

    SOURCE = """\
        def f():
            try:
                try:
                    return 1
                finally:
                    inner()
            finally:
                outer()
        """

    def test_hand_drawn_edges(self):
        cfg = cfg_for(self.SOURCE)
        assert cfg.edges() == {
            # the return reaches exit only through inner then outer finally
            ("entry", "Return@4", N),
            ("Return@4", "Finally@6", N),
            ("Finally@6", "Expr@6", N),
            ("Expr@6", "FinallyExit@6", N),
            ("FinallyExit@6", "Finally@8", N),
            ("Finally@8", "Expr@8", N),
            ("Expr@8", "FinallyExit@8", N),
            ("FinallyExit@8", "exit", N),
            # inner() raising propagates into the *outer* finally, not
            # back into its own; outer() raising escapes the function
            ("Expr@6", "Finally@8", X),
            ("FinallyExit@8", "raise_exit", X),
            ("Expr@8", "raise_exit", X),
        }

    def test_no_shortcut_to_exit(self):
        # The property the edge set encodes: no edge reaches exit
        # without coming from the outer finally's exit node.
        cfg = cfg_for(self.SOURCE)
        into_exit = {src for src, dst, _ in cfg.edges() if dst == "exit"}
        assert into_exit == {"FinallyExit@8"}


class TestWithMultipleManagers:
    """One ``with`` node owns every manager; one WithExit guards the body."""

    SOURCE = """\
        def f():
            with open("a") as a, open("b") as b:
                use(a, b)
        """

    def test_hand_drawn_edges(self):
        cfg = cfg_for(self.SOURCE)
        assert cfg.edges() == {
            ("entry", "With@2", N),
            # a manager constructor failing: __exit__ never runs
            ("With@2", "raise_exit", X),
            ("With@2", "Expr@3", N),
            # the body raising still passes through __exit__
            ("Expr@3", "WithExit@2", N),
            ("Expr@3", "WithExit@2", X),
            ("WithExit@2", "exit", N),
            ("WithExit@2", "raise_exit", X),
        }

    def test_header_owns_both_context_expressions(self):
        code = textwrap.dedent(self.SOURCE)
        with_stmt = ast.parse(code).body[0].body[0]
        exprs = statement_expressions(with_stmt)
        assert len(exprs) == 2
        assert all(isinstance(expr, ast.Call) for expr in exprs)
        assert may_raise(with_stmt)


class TestWhileElse:
    """``else`` runs only on normal exhaustion; ``break`` skips it."""

    SOURCE = """\
        def f():
            while cond():
                if stop():
                    break
                step()
            else:
                tail()
            done()
        """

    def test_hand_drawn_edges(self):
        cfg = cfg_for(self.SOURCE)
        assert cfg.edges() == {
            ("entry", "While@2", N),
            ("While@2", "raise_exit", X),
            ("While@2", "If@3", N),
            ("If@3", "raise_exit", X),
            ("If@3", "Break@4", N),
            ("If@3", "Expr@5", N),
            ("Expr@5", "raise_exit", X),
            ("Expr@5", "While@2", N),  # back edge
            ("While@2", "Expr@7", N),  # exhaustion -> else
            ("Expr@7", "raise_exit", X),
            ("Expr@7", "Expr@8", N),  # else falls through to done()
            ("Break@4", "Expr@8", N),  # break jumps PAST the else
            ("Expr@8", "raise_exit", X),
            ("Expr@8", "exit", N),
        }

    def test_break_does_not_reach_else(self):
        cfg = cfg_for(self.SOURCE)
        assert ("Break@4", "Expr@7", N) not in cfg.edges()


class TestBareRaiseInExcept:
    """A bare ``raise`` re-raise ends the handler: no normal fallthrough."""

    SOURCE = """\
        def f():
            try:
                risky()
            except ValueError:
                log()
                raise
            done()
        """

    def test_hand_drawn_edges(self):
        cfg = cfg_for(self.SOURCE)
        assert cfg.edges() == {
            ("entry", "Expr@3", N),
            # risky() raising: maybe the handler matches, maybe not
            ("Expr@3", "ExceptHandler@4", X),
            ("Expr@3", "raise_exit", X),
            ("Expr@3", "Expr@7", N),
            ("ExceptHandler@4", "Expr@5", N),
            ("Expr@5", "raise_exit", X),
            ("Expr@5", "Raise@6", N),
            ("Raise@6", "raise_exit", X),
            ("Expr@7", "raise_exit", X),
            ("Expr@7", "exit", N),
        }

    def test_handler_never_falls_through(self):
        cfg = cfg_for(self.SOURCE)
        sources_of_done = {
            src for src, dst, _ in cfg.edges() if dst == "Expr@7"
        }
        assert sources_of_done == {"Expr@3"}


class TestCatchAllStopsPropagation:
    def test_bare_except_consumes_the_exception(self):
        cfg = cfg_for(
            """\
            def f():
                try:
                    risky()
                except Exception:
                    fallback()
            """
        )
        assert cfg.edges() == {
            ("entry", "Expr@3", N),
            ("Expr@3", "ExceptHandler@4", X),
            ("Expr@3", "exit", N),
            ("ExceptHandler@4", "Expr@5", N),
            ("Expr@5", "raise_exit", X),
            ("Expr@5", "exit", N),
        }
        # crucially absent: ("Expr@3", "raise_exit", X)


class TestLabelsAndHeaders:
    def test_duplicate_labels_disambiguated(self):
        cfg = cfg_for(
            """\
            def f(c):
                if c: a()
                else: b()
            """
        )
        labels = {node.label for node in cfg.nodes}
        assert "Expr@2" in labels and "Expr@3" in labels

    def test_node_for_finds_statement_headers(self):
        code = textwrap.dedent(
            """\
            def f():
                x = 1
                return x
            """
        )
        func = ast.parse(code).body[0]
        cfg = build_cfg(func)
        assign = func.body[0]
        assert cfg.node_for(assign).label == "Assign@2"
        assert cfg.node_for(func) is None

    def test_may_raise_approximation(self):
        def stmt(src):
            return ast.parse(textwrap.dedent(src)).body[0]

        assert may_raise(stmt("raise ValueError()"))
        assert may_raise(stmt("assert x"))
        assert may_raise(stmt("x = f()"))
        assert not may_raise(stmt("x = y + 1"))  # documented approximation
        assert not may_raise(stmt("x = obj.attr"))
