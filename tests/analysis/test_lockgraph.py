"""Fixture tests for RPR004: lock discipline and lock-order cycles.

The snippets exercise each part of the model separately: detection of
lock-disciplined classes, unlocked-mutation flagging, guaranteed-held
propagation into private helpers, nested-callable resets, and the
whole-project acquisition-graph cycle report.
"""

import ast
import textwrap

from repro.analysis import LockDisciplineRule
from repro.analysis.core import SourceFile


def lint(source, rel="src/repro/example.py", rule=None):
    """RPR004 findings (check + finalize) over one snippet."""
    rule = rule or LockDisciplineRule()
    code = textwrap.dedent(source)
    file = SourceFile(None, rel, code, ast.parse(code))
    return list(rule.check(file)) + list(rule.finalize())


LOCKED_CLASS = """\
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        return self._entries.get(key)
"""


class TestMutationDiscipline:
    def test_clean_class_silent(self):
        assert lint(LOCKED_CLASS) == []

    def test_unlocked_assignment_flagged_with_line(self):
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR004", 10)]
        assert "self._entries" in findings[0].message

    def test_unlocked_mutating_call_flagged(self):
        findings = lint(
            """\
            import threading


            class Log:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    self._items.append(item)
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR004", 10)]

    def test_init_exempt(self):
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._entries["warm"] = 1
            """
        )
        assert findings == []

    def test_public_attribute_not_tracked(self):
        findings = lint(
            """\
            import threading


            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    self.count = 1
            """
        )
        assert findings == []

    def test_undisciplined_class_ignored(self):
        findings = lint(
            """\
            class Plain:
                def put(self, key, value):
                    self._entries[key] = value
            """
        )
        assert findings == []

    def test_thread_safe_docstring_opts_in(self):
        findings = lint(
            '''\
            class Shared:
                """A thread-safe registry (lock managed externally)."""

                def put(self, key, value):
                    self._entries[key] = value
            '''
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR004", 5)]


class TestGuaranteedHeld:
    def test_private_helper_called_under_lock_is_clean(self):
        # The freshest_prefix() -> _touch() pattern: the helper mutates
        # without a lexical with-block, but its only caller holds the
        # lock, so the fixpoint proves it safe.
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._order = []

                def touch(self, key):
                    with self._lock:
                        self._touch(key)

                def _touch(self, key):
                    self._order.append(key)
            """
        )
        assert findings == []

    def test_helper_with_one_unlocked_caller_flagged(self):
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._order = []

                def touch(self, key):
                    with self._lock:
                        self._touch(key)

                def sloppy(self, key):
                    self._touch(key)

                def _touch(self, key):
                    self._order.append(key)
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR004", 17)]

    def test_nested_callable_loses_lock(self):
        # A closure may run later on another thread; the held set must
        # not leak into it.
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def deferred(self, key, value):
                    with self._lock:
                        def write():
                            self._entries[key] = value
                        return write
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR004", 12)]


class TestLockOrderCycles:
    def test_abba_cycle_reported(self):
        findings = lint(
            """\
            import threading


            class Transfer:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        cycles = [f for f in findings if "lock-order cycle" in f.message]
        assert len(cycles) == 1
        assert cycles[0].rule == "RPR004"
        assert "Transfer._a" in cycles[0].message
        assert "Transfer._b" in cycles[0].message

    def test_consistent_order_silent(self):
        findings = lint(
            """\
            import threading


            class Transfer:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )
        assert findings == []

    def test_cycle_through_callee_detected(self):
        # forward holds _a and calls a helper that acquires _b;
        # backward does the opposite -- the edge must flow through the
        # intra-class call graph.
        findings = lint(
            """\
            import threading


            class Transfer:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._grab_b()

                def _grab_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        cycles = [f for f in findings if "lock-order cycle" in f.message]
        assert len(cycles) == 1

    def test_reentrant_acquisition_not_a_cycle(self):
        findings = lint(
            """\
            import threading


            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert findings == []
