"""Fixture tests for RPR007: paired-state atomicity.

The positive fixture is (a reduction of) the actual stale-halves bug
PR 5 fixed in :class:`~repro.core.engine.HeteSimEngine`: an unlocked
fast path reading a cached value from one ``_``-dict and validating it
against a signature read from a *second* ``_``-dict with the same key.
The negative fixtures pin down every escape hatch: the fused-entry fix,
lock-held access, distinct keys, guaranteed-held private helpers, and
classes outside the lock-disciplined set.
"""

import ast
import textwrap

from repro.analysis import PairedStateRule
from repro.analysis.core import SourceFile


def lint(source, rel="src/repro/example.py"):
    """RPR007 findings over one snippet."""
    rule = PairedStateRule()
    code = textwrap.dedent(source)
    file = SourceFile(None, rel, code, ast.parse(code))
    return list(rule.check(file)) + list(rule.finalize())


# The pre-fix HeteSimEngine.halves() fast path, reduced: two unlocked
# reads that must be atomic as a pair but are not.
STALE_PAIR = """\
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._halves = {}
        self._half_signatures = {}

    def halves(self, key, signature):
        cached = self._halves.get(key)
        if cached is not None and self._half_signatures.get(key) == signature:
            return cached
        with self._lock:
            self._halves[key] = self._compute(key)
            self._half_signatures[key] = signature
            return self._halves[key]
"""

# The post-fix shape: one dict holding (signature, value) entries, so a
# single GIL-atomic read yields a consistent pair.
FUSED_ENTRY = """\
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._halves = {}

    def halves(self, key, signature):
        entry = self._halves.get(key)
        if entry is not None and entry[0] == signature:
            return entry[1]
        with self._lock:
            entry = self._halves.get(key)
            if entry is not None and entry[0] == signature:
                return entry[1]
            result = self._compute(key)
            self._halves[key] = (signature, result)
            return result
"""


class TestPairedReads:
    def test_stale_pair_fast_path_flagged(self):
        findings = lint(STALE_PAIR)
        assert [f.rule for f in findings] == ["RPR007"]
        finding = findings[0]
        assert finding.severity == "error"
        assert finding.line == 12
        assert "self._half_signatures" in finding.message
        assert "self._halves" in finding.message
        assert "not atomic" in finding.message

    def test_fused_entry_fix_is_clean(self):
        assert lint(FUSED_ENTRY) == []

    def test_unlocked_read_write_pair_flagged(self):
        # A write to one dict paired with an unlocked read of its twin
        # is the same hazard from the producer side.
        findings = lint(
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._values = {}
                    self._stamps = {}

                def put(self, key, value, stamp):
                    self._values[key] = value
                    self._stamps[key] = stamp
            """
        )
        # RPR007 fires on the same-key pair (RPR004 would separately
        # flag the unlocked mutations; this rule only reports pairing).
        assert [f.rule for f in findings] == ["RPR007"]
        assert findings[0].line == 12


class TestEscapeHatches:
    def test_pair_under_lock_is_clean(self):
        findings = lint(
            """\
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._halves = {}
                    self._half_signatures = {}

                def halves(self, key, signature):
                    with self._lock:
                        cached = self._halves.get(key)
                        if self._half_signatures.get(key) == signature:
                            return cached
            """
        )
        assert findings == []

    def test_distinct_keys_are_clean(self):
        findings = lint(
            """\
            import threading


            class Router:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._left = {}
                    self._right = {}

                def route(self, a, b):
                    return self._left.get(a), self._right.get(b)
            """
        )
        assert findings == []

    def test_guaranteed_held_helper_is_clean(self):
        # A private helper whose only caller holds the lock inherits the
        # guarantee -- shared fixpoint with RPR004.
        findings = lint(
            """\
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._halves = {}
                    self._half_signatures = {}

                def refresh(self, key, signature):
                    with self._lock:
                        self._validate(key, signature)

                def _validate(self, key, signature):
                    cached = self._halves.get(key)
                    return self._half_signatures.get(key) == signature
            """
        )
        assert findings == []

    def test_undisciplined_class_ignored(self):
        # Single-threaded classes pair dicts freely; only classes in the
        # lock-disciplined set (RPR004's notion) are checked.
        findings = lint(
            """\
            class Plain:
                def lookup(self, key):
                    return self._a.get(key), self._b.get(key)
            """
        )
        assert findings == []

    def test_nested_callable_loses_lock(self):
        # A closure built under the lock may run later without it.
        findings = lint(
            """\
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._halves = {}
                    self._half_signatures = {}

                def deferred(self, key, signature):
                    with self._lock:
                        def check():
                            cached = self._halves.get(key)
                            sig = self._half_signatures.get(key)
                            return cached, sig
                        return check
            """
        )
        assert [f.rule for f in findings] == ["RPR007"]
