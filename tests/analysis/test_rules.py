"""Fixture-driven tests for the local rule pack (RPR001-003, 005, 006, 008, 009).

Each rule gets at least one *bad* snippet (asserting the exact rule id
and line) and one *good* snippet (asserting silence), so every rule is
proven to both fire and not over-fire.
"""

import ast
import textwrap

import pytest

from repro.analysis import (
    ContextPropagationRule,
    DensifyRule,
    FloatEqualityRule,
    MaterialiseImportRule,
    NondeterminismRule,
    SharedMemoryLeaseRule,
    TypedErrorRule,
)
from repro.analysis.core import SourceFile


def lint(rule, source, rel="src/repro/example.py"):
    """Findings of one rule over one in-memory snippet."""
    code = textwrap.dedent(source)
    file = SourceFile(None, rel, code, ast.parse(code))
    return list(rule.check(file)) + list(rule.finalize())


class TestDensifyRule:
    def test_toarray_flagged_with_line(self):
        findings = lint(
            DensifyRule(),
            """\
            def score(matrix):
                rows = matrix.sum(axis=1)
                return matrix.toarray()
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR001", 3)]

    def test_todense_flagged(self):
        findings = lint(DensifyRule(), "x = m.todense()\n")
        assert [(f.rule, f.line) for f in findings] == [("RPR001", 1)]

    def test_allowed_file_silent(self):
        findings = lint(
            DensifyRule(),
            "x = m.toarray()\n",
            rel="src/repro/core/backend.py",
        )
        assert findings == []

    def test_sparse_ops_silent(self):
        findings = lint(
            DensifyRule(),
            """\
            def chain(a, b):
                return (a @ b).tocsr()
            """,
        )
        assert findings == []


class TestTypedErrorRule:
    def test_bare_valueerror_flagged(self):
        findings = lint(
            TypedErrorRule(),
            """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR002", 3)]

    @pytest.mark.parametrize(
        "name", ["RuntimeError", "KeyError", "TypeError", "IndexError", "Exception"]
    )
    def test_each_forbidden_builtin(self, name):
        findings = lint(TypedErrorRule(), f"raise {name}('x')\n")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_repro_error_allowed(self):
        findings = lint(
            TypedErrorRule(),
            """\
            from repro.hin.errors import QueryError

            def f():
                raise QueryError("bad direction")
            """,
        )
        assert findings == []

    def test_bare_reraise_allowed(self):
        findings = lint(
            TypedErrorRule(),
            """\
            def f():
                try:
                    g()
                except Exception:
                    raise
            """,
        )
        assert findings == []

    def test_non_library_file_silent(self):
        findings = lint(
            TypedErrorRule(),
            "raise ValueError('tests may raise anything')\n",
            rel="tests/test_x.py",
        )
        assert findings == []

    def test_assertion_error_allowed(self):
        findings = lint(
            TypedErrorRule(), "raise AssertionError('invariant')\n"
        )
        assert findings == []


class TestNondeterminismRule:
    def test_seedless_default_rng_flagged(self):
        findings = lint(
            NondeterminismRule(),
            """\
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR003", 2)]

    def test_seeded_default_rng_allowed(self):
        findings = lint(
            NondeterminismRule(),
            "rng = np.random.default_rng(42)\n",
        )
        assert findings == []

    def test_global_random_flagged(self):
        findings = lint(
            NondeterminismRule(),
            """\
            import random
            x = random.random()
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR003", 2)]

    def test_seeded_random_instance_allowed(self):
        findings = lint(
            NondeterminismRule(),
            """\
            import random
            rng = random.Random(7)
            """,
        )
        assert findings == []

    def test_time_time_flagged(self):
        findings = lint(
            NondeterminismRule(),
            """\
            import time
            start = time.time()
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR003", 2)]

    def test_monotonic_allowed(self):
        findings = lint(
            NondeterminismRule(),
            """\
            import time
            start = time.perf_counter()
            elapsed = time.monotonic()
            """,
        )
        assert findings == []

    def test_allowed_file_silent(self):
        findings = lint(
            NondeterminismRule(),
            "import time\nnow = time.time()\n",
            rel="src/repro/runtime/limits.py",
        )
        assert findings == []


class TestContextPropagationRule:
    def test_pool_without_adopt_context_flagged(self):
        findings = lint(
            ContextPropagationRule(),
            """\
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(tasks):
                with ThreadPoolExecutor(4) as pool:
                    return list(pool.map(run, tasks))
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR005", 4)]

    def test_pool_with_adopt_context_allowed(self):
        findings = lint(
            ContextPropagationRule(),
            """\
            from concurrent.futures import ThreadPoolExecutor
            from repro.runtime.limits import adopt_context

            def fan_out(tasks):
                wrapped = [adopt_context(t) for t in tasks]
                with ThreadPoolExecutor(4) as pool:
                    return list(pool.map(lambda t: t(), wrapped))
            """,
        )
        assert findings == []


class TestFloatEqualityRule:
    def test_float_eq_flagged(self):
        findings = lint(
            FloatEqualityRule(),
            """\
            def is_exact(mass):
                return mass == 0.0
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR006", 2)]

    def test_float_noteq_flagged(self):
        findings = lint(FloatEqualityRule(), "ok = x != 1.5\n")
        assert [f.rule for f in findings] == ["RPR006"]

    def test_negative_float_literal_flagged(self):
        findings = lint(FloatEqualityRule(), "ok = x == -1.0\n")
        assert [f.rule for f in findings] == ["RPR006"]

    def test_integer_eq_allowed(self):
        findings = lint(FloatEqualityRule(), "ok = count == 0\n")
        assert findings == []

    def test_ordering_against_float_allowed(self):
        findings = lint(FloatEqualityRule(), "ok = mass <= 0.0\n")
        assert findings == []

    def test_isclose_pattern_allowed(self):
        findings = lint(
            FloatEqualityRule(),
            """\
            import math
            ok = mass <= 0.0 or math.isclose(mass, 0.0, abs_tol=1e-12)
            """,
        )
        assert findings == []


class TestMaterialiseImportRule:
    def test_import_outside_core_flagged_with_line(self):
        findings = lint(
            MaterialiseImportRule(),
            """\
            import numpy as np
            from repro.core.backend import materialise

            def score(graph, path):
                return materialise(graph, path)
            """,
            rel="src/repro/baselines/example.py",
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR008", 2)]
        assert "MeasureContext" in findings[0].message

    def test_relative_import_outside_core_flagged(self):
        findings = lint(
            MaterialiseImportRule(),
            "from ..core.backend import materialise\n",
            rel="src/repro/serve/example.py",
        )
        assert [f.rule for f in findings] == ["RPR008"]

    def test_core_file_allowed(self):
        findings = lint(
            MaterialiseImportRule(),
            "from ..backend import materialise\n",
            rel="src/repro/core/measures/example.py",
        )
        assert findings == []

    def test_other_names_from_backend_allowed(self):
        findings = lint(
            MaterialiseImportRule(),
            "from repro.core.backend import plan_chain\n",
            rel="src/repro/baselines/example.py",
        )
        assert findings == []

    def test_non_library_file_silent(self):
        findings = lint(
            MaterialiseImportRule(),
            "from repro.core.backend import materialise\n",
            rel="tests/test_x.py",
        )
        assert findings == []


class TestSharedMemoryLeaseRule:
    def test_bare_construction_flagged_with_line(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing import shared_memory

            def publish(nbytes):
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                return segment.name
            """,
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR009", 4)]
        assert "ShmLease" in findings[0].message

    def test_unassigned_attach_flagged(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                return SharedMemory(name=name).buf[0]
            """,
        )
        assert [f.rule for f in findings] == ["RPR009"]

    def test_adopt_guard_call_allowed(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing import shared_memory

            def publish(lease, nbytes):
                return lease.adopt(
                    shared_memory.SharedMemory(create=True, size=nbytes)
                )
            """,
        )
        assert findings == []

    def test_bound_name_later_adopted_allowed(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing import shared_memory

            def open_segment(name, lease):
                segment = shared_memory.SharedMemory(name=name)
                return lease.adopt(segment)
            """,
        )
        assert findings == []

    def test_finally_close_allowed(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def read(name):
                segment = SharedMemory(name=name)
                try:
                    return bytes(segment.buf)
                finally:
                    segment.close()
            """,
        )
        assert findings == []

    def test_finally_unlink_allowed(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def destroy(name):
                segment = SharedMemory(name=name)
                try:
                    segment.close()
                finally:
                    segment.unlink()
            """,
        )
        assert findings == []

    def test_close_outside_finally_still_flagged(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def read(name):
                segment = SharedMemory(name=name)
                payload = bytes(segment.buf)
                segment.close()
                return payload
            """,
        )
        assert [f.rule for f in findings] == ["RPR009"]

    def test_unrelated_calls_silent(self):
        findings = lint(
            SharedMemoryLeaseRule(),
            """\
            def f(store):
                handle = store.SharedMemoryView()
                return handle
            """,
        )
        assert findings == []
