"""Self-audit: the shipped tree must lint clean against the shipped baseline.

This is the test-suite twin of the blocking CI step: zero unbaselined
findings over ``src/repro`` *and* zero unused baseline entries, so the
baseline can only shrink -- a fixed site whose entry lingers fails the
build until the entry is deleted.
"""

from pathlib import Path

import pytest

from repro.analysis import load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint_baseline.toml"


@pytest.fixture(scope="module")
def audit():
    assert BASELINE.is_file(), "lint_baseline.toml missing from repo root"
    return run_lint(
        [SOURCE], root=REPO_ROOT, baseline=load_baseline(BASELINE)
    )


def test_no_unbaselined_findings(audit):
    formatted = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in audit.findings
    )
    assert audit.ok, (
        "src/repro has unbaselined lint findings; fix them or add a "
        f"justified baseline entry:\n{formatted}"
    )


def test_no_stale_baseline_entries(audit):
    stale = "\n".join(
        f"{entry.rule} {entry.path} ({entry.reason})"
        for entry in audit.unused
    )
    assert not audit.unused, (
        f"stale lint_baseline.toml entries (their sites are fixed -- "
        f"delete them):\n{stale}"
    )


def test_every_baseline_entry_is_justified(audit):
    baseline = load_baseline(BASELINE)
    for entry in baseline.suppressions:
        assert entry.reason.strip(), f"{entry} lacks a justification"
        assert "unreviewed" not in entry.reason, (
            f"{entry.rule} {entry.path}: placeholder --write-baseline "
            "reason was committed; write a real justification"
        )


def test_audit_covered_the_tree(audit):
    # Guards against the audit silently linting an empty directory.
    assert audit.files_checked > 50


def test_project_rules_are_registered_and_ran():
    # The project pass is part of the audit: every project-scoped rule
    # must be in the default pack, so a clean audit really means the
    # cross-module invariants held (not that the rules were dropped).
    from repro.analysis import registered_rules

    assert {"RPR010", "RPR011", "RPR012", "RPR013", "RPR014"} <= set(
        registered_rules()
    )


def test_project_findings_all_baselined(audit):
    # No *unbaselined* project-rule findings; the baselined RPR013
    # entries are the documented core->runtime/serve inversions.
    project_rules = {"RPR010", "RPR011", "RPR012", "RPR013", "RPR014"}
    leaked = [f for f in audit.findings if f.rule in project_rules]
    assert leaked == [], [f.location() for f in leaked]


def test_metrics_catalogue_matches_docs(audit):
    # RPR012 runs unbaselined: the catalogue in docs/observability.md
    # and the registrations in src/repro must agree exactly.
    suppressed_rules = {f.rule for f in audit.suppressed}
    assert "RPR012" not in suppressed_rules
    assert not any(f.rule == "RPR012" for f in audit.findings)
