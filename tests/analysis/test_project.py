"""ProjectContext: module naming, import resolution, indexes, reachability."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.core import SourceFile
from repro.analysis.project import ProjectContext, module_name_for


def source(rel, code):
    text = textwrap.dedent(code)
    return SourceFile(None, rel, text, ast.parse(text))


def project(*files):
    return ProjectContext([source(rel, code) for rel, code in files], Path("."))


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/hin/graph.py") == "repro.hin.graph"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_plain_layout_without_src(self):
        assert module_name_for("tools/check.py") == "tools.check"

    def test_non_python_and_non_identifier_rejected(self):
        assert module_name_for("README.md") is None
        assert module_name_for("src/bench-results/x.py") is None


class TestImportResolution:
    def test_absolute_and_relative_imports(self):
        ctx = project(
            (
                "src/repro/core/engine.py",
                """\
                import os
                from repro.hin import graph
                from .backend import execute_plan
                from ..hin.errors import AnalysisError
                """,
            )
        )
        edges = ctx.modules["repro.core.engine"].imports
        assert [(e.target, e.top_level) for e in edges] == [
            ("os", True),
            ("repro.hin", True),
            ("repro.core.backend", True),
            ("repro.hin.errors", True),
        ]

    def test_package_init_level_one_is_the_package_itself(self):
        # The shape that regressed during development: ``from .core
        # import X`` inside ``repro/analysis/__init__.py`` must resolve
        # to repro.analysis.core, not repro.core.
        ctx = project(
            (
                "src/repro/analysis/__init__.py",
                "from .core import Finding\n",
            )
        )
        edges = ctx.modules["repro.analysis"].imports
        assert [e.target for e in edges] == ["repro.analysis.core"]

    def test_over_deep_relative_import_dropped(self):
        ctx = project(("src/repro/top.py", "from ...nowhere import x\n"))
        assert ctx.modules["repro.top"].imports == []

    def test_lazy_import_tagged(self):
        ctx = project(
            (
                "src/repro/core/engine.py",
                """\
                def warm():
                    from repro.serve.dispatch import Dispatcher
                    return Dispatcher
                """,
            )
        )
        (edge,) = ctx.modules["repro.core.engine"].imports
        assert edge.target == "repro.serve.dispatch"
        assert not edge.top_level

    def test_type_checking_imports_erased(self):
        ctx = project(
            (
                "src/repro/core/a.py",
                """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.serve.dispatch import Dispatcher
                """,
            )
        )
        targets = {e.target for e in ctx.modules["repro.core.a"].imports}
        assert targets == {"typing"}

    def test_bound_names_track_asname(self):
        ctx = project(
            ("src/repro/m.py", "from .base import FAMILY as METRIC\n")
        )
        (edge,) = ctx.modules["repro.m"].imports
        assert edge.names == ("FAMILY",)
        assert edge.bound == ("METRIC",)


class TestIndexesAndHierarchy:
    FILES = (
        (
            "src/repro/hin/errors.py",
            """\
            class ReproError(Exception):
                pass

            class QueryError(ReproError):
                def __init__(self, message, key):
                    super().__init__(message, key)
            """,
        ),
        (
            "src/repro/core/search.py",
            """\
            def rank(scores):
                return order(scores)

            def order(scores):
                return scores
            """,
        ),
    )

    def test_class_chain_walks_project_bases(self):
        ctx = project(*self.FILES)
        chain = {decl.name for decl in ctx.class_chain("QueryError")}
        assert chain == {"QueryError", "ReproError"}

    def test_functions_indexed_by_bare_name(self):
        ctx = project(*self.FILES)
        assert {d.module for d in ctx.functions["rank"]} == {
            "repro.core.search"
        }

    def test_reachability_closure_follows_calls(self):
        ctx = project(*self.FILES)
        roots = ctx.functions["rank"]
        reached = {d.name for d in ctx.reachable_functions(roots)}
        assert reached == {"rank", "order"}

    def test_constructor_call_reaches_init(self):
        ctx = project(
            *self.FILES,
            (
                "src/repro/serve/worker.py",
                """\
                def run(key):
                    raise QueryError("missing", key)
                """,
            ),
        )
        roots = ctx.functions["run"]
        reached = {d.name for d in ctx.reachable_functions(roots)}
        assert "__init__" in reached
