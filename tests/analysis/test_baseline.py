"""Baseline allowlist: validation, matching semantics, the TOML subset.

The baseline is the linter's pressure valve; these tests pin the parts
that keep it honest -- every entry needs a reason, unknown keys are
rejected, unused entries are surfaced, and the 3.10 fallback parser
agrees with tomllib on the subset it supports.
"""

import pytest

from repro.analysis import (
    PLACEHOLDER_REASON,
    Suppression,
    load_baseline,
    write_baseline,
)
from repro.analysis.baseline import _parse_toml_subset
from repro.analysis.core import Finding
from repro.hin.errors import AnalysisError


def finding(rule="RPR001", path="src/repro/m.py", line=10, message="msg"):
    return Finding(
        path=path, line=line, rule=rule, severity="error", message=message
    )


class TestSuppressionMatching:
    def test_rule_and_path_must_match(self):
        entry = Suppression(rule="RPR001", path="src/repro/m.py", reason="r")
        assert entry.covers(finding())
        assert not entry.covers(finding(rule="RPR002"))
        assert not entry.covers(finding(path="src/repro/other.py"))

    def test_line_pin(self):
        entry = Suppression(
            rule="RPR001", path="src/repro/m.py", reason="r", line=10
        )
        assert entry.covers(finding(line=10))
        assert not entry.covers(finding(line=11))

    def test_message_substring(self):
        entry = Suppression(
            rule="RPR001", path="src/repro/m.py", reason="r", match="._halves"
        )
        assert entry.covers(finding(message="writes self._halves here"))
        assert not entry.covers(finding(message="something else"))


class TestLoadBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'line = 10\n'
            'reason = "bounded row densification"\n'
        )
        baseline = load_baseline(path)
        assert len(baseline.suppressions) == 1
        entry = baseline.suppressions[0]
        assert entry.rule == "RPR001"
        assert entry.line == 10
        assert entry.reason == "bounded row densification"

    def test_missing_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\nrule = "RPR001"\npath = "src/repro/m.py"\n'
        )
        with pytest.raises(AnalysisError, match="reason"):
            load_baseline(path)

    def test_blank_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'reason = "  "\n'
        )
        with pytest.raises(AnalysisError, match="reason"):
            load_baseline(path)

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'reason = "ok"\n'
            'because = "typo for reason"\n'
        )
        with pytest.raises(AnalysisError, match="unknown"):
            load_baseline(path)

    def test_partition_reports_unused(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'reason = "live"\n'
            '\n'
            '[[suppression]]\n'
            'rule = "RPR009"\n'
            'path = "src/repro/gone.py"\n'
            'reason = "stale"\n'
        )
        baseline = load_baseline(path)
        unbaselined, suppressed, unused = baseline.partition([finding()])
        assert unbaselined == []
        assert len(suppressed) == 1
        assert [entry.reason for entry in unused] == ["stale"]


class TestWriteBaseline:
    def test_written_file_loads_and_covers(self, tmp_path):
        path = tmp_path / "baseline.toml"
        findings = [finding(line=3), finding(rule="RPR002", line=7)]
        count = write_baseline(findings, path)
        assert count == 2
        baseline = load_baseline(path)
        unbaselined, suppressed, unused = baseline.partition(findings)
        assert unbaselined == []
        assert len(suppressed) == 2
        assert unused == []
        assert all(
            "unreviewed" in entry.reason for entry in baseline.suppressions
        )


class TestTomlSubsetParser:
    """The 3.10 fallback must agree with tomllib on the subset it supports."""

    def test_tables_strings_ints_comments(self):
        text = (
            "# header comment\n"
            "[[suppression]]\n"
            'rule = "RPR001"  # trailing comment\n'
            "line = 10\n"
            '\n'
            "[[suppression]]\n"
            'rule = "RPR002"\n'
        )
        tables = _parse_toml_subset(text, "x.toml")
        assert tables == {
            "suppression": [
                {"rule": "RPR001", "line": 10},
                {"rule": "RPR002"},
            ]
        }

    def test_escapes(self):
        tables = _parse_toml_subset(
            '[[s]]\nreason = "say \\"hi\\" \\\\ done"\n', "x.toml"
        )
        assert tables["s"][0]["reason"] == 'say "hi" \\ done'

    def test_agrees_with_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        text = (
            "[[suppression]]\n"
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            "line = 12\n"
            'reason = "why \\"quoted\\""\n'
        )
        assert _parse_toml_subset(text, "x.toml") == tomllib.loads(text)

    @pytest.mark.parametrize(
        "bad",
        [
            "[plain_table]\n",
            "key_outside = 1\n",
            '[[s]]\nreason = "unterminated\n',
            "[[s]]\nvalue = 1.5\n",
            '[[s]]\nreason = "x" junk\n',
        ],
    )
    def test_unsupported_syntax_is_a_hard_error(self, bad):
        with pytest.raises(AnalysisError):
            _parse_toml_subset(bad, "x.toml")


class TestWriteBaselinePreservesReasons:
    """Regression: regenerating must never destroy reviewed justifications."""

    def test_reviewed_reason_survives_regeneration(self, tmp_path):
        path = tmp_path / "baseline.toml"
        reviewed = finding(line=3)
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'line = 3\n'
            'reason = "bounded row densification, reviewed"\n'
        )
        previous = load_baseline(path)
        new = finding(rule="RPR002", line=9)
        write_baseline([reviewed, new], path, previous)
        regenerated = load_baseline(path)
        by_rule = {s.rule: s.reason for s in regenerated.suppressions}
        assert by_rule["RPR001"] == "bounded row densification, reviewed"
        assert by_rule["RPR002"] == PLACEHOLDER_REASON

    def test_placeholder_reasons_are_not_inherited(self, tmp_path):
        path = tmp_path / "baseline.toml"
        covered = finding(line=3)
        write_baseline([covered], path)  # first pass: placeholder
        previous = load_baseline(path)
        write_baseline([covered], path, previous)
        regenerated = load_baseline(path)
        assert regenerated.suppressions[0].reason == PLACEHOLDER_REASON

    def test_match_pinned_entry_lends_its_reason(self, tmp_path):
        # The hand-written entry uses `match`, not `line`; it still
        # covers the regenerated finding and donates its reason.
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            'match = "msg"\n'
            'reason = "reviewed via match"\n'
        )
        previous = load_baseline(path)
        write_baseline([finding(line=42)], path, previous)
        assert load_baseline(path).suppressions[0].reason == (
            "reviewed via match"
        )

    def test_reason_escaping_round_trips(self, tmp_path):
        path = tmp_path / "baseline.toml"
        tricky = 'say "hi" \\ done\tand\nmore'
        path.write_text(
            '[[suppression]]\n'
            'rule = "RPR001"\n'
            'path = "src/repro/m.py"\n'
            "reason = \"say \\\"hi\\\" \\\\ done\\tand\\nmore\"\n"
        )
        previous = load_baseline(path)
        assert previous.suppressions[0].reason == tricky
        write_baseline([finding(line=3)], path, previous)
        assert load_baseline(path).suppressions[0].reason == tricky
