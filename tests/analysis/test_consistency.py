"""Project-scoped rules: RPR012 (metrics), RPR013 (layers), RPR014 (pickling)."""

import ast
import textwrap
from pathlib import Path

from repro.analysis import (
    ImportLayeringRule,
    MetricsCatalogueRule,
    PicklableWorkerErrorRule,
)
from repro.analysis.core import SourceFile
from repro.analysis.project import ProjectContext


def source(rel, code):
    text = textwrap.dedent(code)
    return SourceFile(None, rel, text, ast.parse(text))


def project(files, root=None):
    return ProjectContext(
        [source(rel, code) for rel, code in files],
        root if root is not None else Path("/nonexistent-lint-root"),
    )


def run(rule, files, root=None):
    findings = rule.check_project(project(files, root))
    return [(f.rule, f.path, f.line) for f in findings], findings


class TestMetricsCatalogueRule:
    def test_duplicate_registration_flagged_at_second_site(self):
        triples, findings = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/a.py",
                    'DUP = REGISTRY.counter("repro_dup_total", "h")\n',
                ),
                (
                    "src/repro/obs/b.py",
                    'DUP = REGISTRY.counter("repro_dup_total", "h")\n',
                ),
            ],
        )
        assert triples == [("RPR012", "src/repro/obs/b.py", 1)]
        assert "registered more than once" in findings[0].message
        assert "src/repro/obs/a.py:1" in findings[0].message

    def test_kind_conflict_flagged_at_every_site(self):
        triples, findings = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/a.py",
                    'X = REGISTRY.counter("repro_x_total", "h")\n',
                ),
                (
                    "src/repro/obs/b.py",
                    'X = REGISTRY.gauge("repro_x_total", "h")\n',
                ),
            ],
        )
        kind_findings = [
            f for f in findings if "registered as" in f.message
        ]
        assert {f.path for f in kind_findings} == {
            "src/repro/obs/a.py",
            "src/repro/obs/b.py",
        }

    def test_minority_label_set_flagged(self):
        triples, findings = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/m.py",
                    """\
                    HITS = REGISTRY.counter("repro_hits_total", "h")

                    def a(engine):
                        HITS.labels(engine=engine).inc()

                    def b(engine):
                        HITS.labels(engine=engine).inc()

                    def c():
                        HITS.inc()
                    """,
                ),
            ],
        )
        assert triples == [("RPR012", "src/repro/obs/m.py", 10)]
        assert "label set [] here but ['engine']" in findings[0].message

    def test_import_alias_attributes_to_defining_family(self):
        # The label site lives in a module that imports the family;
        # one resolution hop must attribute it to the real metric.
        triples, findings = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/base.py",
                    """\
                    FAM = REGISTRY.counter("repro_fam_total", "h")

                    def a():
                        FAM.labels(engine="e").inc()

                    def b():
                        FAM.labels(engine="e").inc()
                    """,
                ),
                (
                    "src/repro/core/user.py",
                    """\
                    from repro.obs.base import FAM as METRIC

                    def c(cache):
                        METRIC.labels(cache=cache).inc()
                    """,
                ),
            ],
        )
        assert triples == [("RPR012", "src/repro/core/user.py", 4)]
        assert "repro_fam_total" in findings[0].message

    def test_consistent_usage_silent(self):
        triples, _ = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/m.py",
                    """\
                    HITS = REGISTRY.counter("repro_hits_total", "h")

                    def a(engine):
                        HITS.labels(engine=engine).inc()
                    """,
                ),
            ],
        )
        assert triples == []

    def test_doc_cross_check(self, tmp_path):
        doc = tmp_path / "docs" / "observability.md"
        doc.parent.mkdir()
        doc.write_text(
            "| `repro_doc_total` | counter | - | documented |\n"
            "| `repro_ghost_total` | counter | - | stale row |\n"
        )
        triples, findings = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/m.py",
                    'DOC = REGISTRY.counter("repro_doc_total", "h")\n'
                    'UNDOC = REGISTRY.counter("repro_undoc_total", "h")\n',
                ),
            ],
            root=tmp_path,
        )
        assert sorted(triples) == [
            ("RPR012", "docs/observability.md", 2),
            ("RPR012", "src/repro/obs/m.py", 2),
        ]
        by_path = {f.path: f.message for f in findings}
        assert "not registered anywhere" in by_path["docs/observability.md"]
        assert "not in the catalogue" in by_path["src/repro/obs/m.py"]

    def test_missing_doc_file_skips_doc_check(self):
        triples, _ = run(
            MetricsCatalogueRule(),
            [
                (
                    "src/repro/obs/m.py",
                    'X = REGISTRY.counter("repro_x_total", "h")\n',
                ),
            ],
        )
        assert triples == []


class TestImportLayeringRule:
    def test_upward_top_level_import_flagged(self):
        triples, findings = run(
            ImportLayeringRule(),
            [
                (
                    "src/repro/hin/graph.py",
                    "from repro.core.engine import HeteSimEngine\n",
                ),
                ("src/repro/core/engine.py", "class HeteSimEngine:\n    pass\n"),
            ],
        )
        assert triples == [("RPR013", "src/repro/hin/graph.py", 1)]
        assert findings[0].message.startswith("top-level import")

    def test_upward_lazy_import_flagged_as_lazy(self):
        triples, findings = run(
            ImportLayeringRule(),
            [
                (
                    "src/repro/core/engine.py",
                    """\
                    def warm():
                        from repro.serve.dispatch import Dispatcher
                        return Dispatcher
                    """,
                ),
            ],
        )
        assert triples == [("RPR013", "src/repro/core/engine.py", 2)]
        assert findings[0].message.startswith("lazy import")

    def test_downward_and_same_layer_imports_silent(self):
        triples, _ = run(
            ImportLayeringRule(),
            [
                (
                    "src/repro/core/engine.py",
                    "from repro.hin.graph import HeteroGraph\n"
                    "from repro.core.backend import execute_plan\n",
                ),
                ("src/repro/hin/graph.py", "class HeteroGraph:\n    pass\n"),
                ("src/repro/core/backend.py", "def execute_plan():\n    pass\n"),
            ],
        )
        assert triples == []

    def test_top_level_cycle_reported_once_at_first_member(self):
        triples, findings = run(
            ImportLayeringRule(),
            [
                (
                    "src/repro/core/alpha.py",
                    "from repro.core import beta\n",
                ),
                (
                    "src/repro/core/beta.py",
                    "import repro.core.alpha\n",
                ),
            ],
        )
        assert triples == [("RPR013", "src/repro/core/alpha.py", 1)]
        assert (
            "top-level import cycle: repro.core.alpha -> repro.core.beta"
            " -> repro.core.alpha" in findings[0].message
        )

    def test_lazy_back_edge_breaks_no_cycle(self):
        triples, _ = run(
            ImportLayeringRule(),
            [
                (
                    "src/repro/core/alpha.py",
                    """\
                    def late():
                        import repro.core.beta
                    """,
                ),
                ("src/repro/core/beta.py", "import repro.core.alpha\n"),
            ],
        )
        assert triples == []


class TestPicklableWorkerErrorRule:
    WORKER = (
        "src/repro/serve/procs.py",
        """\
        def run_task(key):
            return work(key)
        """,
    )

    def test_non_forwarding_init_flagged_at_raise_site(self):
        triples, findings = run(
            PicklableWorkerErrorRule(),
            [
                self.WORKER,
                (
                    "src/repro/core/work.py",
                    """\
                    def work(key):
                        if key is None:
                            raise ShardError("missing shard", 3)
                        return key
                    """,
                ),
                (
                    "src/repro/hin/errors.py",
                    """\
                    class ShardError(Exception):
                        def __init__(self, message, shard):
                            super().__init__(message)
                            self.shard = shard
                    """,
                ),
            ],
        )
        assert triples == [("RPR014", "src/repro/core/work.py", 3)]
        assert "ShardError" in findings[0].message
        assert "does not forward" in findings[0].message

    def test_forwarding_init_passes(self):
        triples, _ = run(
            PicklableWorkerErrorRule(),
            [
                self.WORKER,
                (
                    "src/repro/core/work.py",
                    """\
                    def work(key):
                        raise ShardError("missing", key)
                    """,
                ),
                (
                    "src/repro/hin/errors.py",
                    """\
                    class ShardError(Exception):
                        def __init__(self, message, shard):
                            super().__init__(message, shard)
                            self.shard = shard
                    """,
                ),
            ],
        )
        assert triples == []

    def test_reduce_passes(self):
        triples, _ = run(
            PicklableWorkerErrorRule(),
            [
                self.WORKER,
                (
                    "src/repro/core/work.py",
                    'def work(key):\n    raise ShardError("missing", key)\n',
                ),
                (
                    "src/repro/hin/errors.py",
                    """\
                    class ShardError(Exception):
                        def __init__(self, message, shard):
                            super().__init__(message)
                            self.shard = shard

                        def __reduce__(self):
                            return (type(self), (self.args[0], self.shard))
                    """,
                ),
            ],
        )
        assert triples == []

    def test_default_init_passes(self):
        triples, _ = run(
            PicklableWorkerErrorRule(),
            [
                self.WORKER,
                (
                    "src/repro/core/work.py",
                    'def work(key):\n    raise ShardError("missing")\n',
                ),
                (
                    "src/repro/hin/errors.py",
                    "class ShardError(Exception):\n    pass\n",
                ),
            ],
        )
        assert triples == []

    def test_unreachable_raise_ignored(self):
        triples, _ = run(
            PicklableWorkerErrorRule(),
            [
                self.WORKER,
                (
                    "src/repro/core/work.py",
                    "def work(key):\n    return key\n",
                ),
                (
                    "src/repro/core/offline.py",
                    """\
                    def offline(key):
                        raise ShardError("missing", 3)
                    """,
                ),
                (
                    "src/repro/hin/errors.py",
                    """\
                    class ShardError(Exception):
                        def __init__(self, message, shard):
                            super().__init__(message)
                    """,
                ),
            ],
        )
        assert triples == []

    def test_no_worker_module_is_silent(self):
        triples, _ = run(
            PicklableWorkerErrorRule(),
            [("src/repro/core/work.py", "def work():\n    pass\n")],
        )
        assert triples == []
