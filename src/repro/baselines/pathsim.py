"""PathSim (Sun et al., VLDB 2011).

The symmetric-path baseline.  For a *symmetric* meta path ``P = PL PL^-1``
between two same-typed objects, PathSim counts path instances:

    PathSim(a, b) = 2 * M(a, b) / (M(a, a) + M(b, b))

where ``M = W_PL @ W_PL'`` is the (unnormalised) path-instance count
matrix.  Unlike HeteSim, PathSim is undefined for asymmetric paths and for
different-typed endpoint pairs -- the restriction the paper's Tables 4 and
6 contrast against.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse

from ..core.backend import materialise
from ..hin.errors import PathError, QueryError
from ..hin.graph import HeteroGraph
from ..hin.metapath import MetaPath

__all__ = [
    "path_count_matrix",
    "pathsim_matrix",
    "pathsim_pair",
    "pathsim_rank",
]


def path_count_matrix(
    graph: HeteroGraph, path: MetaPath
) -> sparse.csr_matrix:
    """Path-instance counts between endpoint pairs: the product of the
    (unnormalised) adjacency matrices along the path.

    Unnormalised weights are just a different factor source to the
    planned compute layer: the chain is ordered by estimated sparse
    work, and for PathSim's symmetric paths ``P = PL PL^-1`` the shared
    half ``W_PL`` is computed once and closed with its transpose
    (``M = W_PL W_PL'``) instead of multiplying the mirror out again.
    """
    matrix, _ = materialise(graph, path, weights="adjacency")
    return matrix


def _require_symmetric(path: MetaPath) -> None:
    if not path.is_symmetric:
        raise PathError(
            f"PathSim requires a symmetric path; {path.code()} is not "
            "(this is exactly the limitation HeteSim removes)"
        )


def pathsim_matrix(graph: HeteroGraph, path: MetaPath) -> np.ndarray:
    """All-pairs PathSim under a symmetric path.

    Raises :class:`~repro.hin.errors.PathError` for asymmetric paths.
    """
    _require_symmetric(path)
    counts = path_count_matrix(graph, path).toarray()
    diagonal = np.diag(counts)
    denominator = diagonal[:, None] + diagonal[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(denominator > 0, 2.0 * counts / denominator, 0.0)
    return scores


def pathsim_pair(
    graph: HeteroGraph,
    path: MetaPath,
    source_key: str,
    target_key: str,
) -> float:
    """``PathSim(source, target | path)`` for one same-typed pair."""
    _require_symmetric(path)
    type_name = path.source_type.name
    for key in (source_key, target_key):
        if not graph.has_node(type_name, key):
            raise QueryError(f"{key!r} is not a {type_name!r} node")
    i = graph.node_index(type_name, source_key)
    j = graph.node_index(type_name, target_key)
    counts = path_count_matrix(graph, path)
    m_ab = counts[i, j]
    m_aa = counts[i, i]
    m_bb = counts[j, j]
    denominator = m_aa + m_bb
    if denominator == 0:
        return 0.0
    return float(2.0 * m_ab / denominator)


def pathsim_rank(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> List[Tuple[str, float]]:
    """All same-typed objects ranked by PathSim to ``source_key``."""
    _require_symmetric(path)
    type_name = path.source_type.name
    if not graph.has_node(type_name, source_key):
        raise QueryError(f"{source_key!r} is not a {type_name!r} node")
    i = graph.node_index(type_name, source_key)
    counts = path_count_matrix(graph, path)
    row = counts.getrow(i).toarray().ravel()
    diagonal = counts.diagonal()
    denominator = diagonal[i] + diagonal
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(denominator > 0, 2.0 * row / denominator, 0.0)
    keys = graph.node_keys(type_name)
    order = sorted(range(len(keys)), key=lambda n: (-scores[n], keys[n]))
    return [(keys[n], float(scores[n])) for n in order]
