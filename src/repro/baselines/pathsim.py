"""PathSim (Sun et al., VLDB 2011).

The symmetric-path baseline.  For a *symmetric* meta path ``P = PL PL^-1``
between two same-typed objects, PathSim counts path instances:

    PathSim(a, b) = 2 * M(a, b) / (M(a, a) + M(b, b))

where ``M = W_PL @ W_PL'`` is the (unnormalised) path-instance count
matrix.  Unlike HeteSim, PathSim is undefined for asymmetric paths and for
different-typed endpoint pairs -- the restriction the paper's Tables 4 and
6 contrast against.

These functions are thin wrappers over the registered ``pathsim``
measure plugin (:mod:`repro.core.measures.pathsim`): the count matrix
is materialised through the shared compute entry point
(:meth:`~repro.core.measures.base.MeasureContext.count_matrix`), so a
:class:`~repro.core.cache.PathMatrixCache` passed to
:func:`path_count_matrix` accounts these counts under its byte budget
instead of bypassing it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from ..core.cache import PathMatrixCache
from ..core.measures import MeasureContext, get_measure
from ..hin.graph import HeteroGraph
from ..hin.metapath import MetaPath

__all__ = [
    "path_count_matrix",
    "pathsim_matrix",
    "pathsim_pair",
    "pathsim_rank",
]


def path_count_matrix(
    graph: HeteroGraph,
    path: MetaPath,
    cache: Optional[PathMatrixCache] = None,
) -> sparse.csr_matrix:
    """Path-instance counts between endpoint pairs: the product of the
    (unnormalised) adjacency matrices along the path.

    Unnormalised weights are just a different factor source to the
    planned compute layer: the chain is ordered by estimated sparse
    work, and for PathSim's symmetric paths ``P = PL PL^-1`` the shared
    half ``W_PL`` is computed once and closed with its transpose
    (``M = W_PL W_PL'``) instead of multiplying the mirror out again.
    Pass a cache to store the counts under its byte budget.
    """
    return MeasureContext(graph=graph, cache=cache).count_matrix(path)


def pathsim_matrix(graph: HeteroGraph, path: MetaPath) -> np.ndarray:
    """All-pairs PathSim under a symmetric path.

    Raises :class:`~repro.hin.errors.PathError` for asymmetric paths.
    """
    return get_measure("pathsim").matrix(MeasureContext(graph=graph), path)


def pathsim_pair(
    graph: HeteroGraph,
    path: MetaPath,
    source_key: str,
    target_key: str,
) -> float:
    """``PathSim(source, target | path)`` for one same-typed pair."""
    return get_measure("pathsim").pair(
        MeasureContext(graph=graph), path, source_key, target_key
    )


def pathsim_rank(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> List[Tuple[str, float]]:
    """All same-typed objects ranked by PathSim to ``source_key``."""
    return get_measure("pathsim").rank(
        MeasureContext(graph=graph), path, source_key
    )
