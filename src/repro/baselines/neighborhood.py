"""Neighbour-set similarity baselines from the related work (Section 2).

The paper's related-work section covers two families this module
represents:

* **feature-based measures** (cosine, Jaccard) applied to link vectors --
  each object's "features" are its adjacency row under one relation;
* **SCAN-style structural similarity** (Xu et al., KDD 2007): the
  normalised overlap of two objects' *immediate neighbour sets*,
  ``|N(u) ∩ N(v)| / sqrt(|N(u)| |N(v)|)``.

All three "just consider the objects with the same type" and a single
relation -- exactly the limitation (no path semantics, no cross-type
scores) that motivates HeteSim.  They are provided as honest comparison
points for the examples and benches.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.matrices import safe_reciprocal

__all__ = [
    "cosine_similarity_matrix",
    "jaccard_similarity_matrix",
    "scan_similarity_matrix",
    "neighborhood_rank",
]


def _adjacency_rows(graph: HeteroGraph, relation_name: str) -> sparse.csr_matrix:
    return graph.adjacency(relation_name)


def cosine_similarity_matrix(
    graph: HeteroGraph, relation_name: str
) -> np.ndarray:
    """Pairwise cosine of the source-type objects' weighted link vectors.

    ``S[u, v] = <w_u, w_v> / (||w_u|| ||w_v||)`` where ``w_u`` is object
    ``u``'s adjacency row under the relation.  Zero rows score 0.
    """
    rows = _adjacency_rows(graph, relation_name)
    gram = (rows @ rows.T).toarray()
    norms = np.sqrt(np.asarray(rows.multiply(rows).sum(axis=1))).ravel()
    scale = safe_reciprocal(norms)
    return gram * scale[:, None] * scale[None, :]


def jaccard_similarity_matrix(
    graph: HeteroGraph, relation_name: str
) -> np.ndarray:
    """Pairwise Jaccard of the source-type objects' neighbour *sets*.

    ``S[u, v] = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|`` (weights ignored;
    presence only).  Objects without neighbours score 0 everywhere.
    """
    rows = _adjacency_rows(graph, relation_name)
    binary = sparse.csr_matrix(
        (np.ones_like(rows.data), rows.indices, rows.indptr),
        shape=rows.shape,
    )
    intersection = (binary @ binary.T).toarray()
    sizes = np.asarray(binary.sum(axis=1)).ravel()
    union = sizes[:, None] + sizes[None, :] - intersection
    scale = np.zeros_like(union)
    positive = union > 0
    scale[positive] = 1.0 / union[positive]
    return intersection * scale


def scan_similarity_matrix(
    graph: HeteroGraph, relation_name: str
) -> np.ndarray:
    """SCAN structural similarity over one relation's neighbour sets.

    ``S[u, v] = |N(u) ∩ N(v)| / sqrt(|N(u)| |N(v)|)``, neighbour sets
    taken as the relation's targets.  (SCAN proper includes the node
    itself in its neighbourhood on homogeneous graphs; on a bipartite
    relation the intersection form below is the direct analogue.)
    """
    rows = _adjacency_rows(graph, relation_name)
    binary = sparse.csr_matrix(
        (np.ones_like(rows.data), rows.indices, rows.indptr),
        shape=rows.shape,
    )
    intersection = (binary @ binary.T).toarray()
    sizes = np.asarray(binary.sum(axis=1)).ravel()
    scale = np.sqrt(safe_reciprocal(sizes))
    return intersection * scale[:, None] * scale[None, :]


def neighborhood_rank(
    graph: HeteroGraph,
    relation_name: str,
    source_key: str,
    measure: str = "cosine",
) -> List[Tuple[str, float]]:
    """Same-typed objects ranked by a neighbour-set measure.

    ``measure`` is one of ``"cosine"``, ``"jaccard"``, ``"scan"``.
    """
    builders = {
        "cosine": cosine_similarity_matrix,
        "jaccard": jaccard_similarity_matrix,
        "scan": scan_similarity_matrix,
    }
    if measure not in builders:
        raise QueryError(
            f"measure must be one of {sorted(builders)}, got {measure!r}"
        )
    relation = graph.schema.relation(relation_name)
    type_name = relation.source.name
    if not graph.has_node(type_name, source_key):
        raise QueryError(f"{source_key!r} is not a {type_name!r} node")
    matrix = builders[measure](graph, relation_name)
    index = graph.node_index(type_name, source_key)
    scores = matrix[index]
    keys = graph.node_keys(type_name)
    order = sorted(range(len(keys)), key=lambda i: (-scores[i], keys[i]))
    return [(keys[i], float(scores[i])) for i in order]
