"""Path Constrained Random Walk (Lao & Cohen, 2010).

The asymmetric baseline the paper compares against throughout Section 5.
PCRW between ``s`` and ``t`` under a path ``P`` is simply the probability
that a random walker starting at ``s`` and constrained to follow ``P``
ends at ``t`` -- i.e. an entry of the reachable probability matrix
``PM_P`` (Definition 9).  Because the forward and backward walks normalise
differently, ``PCRW(s, t | P) != PCRW(t, s | P^-1)`` in general, which is
exactly the deficiency Tables 3-4 illustrate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.metapath import MetaPath
from ..core.cache import PathMatrixCache
from ..core.reachprob import reach_prob, reach_row

__all__ = ["pcrw_pair", "pcrw_matrix", "pcrw_vector", "pcrw_rank"]


def pcrw_matrix(
    graph: HeteroGraph,
    path: MetaPath,
    cache: Optional[PathMatrixCache] = None,
) -> np.ndarray:
    """All-pairs PCRW scores: the dense ``PM_P``.

    Materialised through the planned compute layer via
    :func:`repro.core.reachprob.reach_prob`; pass a cache to reuse
    stored prefixes across paths.
    """
    return reach_prob(graph, path, cache=cache).toarray()


def pcrw_pair(
    graph: HeteroGraph,
    path: MetaPath,
    source_key: str,
    target_key: str,
) -> float:
    """``PCRW(source, target | path)`` -- one reach probability."""
    target_type = path.target_type.name
    if not graph.has_node(target_type, target_key):
        raise QueryError(f"{target_key!r} is not a {target_type!r} node")
    row = reach_row(graph, path, source_key)
    return float(row[graph.node_index(target_type, target_key)])


def pcrw_vector(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> np.ndarray:
    """PCRW scores of one source against every target-type object."""
    return reach_row(graph, path, source_key)


def pcrw_rank(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> List[Tuple[str, float]]:
    """All target objects ranked by PCRW score, best first.

    Ties break by node key for determinism.
    """
    scores = pcrw_vector(graph, path, source_key)
    keys = graph.node_keys(path.target_type.name)
    order = sorted(range(len(keys)), key=lambda i: (-scores[i], keys[i]))
    return [(keys[i], float(scores[i])) for i in order]
