"""Path Constrained Random Walk (Lao & Cohen, 2010).

The asymmetric baseline the paper compares against throughout Section 5.
PCRW between ``s`` and ``t`` under a path ``P`` is simply the probability
that a random walker starting at ``s`` and constrained to follow ``P``
ends at ``t`` -- i.e. an entry of the reachable probability matrix
``PM_P`` (Definition 9).  Because the forward and backward walks normalise
differently, ``PCRW(s, t | P) != PCRW(t, s | P^-1)`` in general, which is
exactly the deficiency Tables 3-4 illustrate.

These functions are thin wrappers over the registered ``pcrw`` measure
plugin (:mod:`repro.core.measures.walk`); single-source calls keep the
one-hot :func:`~repro.core.reachprob.reach_row` propagation, all-pairs
calls materialise ``PM_P`` through the shared compute layer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.cache import PathMatrixCache
from ..core.measures import MeasureContext, get_measure
from ..hin.graph import HeteroGraph
from ..hin.metapath import MetaPath

__all__ = ["pcrw_pair", "pcrw_matrix", "pcrw_vector", "pcrw_rank"]


def pcrw_matrix(
    graph: HeteroGraph,
    path: MetaPath,
    cache: Optional[PathMatrixCache] = None,
) -> np.ndarray:
    """All-pairs PCRW scores: the dense ``PM_P``.

    Materialised through the planned compute layer; pass a cache to
    reuse stored prefixes across paths.
    """
    return get_measure("pcrw").matrix(
        MeasureContext(graph=graph, cache=cache), path
    )


def pcrw_pair(
    graph: HeteroGraph,
    path: MetaPath,
    source_key: str,
    target_key: str,
) -> float:
    """``PCRW(source, target | path)`` -- one reach probability."""
    return get_measure("pcrw").pair(
        MeasureContext(graph=graph), path, source_key, target_key
    )


def pcrw_vector(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> np.ndarray:
    """PCRW scores of one source against every target-type object."""
    return get_measure("pcrw").vector(
        MeasureContext(graph=graph), path, source_key
    )


def pcrw_rank(
    graph: HeteroGraph, path: MetaPath, source_key: str
) -> List[Tuple[str, float]]:
    """All target objects ranked by PCRW score, best first.

    Ties break by node key for determinism.
    """
    return get_measure("pcrw").rank(
        MeasureContext(graph=graph), path, source_key
    )
