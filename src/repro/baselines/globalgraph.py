"""Flattening a heterogeneous network into one global node space.

SimRank and Personalized PageRank (the related-work baselines) ignore
types: they operate on a single adjacency matrix over *all* nodes.  This
module builds that flattened view, keeping a mapping back to
``(type, key)`` so results can be reported per type.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import sparse

from ..hin.graph import HeteroGraph

__all__ = ["GlobalIndex", "build_global_index"]


class GlobalIndex:
    """Bidirectional mapping between ``(type, key)`` and global indices.

    Attributes
    ----------
    adjacency:
        The global sparse adjacency (directed; symmetrise with
        ``adjacency + adjacency.T`` for undirected walks).
    offsets:
        Per-type starting offset into the global index space.
    """

    def __init__(
        self,
        adjacency: sparse.csr_matrix,
        offsets: Dict[str, int],
        labels: List[Tuple[str, str]],
    ) -> None:
        self.adjacency = adjacency
        self.offsets = offsets
        self.labels = labels

    @property
    def num_nodes(self) -> int:
        """Total node count across all types."""
        return self.adjacency.shape[0]

    def index_of(self, type_name: str, key_index: int) -> int:
        """Global index of the node with per-type index ``key_index``."""
        return self.offsets[type_name] + key_index

    def label_of(self, global_index: int) -> Tuple[str, str]:
        """``(type_name, key)`` of a global index."""
        return self.labels[global_index]

    def type_slice(self, type_name: str, size: int) -> slice:
        """Slice of the global space occupied by one type."""
        start = self.offsets[type_name]
        return slice(start, start + size)


def build_global_index(graph: HeteroGraph) -> GlobalIndex:
    """Stack every type into one global adjacency matrix.

    Each forward relation contributes its edges in the forward direction;
    the matrix is directed.  Types appear in schema registration order.
    """
    offsets: Dict[str, int] = {}
    labels: List[Tuple[str, str]] = []
    total = 0
    for otype in graph.schema.object_types:
        offsets[otype.name] = total
        keys = graph.node_keys(otype.name)
        labels.extend((otype.name, key) for key in keys)
        total += len(keys)

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    data: List[np.ndarray] = []
    for relation in graph.schema.relations:
        coo = graph.adjacency(relation.name).tocoo()
        rows.append(coo.row + offsets[relation.source.name])
        cols.append(coo.col + offsets[relation.target.name])
        data.append(coo.data)
    if rows:
        adjacency = sparse.csr_matrix(
            (
                np.concatenate(data),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(total, total),
        )
    else:
        adjacency = sparse.csr_matrix((total, total))
    return GlobalIndex(adjacency, offsets, labels)
