"""Baselines the paper compares HeteSim against.

PCRW (asymmetric path-constrained walk), PathSim (symmetric-path-only
similarity), SimRank (type-blind, with the Property 5 meeting recursion),
and Personalized PageRank (type-blind restart walk).
"""

from .globalgraph import GlobalIndex, build_global_index
from .neighborhood import (
    cosine_similarity_matrix,
    jaccard_similarity_matrix,
    neighborhood_rank,
    scan_similarity_matrix,
)
from .pagerank import personalized_pagerank, ppr_rank
from .pathsim import (
    path_count_matrix,
    pathsim_matrix,
    pathsim_pair,
    pathsim_rank,
)
from .pcrw import pcrw_matrix, pcrw_pair, pcrw_rank, pcrw_vector
from .simrank import simrank, simrank_meeting_iterations, simrank_naive

__all__ = [
    "GlobalIndex",
    "build_global_index",
    "cosine_similarity_matrix",
    "jaccard_similarity_matrix",
    "neighborhood_rank",
    "scan_similarity_matrix",
    "path_count_matrix",
    "pathsim_matrix",
    "pathsim_pair",
    "pathsim_rank",
    "pcrw_matrix",
    "pcrw_pair",
    "pcrw_rank",
    "pcrw_vector",
    "personalized_pagerank",
    "ppr_rank",
    "simrank",
    "simrank_meeting_iterations",
    "simrank_naive",
]
