"""Personalized PageRank / random walk with restart (Jeh & Widom, 2003).

The classic type-blind, link-based relevance baseline from the related
work.  A walker restarts at the query node with probability ``1 - damping``
and otherwise steps along a (symmetrised) global adjacency.  Scores are
asymmetric and not path-aware -- the two properties HeteSim adds.

The power iteration itself lives in
:func:`repro.core.measures.pagerank.restart_walk_scores` (shared with
the registered ``ppr`` measure plugin, and deadline-aware under
:class:`~repro.runtime.limits.ExecutionLimits`); these wrappers keep
the legacy call signatures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.measures import MeasureContext, get_measure
from ..core.measures.pagerank import restart_walk_scores
from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.matrices import row_normalize
from .globalgraph import GlobalIndex, build_global_index

__all__ = ["personalized_pagerank", "ppr_rank"]


def personalized_pagerank(
    graph: HeteroGraph,
    source_type: str,
    source_key: str,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    undirected: bool = True,
    index: Optional[GlobalIndex] = None,
) -> Tuple[np.ndarray, GlobalIndex]:
    """Stationary restart-walk distribution from one query node.

    Returns ``(scores, global_index)`` where ``scores`` is a probability
    vector over the flattened node space; slice it per type via
    ``global_index.type_slice``.

    Raises :class:`~repro.hin.errors.QueryError` for bad parameters or an
    unknown query node.
    """
    if not 0 <= damping < 1:
        raise QueryError(f"damping must be in [0, 1), got {damping}")
    if not graph.has_node(source_type, source_key):
        raise QueryError(f"{source_key!r} is not a {source_type!r} node")
    if index is None:
        index = build_global_index(graph)
    adjacency = index.adjacency
    if undirected:
        adjacency = (adjacency + adjacency.T).tocsr()
    walk = row_normalize(adjacency)

    start = index.index_of(
        source_type, graph.node_index(source_type, source_key)
    )
    restart = np.zeros(index.num_nodes)
    restart[start] = 1.0

    scores = restart_walk_scores(
        walk,
        restart,
        damping=damping,
        tol=tol,
        max_iterations=max_iterations,
    )
    return scores, index


def ppr_rank(
    graph: HeteroGraph,
    source_type: str,
    source_key: str,
    target_type: str,
    damping: float = 0.85,
) -> List[Tuple[str, float]]:
    """Target-type objects ranked by Personalized PageRank from a query.

    The restart-walk analogue of :meth:`HeteSimEngine.rank`; used as a
    path-blind comparison point in the examples.
    """
    return get_measure("ppr").rank_types(
        MeasureContext(graph=graph),
        source_type,
        source_key,
        target_type,
        damping=damping,
    )
