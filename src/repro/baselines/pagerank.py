"""Personalized PageRank / random walk with restart (Jeh & Widom, 2003).

The classic type-blind, link-based relevance baseline from the related
work.  A walker restarts at the query node with probability ``1 - damping``
and otherwise steps along a (symmetrised) global adjacency.  Scores are
asymmetric and not path-aware -- the two properties HeteSim adds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.matrices import row_normalize
from .globalgraph import GlobalIndex, build_global_index

__all__ = ["personalized_pagerank", "ppr_rank"]


def personalized_pagerank(
    graph: HeteroGraph,
    source_type: str,
    source_key: str,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    undirected: bool = True,
    index: Optional[GlobalIndex] = None,
) -> Tuple[np.ndarray, GlobalIndex]:
    """Stationary restart-walk distribution from one query node.

    Returns ``(scores, global_index)`` where ``scores`` is a probability
    vector over the flattened node space; slice it per type via
    ``global_index.type_slice``.

    Raises :class:`~repro.hin.errors.QueryError` for bad parameters or an
    unknown query node.
    """
    if not 0 <= damping < 1:
        raise QueryError(f"damping must be in [0, 1), got {damping}")
    if not graph.has_node(source_type, source_key):
        raise QueryError(f"{source_key!r} is not a {source_type!r} node")
    if index is None:
        index = build_global_index(graph)
    adjacency = index.adjacency
    if undirected:
        adjacency = (adjacency + adjacency.T).tocsr()
    walk = row_normalize(adjacency)

    start = index.index_of(
        source_type, graph.node_index(source_type, source_key)
    )
    restart = np.zeros(index.num_nodes)
    restart[start] = 1.0

    scores = restart.copy()
    for _ in range(max_iterations):
        stepped = np.asarray(scores @ walk).ravel()
        # Mass lost at dangling nodes returns to the restart vector so the
        # result stays a probability distribution.
        lost = 1.0 - stepped.sum()
        updated = damping * (stepped + lost * restart) + (1 - damping) * restart
        if np.abs(updated - scores).sum() < tol:
            scores = updated
            break
        scores = updated
    return scores, index


def ppr_rank(
    graph: HeteroGraph,
    source_type: str,
    source_key: str,
    target_type: str,
    damping: float = 0.85,
) -> List[Tuple[str, float]]:
    """Target-type objects ranked by Personalized PageRank from a query.

    The restart-walk analogue of :meth:`HeteSimEngine.rank`; used as a
    path-blind comparison point in the examples.
    """
    scores, index = personalized_pagerank(
        graph, source_type, source_key, damping=damping
    )
    keys = graph.node_keys(target_type)
    block = scores[index.type_slice(target_type, len(keys))]
    order = sorted(range(len(keys)), key=lambda i: (-block[i], keys[i]))
    return [(keys[i], float(block[i])) for i in order]
