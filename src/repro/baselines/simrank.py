"""SimRank (Jeh & Widom, KDD 2002).

Two variants:

* :func:`simrank` -- the standard fixed-point iteration over the flattened
  (type-blind) graph, ``S = C * Q' S Q`` with the diagonal pinned to 1 and
  ``Q`` the column-normalised global adjacency.  This is the expensive
  baseline the paper's Section 4.6 complexity comparison is made against.
* :func:`simrank_meeting_iterations` -- the per-hop "meeting probability"
  recursion used in the paper's Property 5 proof on a bipartite relation
  with ``C = 1``: ``S^A_0 = I``, ``S^A_{k+1} = U_AB S^B_k U_AB'`` (and the
  mirrored B-side recursion).  Property 5 states
  ``S^A_k == raw HeteSim(. | (R R^-1)^k)`` -- the test suite verifies
  exactly that identity.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.matrices import col_normalize, row_normalize
from .globalgraph import build_global_index

__all__ = ["simrank", "simrank_naive", "simrank_meeting_iterations"]


def simrank(
    graph: HeteroGraph,
    decay: float = 0.8,
    iterations: int = 10,
    undirected: bool = True,
) -> np.ndarray:
    """Standard SimRank over all nodes of the network.

    Parameters
    ----------
    graph:
        The network; its types are flattened into one node space (use
        :func:`repro.baselines.globalgraph.build_global_index` to map
        indices back to ``(type, key)``).
    decay:
        The constant ``C`` in (0, 1].
    iterations:
        Number of fixed-point iterations ``k``.
    undirected:
        When True (default) edges are symmetrised first, which is how
        SimRank is usually applied to bibliographic networks (the "similar
        objects are referenced by similar objects" intuition runs both
        ways along e.g. author-paper edges).

    Returns
    -------
    A dense ``(N, N)`` similarity matrix over the global node space.
    SimRank is O(k * d * N^2) time and O(N^2) space -- quadratic in the
    *total* node count, which is the complexity gap HeteSim closes
    (Section 4.6).
    """
    if not 0 < decay <= 1:
        raise QueryError(f"decay must be in (0, 1], got {decay}")
    if iterations < 0:
        raise QueryError(f"iterations must be >= 0, got {iterations}")
    index = build_global_index(graph)
    adjacency = index.adjacency
    if undirected:
        adjacency = (adjacency + adjacency.T).tocsr()
    walk = col_normalize(adjacency)
    size = adjacency.shape[0]
    similarity = np.eye(size)
    for _ in range(iterations):
        # S <- C * Q' S Q, computed as (Q' (Q' S')')' with sparse-dense
        # products only; S stays symmetric throughout.
        inner = walk.T @ similarity          # (N, N) dense
        similarity = decay * np.asarray((walk.T @ inner.T).T)
        np.fill_diagonal(similarity, 1.0)
    np.fill_diagonal(similarity, 1.0)
    return similarity


def simrank_naive(
    graph: HeteroGraph,
    decay: float = 0.8,
    iterations: int = 10,
    undirected: bool = True,
) -> np.ndarray:
    """Reference SimRank via the textbook per-pair recursion.

    Dictionary-based, O(iterations * N^2 * d^2): exists purely so the
    test suite can cross-validate the matrix implementation
    (:func:`simrank`) on small graphs -- the same role
    :func:`repro.core.naive.naive_hetesim` plays for HeteSim.
    """
    if not 0 < decay <= 1:
        raise QueryError(f"decay must be in (0, 1], got {decay}")
    if iterations < 0:
        raise QueryError(f"iterations must be >= 0, got {iterations}")
    index = build_global_index(graph)
    adjacency = index.adjacency
    if undirected:
        adjacency = (adjacency + adjacency.T).tocsr()
    size = adjacency.shape[0]
    # In-neighbour lists with column-normalised weights (matching the
    # matrix form's Q = col_normalize(adjacency)).
    normalized = col_normalize(adjacency).tocsc()
    in_neighbors = []
    for node in range(size):
        column = normalized.getcol(node)
        in_neighbors.append(
            list(zip(column.indices.tolist(), column.data.tolist()))
        )

    similarity = np.eye(size)
    for _ in range(iterations):
        updated = np.zeros_like(similarity)
        for a in range(size):
            for b in range(size):
                if a == b:
                    updated[a, b] = 1.0
                    continue
                total = 0.0
                for na, wa in in_neighbors[a]:
                    for nb, wb in in_neighbors[b]:
                        total += wa * wb * similarity[na, nb]
                updated[a, b] = decay * total
        similarity = updated
    np.fill_diagonal(similarity, 1.0)
    return similarity


def simrank_meeting_iterations(
    graph: HeteroGraph,
    relation_name: str,
    hops: int,
    side: str = "source",
) -> List[np.ndarray]:
    """Property 5's per-hop recursion on a bipartite relation ``A -R-> B``.

    The interleaved recursion from the paper's appendix with ``C = 1``:

    * ``S^A_0 = I_A``, ``S^B_0 = I_B``;
    * ``S^A_{k+1} = U_AB S^B_k U_AB'`` (average SimRank of out-neighbour
      pairs), ``S^B_{k+1} = U_BA S^A_k U_BA'``.

    Parameters
    ----------
    side:
        ``"source"`` returns the A-side sequence ``[S^A_1 ... S^A_hops]``;
        ``"target"`` the B-side one.

    The test suite checks ``S^A_k == hetesim_matrix(., (R R^-1)^k,
    normalized=False)`` -- the literal statement of Property 5.
    """
    if hops < 1:
        raise QueryError(f"hops must be >= 1, got {hops}")
    if side not in ("source", "target"):
        raise QueryError(f"side must be 'source' or 'target', got {side!r}")
    relation = graph.schema.relation(relation_name)
    adjacency = graph.adjacency(relation.name)
    u_forward = row_normalize(adjacency)        # U_AB: A -> B
    u_backward = row_normalize(adjacency.T)     # U_BA: B -> A

    s_source = np.eye(u_forward.shape[0])       # S^A_0
    s_target = np.eye(u_backward.shape[0])      # S^B_0
    results: List[np.ndarray] = []
    for _ in range(hops):
        # U S U' via sparse-dense products: (U (U S)')' keeps everything
        # in ndarray form regardless of scipy version.
        new_source = np.asarray((u_forward @ (u_forward @ s_target).T).T)
        new_target = np.asarray((u_backward @ (u_backward @ s_source).T).T)
        s_source, s_target = new_source, new_target
        results.append(s_source if side == "source" else s_target)
    return results
