"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The model is deliberately the Prometheus one -- named metric *families*
carrying labelled child series -- because that is what the exporters in
:mod:`repro.obs.export` emit and what every scraping stack understands:

* :class:`Counter` -- monotonically increasing totals (cache hits,
  halves materialisations, limit trips, injected faults).  Instance
  holders (one cache, one engine) take a labelled child and expose its
  value through their stats types, so per-instance stats are *views
  over* the registry, never parallel bookkeeping.
* :class:`Gauge` -- point-in-time levels (cache entries, held bytes).
* :class:`Histogram` -- fixed cumulative buckets plus sum and count
  (GEMM wall time and nnz, batch group sizes).  Buckets are fixed at
  construction, so merging across processes stays well-defined.

Everything is thread-safe: one lock per child series, one registry
lock for family creation.  There is no background thread and no I/O --
reading happens only when an exporter snapshots the registry.

The module is import-cycle-free by construction: it depends only on the
standard library and :mod:`repro.hin.errors`, so any subsystem may
instrument itself without ordering concerns.
"""

from __future__ import annotations

import bisect
import itertools
import threading
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypedDict,
    Union,
    cast,
)

from ..hin.errors import QueryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "instance_label",
    "export_state",
    "diff_states",
    "merge_delta",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default wall-time buckets (seconds): 100us .. 5s, log-ish spacing.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)
#: Default size buckets (nonzeros / cells): powers of ten.
NNZ_BUCKETS: Tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0
)
#: Default batch group-size buckets: powers of two.
GROUP_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0
)


class Counter:
    """One monotonically increasing series.

    ``reset()`` exists for instance holders whose public API promises a
    counter restart (e.g. :meth:`PathMatrixCache.clear`); exporters see
    the reset like a process restart, which Prometheus rate functions
    already tolerate.
    """

    def __init__(self, labels: LabelPairs = ()) -> None:
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise QueryError(
                f"counters only increase; inc({amount}) is negative"
            )
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the series (instance-holder restart semantics)."""
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """One point-in-time level series."""

    def __init__(self, labels: LabelPairs = ()) -> None:
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the level."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the level by ``-amount``."""
        self.inc(-amount)

    def reset(self) -> None:
        """Zero the level."""
        self.set(0.0)

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket cumulative histogram with sum and count.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    always exists, so every observation lands somewhere.  Bucket counts
    are cumulative at export time (the Prometheus contract); internally
    one non-cumulative slot per bound keeps :meth:`observe` O(log n).
    """

    def __init__(
        self, buckets: Sequence[float], labels: LabelPairs = ()
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise QueryError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise QueryError(
                f"histogram buckets must be strictly increasing: {bounds}"
            )
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._slots = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        slot = bisect.bisect_left(self.bounds, float(value))
        with self._lock:
            self._slots[slot] += 1
            self._sum += float(value)
            self._count += 1

    def reset(self) -> None:
        """Zero all buckets, the sum and the count."""
        with self._lock:
            self._slots = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        with self._lock:
            slots = list(self._slots)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, slot in zip(self.bounds, slots):
            running += slot
            out.append((bound, running))
        out.append((float("inf"), running + slots[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile by intra-bucket interpolation.

        The ``histogram_quantile`` estimate Prometheus applies server
        side, computed locally: find the bucket the target rank lands
        in, then interpolate linearly between its bounds (the first
        bucket interpolates from 0).  Observations above the last
        finite bound clamp to that bound -- the histogram stores no
        upper edge for ``+Inf``.  Returns NaN while the histogram is
        empty, so callers can tell "no data" from "fast".
        """
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"quantile q must be in [0, 1], got {q}")
        with self._lock:
            slots = list(self._slots)
            count = self._count
        if count == 0:
            return float("nan")
        rank = q * count
        cumulative = 0
        for position, slot in enumerate(slots[:-1]):
            previous = cumulative
            cumulative += slot
            if cumulative >= rank:
                lower = self.bounds[position - 1] if position else 0.0
                upper = self.bounds[position]
                if slot == 0:  # pragma: no cover - defensive
                    return upper
                fraction = (rank - previous) / slot
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    def state(self) -> Dict[str, object]:
        """Raw (non-cumulative) state for snapshot / merge transport."""
        with self._lock:
            return {
                "slots": tuple(self._slots),
                "sum": self._sum,
                "count": self._count,
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Add another histogram's raw state (same bucket bounds)."""
        slots = tuple(state["slots"])
        if len(slots) != len(self.bounds) + 1:
            raise QueryError(
                f"cannot merge histogram state with {len(slots)} slots "
                f"into {len(self.bounds) + 1} buckets"
            )
        with self._lock:
            for position, slot in enumerate(slots):
                self._slots[position] += int(slot)
            self._sum += float(state["sum"])
            self._count += int(state["count"])


#: Any concrete child series a family can hold.
MetricChild = Union[Counter, Gauge, Histogram]

#: The kinds that support ``inc`` (histograms only observe).
_Incrementable = Union[Counter, Gauge]

_KINDS: Dict[str, Callable[..., MetricChild]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """All series sharing one metric name (and, for histograms, buckets).

    :meth:`labels` returns (creating on first use) the child series for
    one label combination; calling :meth:`inc` / :meth:`set` /
    :meth:`observe` on the family addresses the unlabelled child, so
    label-free metrics need no ceremony.
    """

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise QueryError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[LabelPairs, MetricChild] = {}

    def labels(self, **labels: str) -> MetricChild:
        """The child series for one label combination (created once)."""
        key: LabelPairs = tuple(
            sorted((k, str(v)) for k, v in labels.items())
        )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    if self.buckets is None:  # pragma: no cover
                        raise QueryError(
                            f"histogram {self.name!r} has no buckets"
                        )
                    child = Histogram(self.buckets, labels=key)
                else:
                    child = _KINDS[self.kind](labels=key)
                self._children[key] = child
            return child

    def children(self) -> List[MetricChild]:
        """Snapshot of every child series, label-sorted."""
        with self._lock:
            return [
                self._children[key] for key in sorted(self._children)
            ]

    # -- unlabelled-child conveniences ---------------------------------
    def inc(self, amount: float = 1.0) -> None:
        """``labels().inc(amount)`` (counters and gauges)."""
        cast(_Incrementable, self.labels()).inc(amount)

    def set(self, value: float) -> None:
        """``labels().set(value)`` (gauges)."""
        cast(Gauge, self.labels()).set(value)

    def dec(self, amount: float = 1.0) -> None:
        """``labels().dec(amount)`` (gauges)."""
        cast(Gauge, self.labels()).dec(amount)

    def observe(self, value: float) -> None:
        """``labels().observe(value)`` (histograms)."""
        cast(Histogram, self.labels()).observe(value)

    @property
    def value(self) -> float:
        """``labels().value`` of the unlabelled child."""
        return cast(_Incrementable, self.labels()).value

    def reset(self) -> None:
        """Reset every child series of the family."""
        for child in self.children():
            child.reset()


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and
    idempotent, so every instrumentation site can declare the family it
    needs without import-order coordination; re-declaring a name under
    a different kind (or different histogram buckets) is a programming
    error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help, kind, buckets=buckets)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise QueryError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        if kind == "histogram" and buckets is not None and family.buckets != tuple(buckets):
            raise QueryError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets}, requested {tuple(buckets)}"
            )
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help, "counter")

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, help, "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family with fixed ``buckets``."""
        return self._family(name, help, "histogram", buckets=buckets)

    def families(self) -> List[MetricFamily]:
        """Snapshot of every family, name-sorted."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Reset every series in every family (tests and benchmarks)."""
        for family in self.families():
            family.reset()


#: The process-wide registry every subsystem instruments into.
REGISTRY = MetricsRegistry()

_INSTANCE_IDS = itertools.count()
_INSTANCE_LOCK = threading.Lock()


class FamilyState(TypedDict):
    """One family's snapshot entry (see :data:`RegistryState`).

    The child payload is deliberately loose (``Any``): a counter child
    is its float total, a histogram child its raw slots/sum/count dict,
    and the whole structure crosses a pickle boundary between worker
    and parent processes.
    """

    kind: str
    help: str
    buckets: Optional[Tuple[float, ...]]
    children: Dict[LabelPairs, Any]


#: Picklable registry snapshot: family name -> kind/help/buckets plus a
#: per-label-key child payload (counter total or raw histogram state).
RegistryState = Dict[str, FamilyState]


def export_state(
    registry: Optional[MetricsRegistry] = None,
) -> RegistryState:
    """Snapshot the *mergeable* series of a registry.

    Counters and histograms are cumulative and therefore merge
    additively across processes; gauges are point-in-time levels whose
    cross-process sum has no meaning, so they are deliberately left out
    of the snapshot (worker gauges describe the worker, not the fleet).
    """
    target = REGISTRY if registry is None else registry
    state: RegistryState = {}
    for family in target.families():
        if family.kind == "gauge":
            continue
        children: Dict[LabelPairs, Any] = {}
        for child in family.children():
            if isinstance(child, Histogram):
                children[child.labels] = child.state()
            elif isinstance(child, Counter):
                children[child.labels] = child.value
        state[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "buckets": family.buckets,
            "children": children,
        }
    return state


def diff_states(
    after: RegistryState, before: RegistryState
) -> RegistryState:
    """``after - before``: the increments recorded between snapshots.

    Children (or whole families) absent from ``before`` count from
    zero; non-positive changes are dropped, so a worker that recorded
    nothing contributes an empty delta.
    """
    delta: RegistryState = {}
    for name, family_after in after.items():
        family_before = before.get(name)
        before_children: Dict[LabelPairs, Any] = (
            family_before["children"] if family_before is not None else {}
        )
        children: Dict[LabelPairs, Any] = {}
        for key, value in family_after["children"].items():
            previous = before_children.get(key)
            if family_after["kind"] == "counter":
                change = float(value) - float(previous or 0.0)
                if change > 0:
                    children[key] = change
            else:
                empty = {
                    "slots": (0,) * len(value["slots"]),
                    "sum": 0.0,
                    "count": 0,
                }
                prior = previous or empty
                slots = tuple(
                    max(0, int(a) - int(b))
                    for a, b in zip(value["slots"], prior["slots"])
                )
                count = int(value["count"]) - int(prior["count"])
                total = float(value["sum"]) - float(prior["sum"])
                if count > 0 or any(slots):
                    children[key] = {
                        "slots": slots,
                        "sum": total,
                        "count": count,
                    }
        if children:
            delta[name] = {
                "kind": family_after["kind"],
                "help": family_after["help"],
                "buckets": family_after["buckets"],
                "children": children,
            }
    return delta


def merge_delta(
    delta: RegistryState,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold a :func:`diff_states` delta into a registry additively.

    Families and labelled children are created on demand (with the
    help text and buckets recorded in the delta), so a parent registry
    absorbs series its own process never touched.
    """
    target = REGISTRY if registry is None else registry
    for name, family_delta in delta.items():
        if family_delta["kind"] == "counter":
            family = target.counter(name, family_delta["help"])
            for key, change in family_delta["children"].items():
                child = family.labels(**dict(key))
                cast(Counter, child).inc(float(change))
        else:
            buckets = family_delta["buckets"]
            if buckets is None:  # pragma: no cover - deltas carry buckets
                raise QueryError(
                    f"histogram delta {name!r} carries no bucket bounds"
                )
            family = target.histogram(
                name, family_delta["help"], buckets=buckets
            )
            for key, state in family_delta["children"].items():
                child = family.labels(**dict(key))
                cast(Histogram, child).merge_state(state)


def instance_label(prefix: str) -> str:
    """A short process-unique label value (``"c0"``, ``"e3"``, ...).

    Instance holders (each cache, each engine) label their child series
    with one of these so per-instance stats views and the exported
    series stay distinguishable.  Sequential, not ``id()``-derived, so
    labels never collide through address reuse.
    """
    with _INSTANCE_LOCK:
        return f"{prefix}{next(_INSTANCE_IDS)}"
