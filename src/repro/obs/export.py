"""Prometheus text-format and JSON emitters over a metrics registry.

Both emitters work on a point-in-time snapshot of a
:class:`~repro.obs.metrics.MetricsRegistry` (the process-wide
:data:`~repro.obs.metrics.REGISTRY` by default):

* :func:`prometheus_text` -- the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
  ``# HELP`` / ``# TYPE`` headers, one sample line per series,
  histograms expanded to cumulative ``_bucket{le=...}`` samples plus
  ``_sum`` and ``_count``.  The output is byte-stable for a fixed
  registry state (families name-sorted, children label-sorted), so
  golden-file tests are exact.
* :func:`json_snapshot` / :func:`render_json` -- the same information
  as a plain dict / JSON document, for the benchmark dumps uploaded
  next to ``BENCH_serve.json`` and for programmatic assertions.

Emission never mutates the registry and takes each series' lock only
long enough to copy its numbers.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelPairs,
    MetricChild,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "prometheus_text",
    "json_snapshot",
    "render_json",
]

#: The exact content type a Prometheus scraper expects from a
#: ``/metrics`` endpoint (text exposition format 0.0.4).  Serving
#: anything else -- a bare ``text/plain``, a missing ``version`` --
#: makes strict scrapers fall back to protobuf negotiation or reject
#: the target, so the HTTP tier reuses this constant verbatim and a
#: golden test pins the bytes.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _label_text(labels: LabelPairs, extra: str = "") -> str:
    """``{k="v",...}`` rendering (empty string for no labels)."""
    parts = [f'{key}="{_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _bound_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    registry = REGISTRY if registry is None else registry
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child in family.children():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = f'le="{_bound_text(bound)}"'
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_text(child.labels, le)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_label_text(child.labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_text(child.labels)} "
                    f"{child.count}"
                )
            elif isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_label_text(child.labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def _child_dict(family: MetricFamily, child: MetricChild) -> Dict[str, Any]:
    node: Dict[str, Any] = {"labels": dict(child.labels)}
    if isinstance(child, Histogram):
        node["count"] = child.count
        node["sum"] = child.sum
        node["buckets"] = [
            {"le": _bound_text(bound), "count": cumulative}
            for bound, cumulative in child.cumulative()
        ]
    else:
        node["value"] = child.value
    return node


def json_snapshot(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """The registry as a JSON-ready dict keyed by metric name."""
    registry = REGISTRY if registry is None else registry
    snapshot: Dict[str, Any] = {}
    for family in registry.families():
        snapshot[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "series": [
                _child_dict(family, child) for child in family.children()
            ],
        }
    return snapshot


def render_json(
    registry: Optional[MetricsRegistry] = None, indent: int = 2
) -> str:
    """:func:`json_snapshot` serialised (stable key order)."""
    return json.dumps(
        json_snapshot(registry), indent=indent, sort_keys=True
    )
