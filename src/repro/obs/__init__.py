"""repro.obs: the unified observability layer (tracing + metrics).

Every subsystem the serving stack touches -- the planned backend, the
path-matrix cache, the engine's half-matrix memo, batch scoring, the
degradation ladder, limit enforcement and fault injection -- reports
into the two primitives of this package:

* :mod:`repro.obs.trace` -- contextvar-scoped spans.  A
  :class:`~repro.obs.trace.Span` wraps one unit of work (a plan step, a
  halves materialisation, a batch group's GEMM, one degradation-ladder
  rung) and nests under the ambient parent span; worker threads adopt
  the submitting thread's span the same way they adopt the ambient
  :class:`~repro.runtime.limits.ExecutionContext` (see
  :meth:`repro.serve.dispatch.Dispatcher.map`), so one request's tree
  stays connected across the pool.  Tracing is **off by default** and
  the disabled fast path is a single attribute read.
* :mod:`repro.obs.metrics` -- a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket histograms, always on (counter bumps are one locked
  add).  The pre-existing stats types (``CacheStats``, ``BatchStats``,
  the engine's materialisation count) are *views over* these series
  rather than parallel bookkeeping, so the numbers a test asserts on
  and the numbers an operator scrapes can never diverge.
* :mod:`repro.obs.export` -- Prometheus text-format and JSON emitters
  over a registry snapshot, behind the ``hetesim metrics`` /
  ``hetesim trace`` CLI commands and the benchmark metric dumps.

The package needs nothing beyond the standard library and
:mod:`repro.hin.errors`, so importing it can never create a cycle with
the subsystems it instruments.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    TRACER,
    adopt_span,
    current_span,
    span,
)
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    prometheus_text,
    render_json,
)

__all__ = [
    "Counter",
    "PROMETHEUS_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "adopt_span",
    "current_span",
    "json_snapshot",
    "prometheus_text",
    "render_json",
    "span",
]
