"""Contextvar-scoped execution spans for the serving hot paths.

A :class:`Span` measures one unit of work -- a plan step, a halves
materialisation, a batch group's block GEMM, one rung of the
degradation ladder -- and nests under the span that was ambient when it
started, forming the per-request tree ``serve-batch --trace`` and
``hetesim trace`` print.

The design constraints, in order:

1. **Free when off.**  Tracing is disabled by default;
   :meth:`Tracer.span` then returns a shared no-op context manager
   whose enter/exit do nothing, so instrumenting a hot loop costs one
   attribute read per iteration.
2. **Thread-propagated.**  The ambient span lives in a
   :mod:`contextvars` variable, which does not cross thread
   boundaries.  The serving layer's
   :class:`~repro.serve.dispatch.Dispatcher` therefore captures
   :func:`current_span` at submit time and wraps every pooled task in
   :func:`adopt_span` -- exactly the discipline
   :func:`repro.runtime.limits.adopt_context` established for limits
   and fault plans, and enforced by lint rule RPR005.  Child spans
   started on worker threads attach to the shared parent under a lock.
3. **Bounded.**  Completed root spans are kept in a fixed-size ring
   (:data:`ROOT_LIMIT`); a long-lived tracer never grows without
   bound.

Timing uses :func:`time.perf_counter` (a duration clock, not a
wall-clock read -- RPR003 compliant).
"""

from __future__ import annotations

import contextlib
import threading
import time
from contextvars import ContextVar, Token
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "ROOT_LIMIT",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "TRACER",
    "adopt_span",
    "current_span",
    "span",
]

#: Completed root spans a tracer retains (oldest evicted first).
ROOT_LIMIT = 64


class Span:
    """One timed, attributed node of a trace tree.

    Children may be appended from several threads at once (the batch
    dispatcher fans one request's groups across a pool), so the child
    list append is lock-guarded.  Attribute writes happen only from the
    owning thread (the one inside the ``with`` block) and need no lock.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "error",
        "_started",
        "seconds",
        "_children_lock",
    )

    def __init__(self, name: str, **attributes: Any) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List["Span"] = []
        self.error: Optional[str] = None
        self.seconds: Optional[float] = None
        self._started = time.perf_counter()
        self._children_lock = threading.Lock()

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def add_child(self, child: "Span") -> None:
        """Attach a completed or in-flight child (thread-safe)."""
        with self._children_lock:
            self.children.append(child)

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Stamp the duration (idempotent) and any terminating error."""
        if self.seconds is None:
            self.seconds = time.perf_counter() - self._started
        if error is not None and self.error is None:
            self.error = f"{type(error).__name__}: {error}"

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0.0 while still running)."""
        return (self.seconds or 0.0) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested rendering of the subtree."""
        node: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": self.duration_ms,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.error:
            node["error"] = self.error
        with self._children_lock:
            children = list(self.children)
        if children:
            node["children"] = [child.to_dict() for child in children]
        return node

    @classmethod
    def from_dict(cls, node: Dict[str, Any]) -> "Span":
        """Rebuild a span subtree from its :meth:`to_dict` payload.

        The cross-process grafting primitive: a worker serialises the
        spans it recorded, and the parent rebuilds them and attaches
        the result under its own ambient span, keeping one request tree
        across the pool.  Durations carry over verbatim; the rebuilt
        span is already finished.
        """
        rebuilt = cls(node["name"], **node.get("attributes", {}))
        rebuilt.seconds = node.get("duration_ms", 0.0) / 1e3
        rebuilt.error = node.get("error")
        for child in node.get("children", ()):
            rebuilt.add_child(cls.from_dict(child))
        return rebuilt

    def render(self, indent: int = 0) -> str:
        """Human-readable indented subtree (the ``--trace`` output)."""
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(self.attributes.items())
        )
        line = f"{'  ' * indent}{self.name}  {self.duration_ms:.3f} ms"
        if attrs:
            line += f"  [{attrs}]"
        if self.error:
            line += f"  !{self.error}"
        with self._children_lock:
            children = list(self.children)
        return "\n".join(
            [line, *(child.render(indent + 1) for child in children)]
        )


class NullSpan:
    """The shared do-nothing span handed out while tracing is off.

    Accepts the whole :class:`Span` surface so instrumented code never
    branches on the tracer state.
    """

    __slots__ = ()

    name = ""
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    error = None
    seconds = 0.0
    duration_ms = 0.0

    def set(self, **attributes: Any) -> "NullSpan":
        """No-op; returns self."""
        return self

    def add_child(self, child: Span) -> None:
        """No-op."""

    def finish(self, error: Optional[BaseException] = None) -> None:
        """No-op."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The singleton no-op span/context-manager.
NULL_SPAN = NullSpan()

_ACTIVE: ContextVar[Optional[Span]] = ContextVar(
    "repro_active_span", default=None
)


class _SpanScope:
    """Context manager that installs a live span as the ambient one."""

    __slots__ = ("tracer", "span", "_token", "_is_root")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span
        self._token: Optional[Token[Optional[Span]]] = None
        self._is_root = False

    def __enter__(self) -> Span:
        parent = _ACTIVE.get()
        if parent is not None:
            parent.add_child(self.span)
        else:
            self._is_root = True
        self._token = _ACTIVE.set(self.span)
        return self.span

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        self.span.finish(error=exc)
        if self._is_root:
            self.tracer._retain_root(self.span)
        return None


class Tracer:
    """Factory and retention buffer for spans.

    Disabled by default; :meth:`enable` turns span recording on for the
    whole process.  Completed spans with no parent are retained in
    :attr:`roots` (a bounded ring) for the CLI to print.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._roots_lock = threading.Lock()
        self.roots: List[Span] = []

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording spans (retained roots survive)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every retained root span."""
        with self._roots_lock:
            self.roots.clear()

    # -- span creation -------------------------------------------------
    def span(
        self, name: str, **attributes: Any
    ) -> Union[NullSpan, "_SpanScope"]:
        """A context manager measuring one unit of work.

        Disabled tracer: returns the shared no-op manager (one
        attribute read, no allocation).  Enabled: creates a
        :class:`Span`, attaches it to the ambient parent, installs it
        as ambient for the block, and finishes it (recording any
        in-flight exception type) on exit.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanScope(self, Span(name, **attributes))

    def _retain_root(self, span: Span) -> None:
        """Keep a completed parentless span in the bounded root ring.

        Spans adopted into worker threads always have an ambient parent
        there (the dispatcher installs it), so they are attached as
        children and never reach this path.
        """
        with self._roots_lock:
            self.roots.append(span)
            del self.roots[:-ROOT_LIMIT]


#: The process-wide tracer all library instrumentation uses.
TRACER = Tracer()


def span(name: str, **attributes: Any) -> Union[NullSpan, _SpanScope]:
    """``TRACER.span(...)`` -- the form instrumentation sites import."""
    return TRACER.span(name, **attributes)


def current_span() -> Optional[Span]:
    """The ambient :class:`Span`, or None outside any span (or when
    tracing is disabled)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def adopt_span(parent: Optional[Span]) -> Iterator[Optional[Span]]:
    """Install an *existing* span as this thread's ambient parent.

    The cross-thread propagation primitive, used exactly like
    :func:`repro.runtime.limits.adopt_context`: the dispatcher captures
    :func:`current_span` in the submitting thread and wraps each pooled
    task in ``adopt_span(captured)``, so spans started inside workers
    attach to the same request tree.  ``adopt_span(None)`` is a no-op
    scope.
    """
    token = _ACTIVE.set(parent)
    try:
        yield parent
    finally:
        _ACTIVE.reset(token)
