"""EXPERIMENTS.md generator: paper-vs-measured for every table/figure.

``python -m repro.experiments report`` runs every registered experiment
and writes an EXPERIMENTS.md that pairs the paper's reported result
(shape) with the value measured on the synthetic substitute datasets.
Absolute numbers are not expected to match (the paper ran on the real
ACM/DBLP crawls); the *shape* — who wins, by roughly what factor, where
the anomalies appear — is the reproduction target and is what each
"measured" line reports.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .registry import ExperimentResult, get_experiment

__all__ = ["generate_report"]


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def _table1(result: ExperimentResult) -> List[str]:
    profiles = result.data["profiles"]
    terms = ", ".join(k for k, _ in profiles["APT"][:3])
    return [
        "**Paper:** profiling C. Faloutsos surfaces KDD/SIGMOD/VLDB as his"
        " conferences (APVC), mining/patterns/scalable/graphs/social as his"
        " terms (APT), H.2/E.2 as his subjects (APS), and himself (score 1)"
        " followed by his students as closest co-authors (APA).",
        f"**Measured (hub persona):** top conference = "
        f"{profiles['APVC'][0][0]} then "
        f"{', '.join(k for k, _ in profiles['APVC'][1:4])}; top terms = "
        f"{terms}; top subject = {profiles['APS'][0][0]}; APA ranks the hub"
        f" first with score {_fmt(profiles['APA'][0][1])} followed by "
        f"{profiles['APA'][1][0]}.",
    ]


def _table2(result: ExperimentResult) -> List[str]:
    profiles = result.data["profiles"]
    similar = [k for k, _ in profiles["CVPAPVC"]]
    return [
        "**Paper:** profiling KDD surfaces its most active authors (CVPA),"
        " CMU/IBM-style affiliations (CVPAF), H.2/I.5 subjects (CVPS), and"
        " VLDB/SIGMOD/WWW/CIKM as the most similar conferences through"
        " shared authors (CVPAPVC, KDD itself scoring 1).",
        f"**Measured:** top author = {profiles['CVPA'][0][0]}; top"
        f" affiliation = {profiles['CVPAF'][0][0]}; top subject = "
        f"{profiles['CVPS'][0][0]}; similar conferences = "
        f"{similar[0]} (score {_fmt(profiles['CVPAPVC'][0][1])}) then "
        f"{', '.join(similar[1:5])}.",
    ]


def _table3(result: ExperimentResult) -> List[str]:
    records = result.data["records"]
    stars = [r for r in records if r["role"] == "influential"]
    young = [r for r in records if r["role"] == "young"]
    star_range = (
        min(r["hetesim"] for r in stars), max(r["hetesim"] for r in stars)
    )
    return [
        "**Paper:** HeteSim gives one symmetric score per author-conference"
        " pair; influential researchers score similarly across areas"
        " (0.1185-0.1225) and young researchers lower (0.073-0.079)."
        " PCRW's two directions conflict: Yan Chen tops APVC (1.0) but is"
        " smallest on CVPA.",
        f"**Measured:** influential scores in "
        f"[{_fmt(star_range[0])}, {_fmt(star_range[1])}] (ratio "
        f"{_fmt(star_range[1] / star_range[0], 2)}); young scores "
        f"{', '.join(_fmt(r['hetesim']) for r in young)} — lower but"
        " solid. PCRW forward saturates at "
        f"{_fmt(max(r['pcrw_apvc'] for r in young), 2)} for the young"
        " personas while their backward scores are among the smallest —"
        " the same conflict.",
    ]


def _table4(result: ExperimentResult) -> List[str]:
    data = result.data
    return [
        "**Paper:** under APVCVPA, HeteSim ranks Faloutsos first (1.0) then"
        " distribution-peers (Parthasarathy, Xifeng Yan); PathSim ranks him"
        " first then reputation-peers (P. Yu, J. Han); PCRW violates"
        " self-maximum — Aggarwal and Han outrank Faloutsos himself.",
        f"**Measured:** HeteSim: {data['hetesim'][0][0]} (1.0) then "
        f"{data['hetesim'][1][0]}, {data['hetesim'][2][0]} (the planted"
        f" peers). PathSim: self first then "
        f"{data['pathsim'][1][0]}, {data['pathsim'][2][0]} (heavy"
        f" publishers). PCRW: {data['pcrw'][0][0]} and {data['pcrw'][1][0]}"
        f" outrank the query author, who falls to rank "
        f"{data['pcrw_self_rank']} — the same self-maximum violation.",
    ]


def _table5(result: ExperimentResult) -> List[str]:
    records = result.data["records"]
    mean_h = sum(r["hetesim"] for r in records) / len(records)
    mean_p = sum(r["pcrw"] for r in records) / len(records)
    return [
        "**Paper:** AUC of conference→author relevance (CPA) on DBLP;"
        " HeteSim beats PCRW on all 9 conferences (e.g. KDD 0.8111 vs"
        " 0.8030; SDM 0.9504 vs 0.9390).",
        f"**Measured:** HeteSim >= PCRW on {result.data['wins']}/9"
        f" conferences; mean AUC {_fmt(mean_h, 4)} vs {_fmt(mean_p, 4)}"
        " — same direction, similar small-but-consistent margin.",
    ]


def _table6(result: ExperimentResult) -> List[str]:
    records = result.data["records"]
    return [
        "**Paper:** NCut clustering NMI on DBLP — venue: HeteSim 0.7683 vs"
        " PathSim 0.8162; author: 0.7288 vs 0.6725; paper: 0.4989 vs"
        " 0.3833. HeteSim wins authors and papers; paper clustering is the"
        " weakest task.",
        "**Measured:** venue: "
        f"{_fmt(records['venue']['hetesim'], 4)} vs "
        f"{_fmt(records['venue']['pathsim'], 4)}; author: "
        f"{_fmt(records['author']['hetesim'], 4)} vs "
        f"{_fmt(records['author']['pathsim'], 4)}; paper: "
        f"{_fmt(records['paper']['hetesim'], 4)} vs "
        f"{_fmt(records['paper']['pathsim'], 4)}. HeteSim >= PathSim on"
        " authors and papers and paper clustering is clearly hardest —"
        " the paper's shape (our planted areas are cleaner, so absolute"
        " NMIs run higher).",
    ]


def _table7(result: ExperimentResult) -> List[str]:
    data = result.data
    return [
        "**Paper:** for KDD, CVPA ranks raw in-conference publication"
        " records (Faloutsos first, 32 papers); CVPAPA ranks authors with"
        " the most active co-author groups — Aggarwal jumps to first with"
        " only 13 KDD papers.",
        f"**Measured:** CVPA top = {data['cvpa'][0][0]} (the planted"
        f" heavy publisher); CVPAPA moves {data['group_author']} from rank"
        f" {data['group_rank_cvpa']} to rank {data['group_rank_cvpapa']}"
        " — the same semantics shift.",
    ]


def _fig5(result: ExperimentResult) -> List[str]:
    return [
        "**Paper (method section):** on the Fig. 5(a) bipartite example,"
        " raw HeteSim gives a2 the row (0, 0.17, 0.33, 0.17) -- equal"
        " linkage but unequal relatedness -- yet a2's self-relatedness is"
        " only 0.33, which Definition 10's normalisation fixes"
        " (Fig. 5(d)).",
        f"**Measured:** the raw matrix matches digit for digit"
        f" (raw(a2, a2) = {_fmt(result.data['raw_a2_self'], 2)});"
        f" {result.data['raw_self_below_one']} objects have raw"
        " self-relatedness below 1 and the normalised measure has"
        f" {result.data['normalized_self_below_one']}.",
    ]


def _fig6(result: ExperimentResult) -> List[str]:
    records = result.data["records"]
    mean_h = sum(r["hetesim"] for r in records) / len(records)
    mean_p = sum(r["pcrw"] for r in records) / len(records)
    return [
        "**Paper:** average rank difference from the publication-count"
        " ground truth over 14 conferences (top-200 authors); HeteSim's"
        " bars are lower than PCRW's nearly everywhere.",
        f"**Measured:** HeteSim <= PCRW on {result.data['wins']}/14"
        f" conferences; mean displacement {_fmt(mean_h, 2)} vs "
        f"{_fmt(mean_p, 2)} — same winner, same rough margin.",
    ]


def _fig7(result: ExperimentResult) -> List[str]:
    cosines = result.data["cosines_to_hub"]
    peers = max(cosines["peer-author-1"], cosines["peer-author-2"])
    broad = max(cosines["broad-author-1"], cosines["broad-author-2"])
    return [
        "**Paper:** the APVC reach distributions of Parthasarathy and"
        " Xifeng Yan over the 14 conferences hug Faloutsos's (concentrated"
        " on KDD), while P. Yu's and J. Han's are spread out — explaining"
        " Table 4's HeteSim ranking.",
        f"**Measured:** cosine to the hub's distribution: peers up to "
        f"{_fmt(peers)} vs broad authors up to {_fmt(broad)} — the peer"
        " curves hug the hub's, the broad curves don't.",
    ]


def _robustness(result: ExperimentResult) -> List[str]:
    records = result.data["records"]
    strongest = max(records, key=lambda r: r["signal"])
    weakest = min(records, key=lambda r: r["signal"])
    return [
        "**Paper (implied):** the qualitative orderings (HeteSim >= PCRW"
        " on AUC, HeteSim >= PathSim on author clustering) should not"
        " hinge on how clean the community signal is.",
        f"**Measured (sweep of within-area probability"
        f" {weakest['signal']:.2f}..{strongest['signal']:.2f}):** the AUC"
        " ordering holds at "
        + ("every" if result.data["auc_stable"] else "not every")
        + " level while absolute AUC degrades from "
        f"{_fmt(strongest['auc_hetesim'], 3)} to"
        f" {_fmt(weakest['auc_hetesim'], 3)} -- the claims are"
        " noise-stable, the numbers are dataset-dependent.",
    ]


def _citations(result: ExperimentResult) -> List[str]:
    return [
        "**Paper (beyond):** the real ACM data carries paper-to-paper"
        " citations the paper never exploits; path semantics should"
        " extend to them, with HeteSim's symmetry linking the two"
        " citation directions.",
        f"**Measured:** HeteSim(a, b | citing) equals HeteSim(b, a |"
        f" cited-by) to {result.data['symmetry_error']:.1e}; the"
        f" citation top-8 shares {result.data['overlap_with_copub']}"
        " authors with the co-publication top-8 -- related but distinct"
        " semantics, exactly the path-dependence thesis.",
    ]


def _complexity(result: ExperimentResult) -> List[str]:
    scaling = result.data["scaling"]
    material = result.data["materialization"]
    first, last = scaling[0], scaling[-1]
    return [
        "**Paper (analytical):** HeteSim computes one path in O(l d n²);"
        " SimRank iterates all typed pairs in O(k d n² T⁴). Materialising"
        " partial path matrices makes on-line queries cheap (§4.6).",
        f"**Measured:** SimRank/HeteSim runtime ratio grows from "
        f"{_fmt(first['ratio'], 1)}x at n={first['size']} to "
        f"{_fmt(last['ratio'], 1)}x at n={last['size']}; materialised"
        f" halves answer the APVCVPA-style query "
        f"{_fmt(material['speedup'], 1)}x faster than recomputing the"
        " chain.",
    ]


_SECTIONS: Dict[str, Callable[[ExperimentResult], List[str]]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "robustness": _robustness,
    "citations": _citations,
    "complexity": _complexity,
}

_HEADER = """# EXPERIMENTS — paper vs measured

Generated by ``python -m repro.experiments report`` (seed {seed}).

The paper evaluated on crawls of the ACM digital library and DBLP; this
reproduction runs on seeded synthetic networks that plant the structure
each experiment measures (see DESIGN.md, "Substitutions").  Absolute
numbers therefore differ; the reproduction target is the *shape* of each
result — who wins, by roughly what factor, where the anomalies appear —
and every section below records both the paper's shape and the measured
one.  Full rendered tables for each experiment:
``python -m repro.experiments all``.
"""


def generate_report(seed: int = 0) -> str:
    """Run all experiments and return the EXPERIMENTS.md content."""
    parts = [_HEADER.format(seed=seed)]
    for experiment_id, renderer in _SECTIONS.items():
        result = get_experiment(experiment_id)(seed=seed)
        parts.append(f"## {result.title}\n")
        parts.append("\n\n".join(renderer(result)))
        parts.append("")
    return "\n".join(parts)
