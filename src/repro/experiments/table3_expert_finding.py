"""Table 3: expert finding through relative importance of object pairs.

The paper scores six author-conference pairs under the APVC / CVPA paths
(same semantics, opposite directions) with HeteSim and PCRW.  HeteSim
returns one symmetric value per pair, so scores are comparable across
research areas (influential researchers get similar scores in each
community; promising young researchers get smaller-but-solid scores).
PCRW returns two conflicting values -- the young authors' forward score
saturates at 1.0 (all their papers are in the one conference) while their
backward score is among the smallest.

We use the planted personas: the per-conference stars are the influential
researchers, the ``*-young`` personas the promising young ones.
"""

from __future__ import annotations

from typing import List, Tuple

from ..baselines.pcrw import pcrw_pair
from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: The six (author, conference) pairs, mirroring Table 3's roles.
def pairs_for(network) -> List[Tuple[str, str, str]]:
    """(role, author, conference) rows for the expert-finding table."""
    return [
        ("influential", network.personas["hub_author"], "KDD"),
        ("influential", "SIGIR-star", "SIGIR"),
        ("influential", "SIGMOD-star", "SIGMOD"),
        ("influential", "SODA-star", "SODA"),
        ("young", network.personas["young_sigir"], "SIGIR"),
        ("young", network.personas["young_sigcomm"], "SIGCOMM"),
    ]


@experiment("table3")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate Table 3 on the synthetic ACM network."""
    network, engine = acm_engine(seed)
    graph = network.graph
    forward = engine.path("APVC")
    backward = engine.path("CVPA")

    rows = []
    records = []
    for role, author, conference in pairs_for(network):
        hetesim_score = engine.relevance(author, conference, forward)
        # Symmetric by Property 3: the CVPA direction gives the same value.
        hetesim_check = engine.relevance(conference, author, backward)
        pcrw_forward = pcrw_pair(graph, forward, author, conference)
        pcrw_backward = pcrw_pair(graph, backward, conference, author)
        records.append(
            {
                "role": role,
                "author": author,
                "conference": conference,
                "hetesim": hetesim_score,
                "hetesim_reverse": hetesim_check,
                "pcrw_apvc": pcrw_forward,
                "pcrw_cvpa": pcrw_backward,
            }
        )
        rows.append(
            (
                f"{author} / {conference}",
                role,
                format_score(hetesim_score),
                format_score(pcrw_forward),
                format_score(pcrw_backward, digits=5),
            )
        )

    table = render_table(
        ["Pair", "Role", "HeteSim (APVC = CVPA)", "PCRW APVC", "PCRW CVPA"],
        rows,
    )
    title = "Table 3: author-conference relatedness, HeteSim vs PCRW"
    note = (
        "HeteSim is symmetric (one comparable value per pair); PCRW's two\n"
        "directions conflict: the young authors top the APVC column yet\n"
        "trail in the CVPA column."
    )
    return ExperimentResult(
        experiment_id="table3",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={"records": records},
    )
