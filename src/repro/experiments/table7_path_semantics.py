"""Table 7: path semantics -- top-10 authors for KDD, CVPA vs CVPAPA.

The same query ("who is most related to KDD?") under two paths with
different semantics: CVPA (conferences publishing papers *written by*
the author -- raw activity) vs CVPAPA (conferences publishing papers by
the author's *co-authors* -- the most active co-author group).  Expected
shape, as in the paper: the heavy publishers top CVPA, while the planted
*group author* (moderate own record, prolific co-author group -- the
C. Aggarwal analogue) jumps to the top of CVPAPA.
"""

from __future__ import annotations

from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

TOP_K = 10


@experiment("table7")
def run(seed: int = 0, conference: str = "KDD") -> ExperimentResult:
    """Regenerate Table 7 on the synthetic ACM network."""
    network, engine = acm_engine(seed)

    cvpa = engine.top_k(conference, "CVPA", k=TOP_K)
    cvpapa = engine.top_k(conference, "CVPAPA", k=TOP_K)

    rows = [
        (
            rank + 1,
            f"{cvpa[rank][0]} ({format_score(cvpa[rank][1])})",
            f"{cvpapa[rank][0]} ({format_score(cvpapa[rank][1])})",
        )
        for rank in range(TOP_K)
    ]
    table = render_table(["Rank", "CVPA", "CVPAPA"], rows)

    group = network.personas["group_author"]

    def rank_of(ranking, key):
        full = engine.rank(conference, ranking)
        return next(
            (i + 1 for i, (k, _) in enumerate(full) if k == key), None
        )

    group_cvpa = rank_of("CVPA", group)
    group_cvpapa = rank_of("CVPAPA", group)
    title = (
        f"Table 7: top-{TOP_K} authors related to {conference!r} "
        "under CVPA vs CVPAPA"
    )
    note = (
        f"The group author {group!r} moves from rank {group_cvpa} (CVPA) "
        f"to rank {group_cvpapa} (CVPAPA): the co-author-group semantics "
        "of the longer path."
    )
    return ExperimentResult(
        experiment_id="table7",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={
            "conference": conference,
            "cvpa": cvpa,
            "cvpapa": cvpapa,
            "group_author": group,
            "group_rank_cvpa": group_cvpa,
            "group_rank_cvpapa": group_cvpapa,
        },
    )
