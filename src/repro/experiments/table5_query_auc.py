"""Table 5: AUC of conference-to-author relevance search (CPA path).

On the labelled DBLP-like network, rank every author for each of 9
representative conferences by HeteSim and by PCRW under the CPA path;
score each ranking's AUC against the binary labels "author belongs to the
conference's research area".  The paper finds HeteSim consistently above
PCRW on all 9 conferences -- the shape this experiment checks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..baselines.pcrw import pcrw_matrix
from ..learning.auc import auc_score
from .data import dblp_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: The nine representative conferences of Table 5 that exist in our
#: four-area generator (we swap AAAI's area-mates where names differ).
CONFERENCES_9: List[str] = [
    "KDD", "ICDM", "SDM", "SIGMOD", "VLDB", "ICDE", "AAAI", "IJCAI", "SIGIR",
]


@experiment("table5")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate Table 5 on the synthetic DBLP network."""
    network, engine = dblp_engine(seed)
    graph = network.graph
    path = engine.path("CPA")

    hetesim_scores = engine.relevance_matrix(path)
    pcrw_scores = pcrw_matrix(graph, path)
    authors = graph.node_keys("author")

    rows = []
    records = []
    for conference in CONFERENCES_9:
        conf_index = graph.node_index("conference", conference)
        area = network.conference_labels[conference]
        labels = [
            1 if network.author_labels[author] == area else 0
            for author in authors
        ]
        auc_hetesim = auc_score(labels, hetesim_scores[conf_index])
        auc_pcrw = auc_score(labels, pcrw_scores[conf_index])
        records.append(
            {
                "conference": conference,
                "hetesim": auc_hetesim,
                "pcrw": auc_pcrw,
            }
        )
        rows.append(
            (
                conference,
                format_score(auc_hetesim),
                format_score(auc_pcrw),
                "+" if auc_hetesim >= auc_pcrw else "-",
            )
        )

    wins = sum(1 for r in records if r["hetesim"] >= r["pcrw"])
    table = render_table(
        ["Conference", "HeteSim AUC", "PCRW AUC", "HeteSim >="], rows
    )
    from ..learning.significance import sign_test

    significance = sign_test(
        [r["hetesim"] for r in records], [r["pcrw"] for r in records]
    )
    title = "Table 5: AUC of conference->author relevance (CPA path)"
    note = (
        f"HeteSim >= PCRW on {wins}/{len(records)} conferences "
        f"(sign test p = {significance.p_value:.4f})."
    )
    return ExperimentResult(
        experiment_id="table5",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={
            "records": records,
            "wins": wins,
            "sign_test_p": significance.p_value,
        },
    )
