"""Extension experiment: citation-path semantics (beyond the paper).

The real ACM dataset carries paper-to-paper citations; the paper's
experiments never use them, but they make a sharp demonstration of the
path-semantics thesis on a relation the compact path strings cannot even
express (a self-relation needs explicit relation names).  Three
author-to-author relations are compared for the hub author:

* co-publication venues: ``APVCVPA`` (the Table 4 path);
* *citing*: ``writes o cites o writes^-1`` -- authors whose work the
  query author cites;
* *cited-by*: ``writes o cites^-1 o writes^-1`` -- authors citing the
  query author's work.

The two citation directions give different rankings under PCRW but --
being reverses of each other -- are linked by HeteSim's symmetry:
``HeteSim(a, b | citing) == HeteSim(b, a | cited-by)``, which the
experiment verifies on every reported pair.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.engine import HeteSimEngine
from ..datasets.acm import make_acm_network
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

TOP_K = 8


@lru_cache(maxsize=2)
def _cited_network(seed: int):
    network = make_acm_network(seed=seed, with_citations=True)
    return network, HeteSimEngine(network.graph)


@experiment("citations")
def run(seed: int = 0) -> ExperimentResult:
    """Compare co-publication and citation relevance paths."""
    network, engine = _cited_network(seed)
    graph = network.graph
    hub = network.personas["hub_author"]

    copub = graph.schema.path("APVCVPA")
    citing = graph.schema.path(["writes", "cites", "writes^-1"])
    cited_by = citing.reverse()

    rankings = {
        "co-publication (APVCVPA)": engine.top_k(hub, copub, k=TOP_K),
        "citing": engine.top_k(hub, citing, k=TOP_K),
        "cited-by": engine.top_k(hub, cited_by, k=TOP_K),
    }
    rows = []
    for rank in range(TOP_K):
        rows.append(
            [rank + 1]
            + [
                f"{ranking[rank][0]} ({format_score(ranking[rank][1])})"
                for ranking in rankings.values()
            ]
        )
    table = render_table(["Rank"] + list(rankings), rows)

    # Property 3 across the two citation directions, on the top pairs.
    symmetry_error = max(
        abs(
            engine.relevance(hub, author, citing)
            - engine.relevance(author, hub, cited_by)
        )
        for author, _ in rankings["citing"]
    )
    overlap = len(
        {k for k, _ in rankings["citing"]}
        & {k for k, _ in rankings["co-publication (APVCVPA)"]}
    )
    title = (
        "Extension: citation-path relevance for the hub author "
        "(relation-name paths over a self-relation)"
    )
    note = (
        f"HeteSim(a, b | citing) == HeteSim(b, a | cited-by) up to "
        f"{symmetry_error:.2e} on the reported pairs; the citation and "
        f"co-publication top-{TOP_K} share {overlap} authors -- related "
        "but distinct semantics."
    )
    return ExperimentResult(
        experiment_id="citations",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={
            "rankings": {
                label: ranking for label, ranking in rankings.items()
            },
            "symmetry_error": symmetry_error,
            "overlap_with_copub": overlap,
        },
    )
