"""Cross-measure comparison: every registered plugin on one query.

The TKDE HeteSim paper positions HeteSim inside a family of path-based
relevance measures (PathSim, PCRW, PPR; Tables 4 and 6 contrast them);
the measure-plugin registry makes that comparison one loop.  The
experiment runs each registered measure on the same top-k query over a
symmetric author-author path on the synthetic ACM network, plus a
weighted ``combined`` multi-path query, and reports each measure's
top-k overlap with HeteSim's.

Expected shape on the planted personas: PathSim overlaps HeteSim
heavily but reorders by volume, PCRW/ReachProb agree with each other
exactly and violate the self-maximum, and the path-blind PPR diverges
the most.
"""

from __future__ import annotations

from ..core.measures import available_measures, get_measure
from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

PATH_SPEC = "APVCVPA"
COMBINED_SPEC = "APVCVPA=0.7,APA=0.3"
TOP_K = 10


def _spec_for(name: str) -> str:
    return COMBINED_SPEC if name == "combined" else PATH_SPEC


@experiment("measures")
def run(seed: int = 0) -> ExperimentResult:
    """Run every registered measure on one ACM author query."""
    network, engine = acm_engine(seed)
    ctx = engine.measures
    hub = network.personas["hub_author"]

    rankings = {}
    for name in available_measures():
        rankings[name] = get_measure(name).top_k(
            ctx, _spec_for(name), hub, k=TOP_K
        )

    reference = {key for key, _ in rankings["hetesim"]}
    rows = []
    for name, ranking in sorted(rankings.items()):
        overlap = sum(
            1 for key, _ in ranking if key in reference
        )
        self_rank = next(
            (
                rank
                for rank, (key, _) in enumerate(ranking, start=1)
                if key == hub
            ),
            None,
        )
        top_key, top_score = ranking[0]
        rows.append(
            (
                name,
                _spec_for(name),
                f"{top_key} ({format_score(top_score)})",
                "-" if self_rank is None else str(self_rank),
                f"{overlap}/{TOP_K}",
            )
        )
    table = render_table(
        ["Measure", "Spec", "Top hit", "Self rank", "Overlap@10"],
        rows,
    )

    title = (
        f"Measures: top-{TOP_K} for {hub!r} across every "
        "registered plugin"
    )
    note = (
        "Overlap@10 is against HeteSim's top-10; 'self rank' > 1 on "
        "pcrw/reachprob is the self-maximum violation, '-' means the "
        "query author left the top-k entirely."
    )
    return ExperimentResult(
        experiment_id="measures",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={
            "author": hub,
            "rankings": rankings,
            "overlaps": {
                name: sum(
                    1 for key, _ in ranking if key in reference
                )
                for name, ranking in rankings.items()
            },
        },
    )
