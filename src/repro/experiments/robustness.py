"""Robustness sweep: does HeteSim's edge survive weaker planted signal?

Not a table in the paper -- an ablation DESIGN.md calls for.  The Table 5
(query AUC) and Table 6 (clustering NMI) comparisons are repeated while
sweeping the DBLP generator's ``within_area_prob`` (the fraction of
authorships that stay inside an author's own research area).  The paper's
qualitative claims should be *noise-stable*: HeteSim >= PCRW on AUC and
HeteSim >= PathSim on author clustering at every signal level, with all
absolute numbers degrading as the signal weakens.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..baselines.pathsim import pathsim_matrix
from ..baselines.pcrw import pcrw_matrix
from ..core.engine import HeteSimEngine
from ..datasets.dblp import make_dblp_four_area
from ..learning.auc import auc_score
from ..learning.ncut import normalized_cut
from ..learning.nmi import normalized_mutual_information
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

SIGNAL_LEVELS = (0.8, 0.65, 0.5)
CLUSTER_RUNS = 3


def _mean_auc(network, engine, measure_matrix) -> float:
    graph = network.graph
    authors = graph.node_keys("author")
    scores = []
    for conference in graph.node_keys("conference"):
        area = network.conference_labels[conference]
        labels = [
            1 if network.author_labels[a] == area else 0 for a in authors
        ]
        conf_index = graph.node_index("conference", conference)
        scores.append(auc_score(labels, measure_matrix[conf_index]))
    return float(np.mean(scores))


def _author_nmi(network, similarity) -> float:
    keys = network.graph.node_keys("author")
    truth = [network.author_labels[k] for k in keys]
    values = []
    for run_seed in range(CLUSTER_RUNS):
        predicted = normalized_cut(similarity, 4, seed=run_seed)
        values.append(normalized_mutual_information(truth, predicted))
    return float(np.mean(values))


@experiment("robustness")
def run(seed: int = 0) -> ExperimentResult:
    """Sweep the planted-signal strength and re-run the two comparisons."""
    rows = []
    records: List[Dict[str, float]] = []
    for signal in SIGNAL_LEVELS:
        network = make_dblp_four_area(seed=seed, within_area_prob=signal)
        graph = network.graph
        engine = HeteSimEngine(graph)

        cpa = engine.path("CPA")
        auc_hetesim = _mean_auc(network, engine, engine.relevance_matrix(cpa))
        auc_pcrw = _mean_auc(network, engine, pcrw_matrix(graph, cpa))

        apcpa = engine.path("APCPA")
        nmi_hetesim = _author_nmi(network, engine.relevance_matrix(apcpa))
        nmi_pathsim = _author_nmi(network, pathsim_matrix(graph, apcpa))

        records.append(
            {
                "signal": signal,
                "auc_hetesim": auc_hetesim,
                "auc_pcrw": auc_pcrw,
                "nmi_hetesim": nmi_hetesim,
                "nmi_pathsim": nmi_pathsim,
            }
        )
        rows.append(
            (
                format_score(signal, 2),
                format_score(auc_hetesim),
                format_score(auc_pcrw),
                format_score(nmi_hetesim),
                format_score(nmi_pathsim),
            )
        )

    table = render_table(
        [
            "within-area prob", "AUC HeteSim", "AUC PCRW",
            "author NMI HeteSim", "author NMI PathSim",
        ],
        rows,
    )
    auc_stable = all(
        r["auc_hetesim"] >= r["auc_pcrw"] for r in records
    )
    title = (
        "Robustness: Table 5/6 comparisons under weakening planted signal"
    )
    note = (
        "HeteSim >= PCRW on mean AUC at "
        + ("every" if auc_stable else "not every")
        + " signal level; absolute quality degrades with the signal, the "
        "orderings do not."
    )
    return ExperimentResult(
        experiment_id="robustness",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={"records": records, "auc_stable": auc_stable},
    )
