"""Experiment harness: one module per paper table/figure.

Run via ``python -m repro.experiments <id|all|list>`` or programmatically
through :func:`get_experiment` / :func:`all_experiments`.  The DESIGN.md
per-experiment index maps each id to its paper table/figure, workload and
modules.
"""

from .registry import (
    ExperimentResult,
    all_experiments,
    experiment,
    get_experiment,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "experiment",
    "get_experiment",
]
