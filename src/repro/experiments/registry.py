"""Experiment registry: one named, runnable unit per paper table/figure.

Each experiment module registers a function via :func:`experiment`; the
function returns an :class:`ExperimentResult` whose ``text`` reproduces
the paper's rows/series and whose ``data`` carries the structured values
the test suite and benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from ..hin.errors import QueryError

__all__ = ["ExperimentResult", "experiment", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"table4"``.
    title:
        Human-readable title (matches the paper's caption).
    text:
        The rendered tables/series, ready to print.
    data:
        Structured values for programmatic assertions (tests, benches).
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)


Runner = Callable[..., ExperimentResult]

_REGISTRY: Dict[str, Runner] = {}


def experiment(experiment_id: str) -> Callable[[Runner], Runner]:
    """Decorator registering a runner under ``experiment_id``."""

    def register(func: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise QueryError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        return func

    return register


def get_experiment(experiment_id: str) -> Runner:
    """Look up a registered runner (raises :class:`QueryError`)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise QueryError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    """Import every experiment module so registrations run."""
    from . import (  # noqa: F401 - imported for registration side effects
        citations,
        complexity,
        fig5_decomposition,
        fig6_rank_difference,
        fig7_reach_distribution,
        measures_compare,
        robustness,
        table1_author_profile,
        table2_conference_profile,
        table3_expert_finding,
        table4_relevance_search,
        table5_query_auc,
        table6_clustering,
        table7_path_semantics,
    )
