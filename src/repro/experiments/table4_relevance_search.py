"""Table 4: top-10 related authors under APVCVPA, three measures compared.

The paper queries the top-10 authors related to "Christos Faloutsos"
along APVCVPA (authors publishing in the same conferences) with HeteSim,
PathSim, and PCRW.  Expected shape, reproduced on the planted personas:

* HeteSim ranks the query author first (score 1) and then the *peer*
  authors whose conference distribution matches his (Fig. 7's argument);
* PathSim ranks the query author first and then the high-volume
  *broad* authors (reputation peers) -- it counts path instances;
* PCRW violates self-maximum: the broad authors with large solo records
  in the same conferences outrank the query author himself.
"""

from __future__ import annotations

from ..baselines.pathsim import pathsim_rank
from ..baselines.pcrw import pcrw_rank
from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

PATH_SPEC = "APVCVPA"
TOP_K = 10


@experiment("table4")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate Table 4 on the synthetic ACM network."""
    network, engine = acm_engine(seed)
    graph = network.graph
    hub = network.personas["hub_author"]
    path = engine.path(PATH_SPEC)

    hetesim_top = engine.top_k(hub, path, k=TOP_K)
    pathsim_top = pathsim_rank(graph, path, hub)[:TOP_K]
    pcrw_top = pcrw_rank(graph, path, hub)[:TOP_K]

    rows = []
    for rank in range(TOP_K):
        h_key, h_score = hetesim_top[rank]
        p_key, p_score = pathsim_top[rank]
        c_key, c_score = pcrw_top[rank]
        rows.append(
            (
                rank + 1,
                f"{h_key} ({format_score(h_score)})",
                f"{p_key} ({format_score(p_score)})",
                f"{c_key} ({format_score(c_score)})",
            )
        )
    table = render_table(["Rank", "HeteSim", "PathSim", "PCRW"], rows)

    self_rank_pcrw = next(
        (i + 1 for i, (key, _) in enumerate(pcrw_rank(graph, path, hub))
         if key == hub),
        None,
    )
    title = (
        f"Table 4: top-{TOP_K} related authors to {hub!r} "
        f"under {PATH_SPEC}"
    )
    note = (
        f"PCRW ranks the query author {self_rank_pcrw}th "
        "(self-maximum violation); HeteSim and PathSim rank him 1st."
    )
    return ExperimentResult(
        experiment_id="table4",
        title=title,
        text=f"{title}\n\n{table}\n\n{note}",
        data={
            "author": hub,
            "hetesim": hetesim_top,
            "pathsim": pathsim_top,
            "pcrw": pcrw_top,
            "pcrw_self_rank": self_rank_pcrw,
        },
    )
