"""Fig. 5: atomic-relation decomposition and the normalisation ablation.

The method section's worked example: the bipartite graph of Fig. 5(a),
its HeteSim values *before* normalisation (Fig. 5(c) -- where an object's
self-relatedness can be below other pairs', "obviously unreasonable")
and *after* Definition 10's cosine normalisation (Fig. 5(d), self-maximum
restored).  This experiment regenerates both matrices and quantifies the
ablation: how many objects violate self-maximum under the raw measure
versus the normalised one.
"""

from __future__ import annotations

import numpy as np

from ..core.hetesim import hetesim_matrix
from ..datasets.toy import fig5_network
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table


def _matrix_table(matrix: np.ndarray, graph, title: str) -> str:
    b_keys = graph.node_keys("b")
    rows = [
        [a_key] + [format_score(matrix[i, j], 2) for j in range(len(b_keys))]
        for i, a_key in enumerate(graph.node_keys("a"))
    ]
    return render_table([""] + b_keys, rows, title=title)


def _self_below_one(matrix_same_type: np.ndarray) -> int:
    """Objects whose self-relatedness is positive but below 1.

    The paper's Fig. 5 complaint: under the raw measure "the relatedness
    of a2 and itself is 0.33.  It is obviously unreasonable."
    """
    diagonal = np.diag(matrix_same_type)
    return int(((diagonal > 0) & (diagonal < 1 - 1e-12)).sum())


@experiment("fig5")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 5(c)/(d) and the normalisation ablation."""
    graph = fig5_network()
    path = graph.schema.path("AB")

    raw = hetesim_matrix(graph, path, normalized=False)
    normalized = hetesim_matrix(graph, path, normalized=True)

    raw_table = _matrix_table(
        raw, graph, "Fig. 5(c): HeteSim before normalisation"
    )
    norm_table = _matrix_table(
        normalized, graph, "Fig. 5(d): HeteSim after normalisation"
    )

    # The ablation proper needs same-typed scores: use the symmetric
    # round-trip path ABA (whose diagonal is exactly the "object vs
    # itself" value the paper criticises: raw(a2, a2) = 1/3).
    round_trip = graph.schema.path("ABA")
    raw_self = hetesim_matrix(graph, round_trip, normalized=False)
    norm_self = hetesim_matrix(graph, round_trip, normalized=True)
    raw_below = _self_below_one(raw_self)
    norm_below = _self_below_one(norm_self)

    note = (
        "Ablation (path ABA): raw HeteSim gives a self-relatedness below "
        f"1 for {raw_below} of {raw_self.shape[0]} objects (a2's is "
        f"{format_score(raw_self[1, 1], 2)}, the paper's 'obviously "
        f"unreasonable' value); the normalised measure for {norm_below}. "
        "Normalisation (Def. 10) is what makes HeteSim a semi-metric."
    )
    title = "Fig. 5: edge-object decomposition and normalisation ablation"
    return ExperimentResult(
        experiment_id="fig5",
        title=title,
        text=f"{title}\n\n{raw_table}\n\n{norm_table}\n\n{note}",
        data={
            "raw": raw.tolist(),
            "normalized": normalized.tolist(),
            "raw_self_below_one": raw_below,
            "normalized_self_below_one": norm_below,
            "raw_a2_self": float(raw_self[1, 1]),
        },
    )
