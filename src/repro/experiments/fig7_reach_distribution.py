"""Fig. 7: authors' reachable-probability distribution over conferences.

The paper plots, for Christos Faloutsos and five comparison authors, the
probability distribution of reaching each of the 14 conferences along
APVC -- the visual explanation of Table 4 (HeteSim under APVCVPA is
exactly the cosine of these distributions).  We produce the same series
for the planted personas: the *peer* authors' curves hug the hub's
(concentrated on KDD), while the *broad* authors' are spread out.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.reachprob import reach_row
from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table


@experiment("fig7")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 7 series on the synthetic ACM network."""
    network, engine = acm_engine(seed)
    graph = network.graph
    path = engine.path("APVC")

    persona_keys = [
        network.personas["hub_author"],
        network.personas["peer_author_1"],
        network.personas["peer_author_2"],
        network.personas["broad_author_1"],
        network.personas["broad_author_2"],
        network.personas["group_author"],
    ]

    conferences = list(network.conferences)
    conf_indices = [
        graph.node_index("conference", conf) for conf in conferences
    ]
    distributions: Dict[str, List[float]] = {}
    for author in persona_keys:
        row = reach_row(graph, path, author)
        distributions[author] = [float(row[i]) for i in conf_indices]

    rows = []
    for conf_pos, conference in enumerate(conferences):
        rows.append(
            [conference]
            + [
                format_score(distributions[author][conf_pos], digits=3)
                for author in persona_keys
            ]
        )
    table = render_table(["Conference"] + persona_keys, rows)

    hub = persona_keys[0]
    hub_vec = np.asarray(distributions[hub])
    cosines = {}
    for author in persona_keys[1:]:
        vec = np.asarray(distributions[author])
        denom = np.linalg.norm(hub_vec) * np.linalg.norm(vec)
        cosines[author] = float(hub_vec @ vec / denom) if denom else 0.0

    title = (
        "Fig. 7: reachable-probability distribution over the 14 "
        "conferences along APVC"
    )
    from .charts import grouped_bar_chart

    chart = grouped_bar_chart(
        conferences[:6],  # the data-area conferences carry all the mass
        {
            author: distributions[author][:6]
            for author in (hub, persona_keys[1], persona_keys[3])
        },
        title="Reach probability (hub vs a peer vs a broad author)",
    )
    closest = max(cosines, key=cosines.get)
    note = (
        "Cosine to the hub's distribution: "
        + ", ".join(
            f"{author}={format_score(score, 3)}"
            for author, score in cosines.items()
        )
        + f".  Closest: {closest!r} (the Fig. 7 / Table 4 argument)."
    )
    return ExperimentResult(
        experiment_id="fig7",
        title=title,
        text=f"{title}\n\n{table}\n\n{chart}\n\n{note}",
        data={
            "conferences": conferences,
            "distributions": distributions,
            "cosines_to_hub": cosines,
        },
    )
