"""ASCII chart rendering for the figure experiments.

Fig. 6 is a grouped bar chart and Fig. 7 a set of per-author series in
the paper; the harness renders terminal-friendly equivalents so the
*shape* of each figure is visible without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from ..hin.errors import ReportError

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR = "#"


def bar_chart(
    values: Sequence[Tuple[str, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart.

    Bars scale to the maximum value; zero/negative values render as
    empty bars.  Labels are right-padded for alignment.
    """
    if width < 1:
        raise ReportError(f"width must be >= 1, got {width}")
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label, _ in values)
    peak = max((value for _, value in values), default=0.0)
    scale = width / peak if peak > 0 else 0.0
    for label, value in values:
        bar = _BAR * max(0, int(round(value * scale)))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series.

    ``series`` maps a series name (e.g. ``"HeteSim"``) to per-group
    values aligned with ``groups``.  All series share one scale so bars
    are visually comparable across series -- the property Fig. 6 needs
    (is the HeteSim bar shorter than the PCRW bar?).
    """
    if width < 1:
        raise ReportError(f"width must be >= 1, got {width}")
    for name, values in series.items():
        if len(values) != len(groups):
            raise ReportError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    lines = []
    if title:
        lines.append(title)
    if not groups:
        return "\n".join(lines + ["(no data)"])
    name_width = max(len(name) for name in series)
    peak = max(
        (value for values in series.values() for value in values),
        default=0.0,
    )
    scale = width / peak if peak > 0 else 0.0
    for index, group in enumerate(groups):
        lines.append(group)
        for name, values in series.items():
            value = values[index]
            bar = _BAR * max(0, int(round(value * scale)))
            lines.append(f"  {name.ljust(name_width)}  {bar} {value:.3f}")
    return "\n".join(lines)
