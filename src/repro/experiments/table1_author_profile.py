"""Table 1: automatic object profiling of an author.

The paper profiles "Christos Faloutsos" on the ACM dataset along four
relevance paths: conferences he participates in (APVC), his research
terms (APT), his ACM subjects (APS), and his closest co-authors (APA).
We profile the planted hub author (``KDD-star``), expecting the same
shape: home conference first with neighbouring data conferences after it,
the planted signature terms, the H.2/E.2 subjects, and himself (score 1)
followed by his students.
"""

from __future__ import annotations

from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: Path label -> (path spec, top-k) exactly as in Table 1.
PROFILE_PATHS = {
    "APVC (conferences)": ("APVC", 5),
    "APT (terms)": ("APT", 5),
    "APS (subjects)": ("APS", 5),
    "APA (co-authors)": ("APA", 5),
}


@experiment("table1")
def run(seed: int = 0) -> ExperimentResult:
    """Regenerate Table 1 on the synthetic ACM network."""
    network, engine = acm_engine(seed)
    hub = network.personas["hub_author"]

    sections = []
    data = {}
    for label, (spec, k) in PROFILE_PATHS.items():
        ranking = engine.top_k(hub, spec, k=k)
        data[spec] = ranking
        rows = [
            (rank, key, format_score(score))
            for rank, (key, score) in enumerate(ranking, start=1)
        ]
        sections.append(
            render_table(
                ["Rank", label, "Score"],
                rows,
            )
        )

    title = f"Table 1: automatic object profiling of author {hub!r}"
    return ExperimentResult(
        experiment_id="table1",
        title=title,
        text=title + "\n\n" + "\n\n".join(sections),
        data={"author": hub, "profiles": data},
    )
