"""Table 2: automatic object profiling of a conference.

The paper profiles KDD along four paths: its most active authors (CVPA),
the affiliations publishing there (CVPAF), its subjects (CVPS), and the
conferences most similar through shared authors (CVPAPVC).  Expected
shape: the planted KDD stars/seniors top CVPA, the hub community's
favoured affiliation tops CVPAF, H.2 tops CVPS, and CVPAPVC surfaces KDD
itself (score 1) followed by the other "data"-area conferences.
"""

from __future__ import annotations

from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: Path label -> (path spec, top-k) exactly as in Table 2.
PROFILE_PATHS = {
    "CVPA (authors)": ("CVPA", 5),
    "CVPAF (affiliations)": ("CVPAF", 5),
    "CVPS (subjects)": ("CVPS", 5),
    "CVPAPVC (conferences)": ("CVPAPVC", 5),
}


@experiment("table2")
def run(seed: int = 0, conference: str = "KDD") -> ExperimentResult:
    """Regenerate Table 2 on the synthetic ACM network."""
    network, engine = acm_engine(seed)

    sections = []
    data = {}
    for label, (spec, k) in PROFILE_PATHS.items():
        ranking = engine.top_k(conference, spec, k=k)
        data[spec] = ranking
        rows = [
            (rank, key, format_score(score))
            for rank, (key, score) in enumerate(ranking, start=1)
        ]
        sections.append(render_table(["Rank", label, "Score"], rows))

    title = f"Table 2: automatic object profiling of conference {conference!r}"
    return ExperimentResult(
        experiment_id="table2",
        title=title,
        text=title + "\n\n" + "\n\n".join(sections),
        data={"conference": conference, "profiles": data},
    )
