"""Shared, memoised dataset construction for the experiment harness.

Experiments run in one process (``python -m repro.experiments all``), so
the generated networks and their engines are cached per seed to avoid
regenerating the ACM network ten times.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..core.engine import HeteSimEngine
from ..datasets.acm import AcmNetwork, make_acm_network
from ..datasets.dblp import DblpNetwork, make_dblp_four_area

__all__ = ["acm", "dblp", "acm_engine", "dblp_engine"]


@lru_cache(maxsize=4)
def acm(seed: int = 0) -> AcmNetwork:
    """The shared ACM-like network for a seed."""
    return make_acm_network(seed=seed)


@lru_cache(maxsize=4)
def dblp(seed: int = 0) -> DblpNetwork:
    """The shared DBLP-like network for a seed."""
    return make_dblp_four_area(seed=seed)


@lru_cache(maxsize=4)
def acm_engine(seed: int = 0) -> Tuple[AcmNetwork, HeteSimEngine]:
    """ACM network plus a warm :class:`HeteSimEngine` over it."""
    network = acm(seed)
    return network, HeteSimEngine(network.graph)


@lru_cache(maxsize=4)
def dblp_engine(seed: int = 0) -> Tuple[DblpNetwork, HeteSimEngine]:
    """DBLP network plus a warm :class:`HeteSimEngine` over it."""
    network = dblp(seed)
    return network, HeteSimEngine(network.graph)
