"""Plain-text table rendering for experiment output.

The harness prints the same rows/series the paper reports; this module
keeps the formatting in one place.  No third-party table library --
experiments must run with the core dependencies only.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..hin.errors import ReportError

__all__ = ["render_table", "format_score"]


def format_score(value: float, digits: int = 4) -> str:
    """Uniform fixed-point rendering of a relevance score or metric."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    ``rows`` cells are stringified with :func:`str`; floats should be
    pre-formatted (:func:`format_score`) by the caller so each experiment
    controls its precision.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ReportError(
                f"row has {len(row)} cells but table has "
                f"{len(headers)} headers: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)
