"""Table 6: clustering accuracy (NMI) of HeteSim vs PathSim similarities.

Three clustering tasks on the labelled DBLP-like network, each over a
symmetric path as in the paper: conferences via CPAPC, authors via APCPA,
papers via PAPCPAP.  Normalized Cut (k = 4) runs on each measure's
similarity matrix; NMI against the area labels is averaged over several
seeded runs.  Expected shape: both measures cluster conferences
(near-)perfectly, HeteSim >= PathSim on authors and papers, and paper
clustering is the weakest task (the paper's own analysis: the PAPCPAP
semantics measure papers through their authors' conference profile, a
weak proxy).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from ..baselines.pathsim import pathsim_matrix
from ..learning.ncut import normalized_cut
from ..learning.nmi import normalized_mutual_information
from .data import dblp_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: Task name -> (path spec, clustered object type, label attribute).
TASKS = {
    "venue": ("CPAPC", "conference", "conference_labels"),
    "author": ("APCPA", "author", "author_labels"),
    "paper": ("PAPCPAP", "paper", "paper_labels"),
}

N_CLUSTERS = 4
N_RUNS = 5


def _clustering_nmi(
    similarity: np.ndarray,
    keys: List[str],
    labels: Mapping[str, int],
    runs: int,
) -> float:
    """Average NMI of NCut clusterings over ``runs`` seeds.

    Only labelled objects participate (papers have a labelled subset).
    """
    labeled_idx = [i for i, key in enumerate(keys) if key in labels]
    submatrix = similarity[np.ix_(labeled_idx, labeled_idx)]
    truth = [labels[keys[i]] for i in labeled_idx]
    scores = []
    for run_seed in range(runs):
        predicted = normalized_cut(submatrix, N_CLUSTERS, seed=run_seed)
        scores.append(normalized_mutual_information(truth, predicted))
    return float(np.mean(scores))


@experiment("table6")
def run(seed: int = 0, runs: int = N_RUNS) -> ExperimentResult:
    """Regenerate Table 6 on the synthetic DBLP network."""
    network, engine = dblp_engine(seed)
    graph = network.graph

    rows = []
    records: Dict[str, Dict[str, float]] = {}
    for task, (spec, type_name, label_attr) in TASKS.items():
        path = engine.path(spec)
        labels = getattr(network, label_attr)
        keys = graph.node_keys(type_name)

        hetesim_nmi = _clustering_nmi(
            engine.relevance_matrix(path), keys, labels, runs
        )
        pathsim_nmi = _clustering_nmi(
            pathsim_matrix(graph, path), keys, labels, runs
        )
        records[task] = {"hetesim": hetesim_nmi, "pathsim": pathsim_nmi}
        rows.append(
            (
                f"{task} ({spec})",
                format_score(hetesim_nmi),
                format_score(pathsim_nmi),
            )
        )

    table = render_table(
        ["Task (path)", "HeteSim NMI", "PathSim NMI"], rows
    )
    title = "Table 6: clustering accuracy (NCut, k=4, NMI, avg of runs)"
    return ExperimentResult(
        experiment_id="table6",
        title=title,
        text=f"{title}\n\n{table}",
        data={"records": records, "runs": runs},
    )
