"""Fig. 6: average rank difference from the publication-count ground truth.

For each of the 14 ACM conferences: rank the conference's authors by
publication count (ground truth), by HeteSim (APVC), and by PCRW (both
directions, whose rank differences are averaged, as in the paper).  The
series reports the average displacement of the top-200 ground-truth
authors.  Expected shape: HeteSim's bar is lower than PCRW's on (almost)
all conferences -- the symmetric measure tracks relative importance
better than the direction-conflicted asymmetric one.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..baselines.pcrw import pcrw_rank
from ..learning.rankdiff import average_rank_difference
from .data import acm_engine
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

TOP_N = 200


@experiment("fig6")
def run(seed: int = 0, top_n: int = TOP_N) -> ExperimentResult:
    """Regenerate the Fig. 6 series on the synthetic ACM network."""
    network, engine = acm_engine(seed)
    graph = network.graph
    forward = engine.path("APVC")     # author -> conference
    backward = engine.path("CVPA")    # conference -> author

    rows = []
    records: List[Dict[str, float]] = []
    for conference in network.conferences:
        ground_truth = network.ground_truth_ranking(conference, top_n=top_n)

        hetesim_ranking = [
            author for author, _ in engine.rank(conference, backward)
        ]
        hetesim_diff = average_rank_difference(
            ground_truth, hetesim_ranking, top_n=top_n
        )

        # PCRW: two direction-dependent rankings; Fig. 6 averages their
        # rank differences.  The APVC direction ranks authors by their
        # forward probability *to* the conference.
        pcrw_backward = [
            author for author, _ in pcrw_rank(graph, backward, conference)
        ]
        forward_scores = [
            (author, float(engine_score))
            for author, engine_score in _pcrw_forward_scores(
                graph, forward, conference
            )
        ]
        forward_scores.sort(key=lambda item: (-item[1], item[0]))
        pcrw_forward = [author for author, _ in forward_scores]

        pcrw_diff = float(
            np.mean(
                [
                    average_rank_difference(
                        ground_truth, pcrw_backward, top_n=top_n
                    ),
                    average_rank_difference(
                        ground_truth, pcrw_forward, top_n=top_n
                    ),
                ]
            )
        )
        records.append(
            {
                "conference": conference,
                "hetesim": hetesim_diff,
                "pcrw": pcrw_diff,
            }
        )
        rows.append(
            (
                conference,
                format_score(hetesim_diff, digits=2),
                format_score(pcrw_diff, digits=2),
                "+" if hetesim_diff <= pcrw_diff else "-",
            )
        )

    wins = sum(1 for r in records if r["hetesim"] <= r["pcrw"])
    table = render_table(
        ["Conference", "HeteSim avg rank diff", "PCRW avg rank diff",
         "HeteSim <="],
        rows,
    )
    from .charts import grouped_bar_chart

    chart = grouped_bar_chart(
        [r["conference"] for r in records],
        {
            "HeteSim": [r["hetesim"] for r in records],
            "PCRW": [r["pcrw"] for r in records],
        },
        title="Average rank difference (lower is better)",
    )
    title = (
        "Fig. 6: average rank difference from publication-count ground "
        f"truth (top {top_n}; lower is better)"
    )
    from ..learning.significance import sign_test

    significance = sign_test(
        [r["pcrw"] for r in records], [r["hetesim"] for r in records]
    )
    note = (
        f"HeteSim <= PCRW on {wins}/{len(records)} conferences "
        f"(sign test p = {significance.p_value:.4f})."
    )
    return ExperimentResult(
        experiment_id="fig6",
        title=title,
        text=f"{title}\n\n{table}\n\n{chart}\n\n{note}",
        data={
            "records": records,
            "wins": wins,
            "top_n": top_n,
            "sign_test_p": significance.p_value,
        },
    )


def _pcrw_forward_scores(graph, forward_path, conference):
    """PCRW scores of every author *towards* ``conference`` (APVC).

    One column of ``PM_APVC``; computed by walking the reverse path from
    the conference with *forward-path transition probabilities*, i.e. by
    reading the matrix column -- so this is genuinely the asymmetric
    forward direction, not HeteSim's backward normalisation.
    """
    from ..core.reachprob import reach_prob

    matrix = reach_prob(graph, forward_path)
    conf_index = graph.node_index("conference", conference)
    column = matrix[:, conf_index].toarray().ravel()
    authors = graph.node_keys("author")
    return zip(authors, column)
