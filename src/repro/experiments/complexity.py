"""Section 4.6: complexity comparison and materialisation speed-ups.

Two studies the paper argues analytically, measured empirically here:

* **HeteSim vs SimRank scaling** -- HeteSim computes one path's relevance
  matrix in O(l * d * n^2); SimRank iterates similarity over *all* typed
  node pairs, O(k * d * n^2 * T^4).  We sweep network size on a random
  two-relation HIN and time both; SimRank's curve must grow much faster.
* **Partial-path materialisation** -- answering a long-path query from
  cached half matrices (``PM_PL @ PM_PR'``) vs recomputing the chain.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..baselines.simrank import simrank
from ..core.cache import PathMatrixCache
from ..core.engine import HeteSimEngine
from ..core.hetesim import hetesim_matrix
from ..datasets.random_hin import make_random_hin
from ..hin.schema import NetworkSchema
from .registry import ExperimentResult, experiment
from .tables import format_score, render_table

#: Per-type node counts swept in the scaling study.
SIZES = (30, 60, 120)
SIMRANK_ITERATIONS = 5


def _three_type_schema() -> NetworkSchema:
    """A small A-B-C chain schema (two relations, three types)."""
    return NetworkSchema.from_spec(
        types=[("a", "A"), ("b", "B"), ("c", "C")],
        relations=[("ab", "a", "b"), ("bc", "b", "c")],
    )


def _time(callable_, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``callable_`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@experiment("complexity")
def run(seed: int = 0) -> ExperimentResult:
    """Measure the Section 4.6 complexity claims."""
    schema = _three_type_schema()
    scaling_rows = []
    scaling_records: List[Dict[str, float]] = []
    for size in SIZES:
        graph = make_random_hin(
            schema,
            sizes={"a": size, "b": size, "c": size},
            edge_prob=min(1.0, 5.0 / size),
            seed=seed,
            ensure_connected_rows=True,
        )
        path = schema.path("ABCBA")
        t_hetesim = _time(lambda: hetesim_matrix(graph, path))
        t_simrank = _time(
            lambda: simrank(graph, iterations=SIMRANK_ITERATIONS), repeats=1
        )
        ratio = t_simrank / t_hetesim if t_hetesim > 0 else float("inf")
        scaling_records.append(
            {
                "size": size,
                "hetesim_s": t_hetesim,
                "simrank_s": t_simrank,
                "ratio": ratio,
            }
        )
        scaling_rows.append(
            (
                size,
                format_score(t_hetesim * 1000, 2),
                format_score(t_simrank * 1000, 2),
                format_score(ratio, 1),
            )
        )
    scaling_table = render_table(
        ["n per type", "HeteSim (ms)", "SimRank (ms)", "SimRank/HeteSim"],
        scaling_rows,
        title="Scaling: one-path HeteSim vs full SimRank",
    )

    # Materialisation study on a mid-size network.
    graph = make_random_hin(
        schema,
        sizes={"a": 100, "b": 100, "c": 100},
        edge_prob=0.05,
        seed=seed,
        ensure_connected_rows=True,
    )
    path = schema.path("ABCBA")

    def cold() -> None:
        hetesim_matrix(graph, path)

    engine = HeteSimEngine(graph)
    engine.relevance_matrix(path)  # warm the half-matrix cache

    def warm() -> None:
        engine.relevance_matrix(path)

    t_cold = _time(cold)
    t_warm = _time(warm)
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    cache_table = render_table(
        ["Variant", "Time (ms)"],
        [
            ("recompute full chain", format_score(t_cold * 1000, 3)),
            ("materialised halves", format_score(t_warm * 1000, 3)),
            ("speed-up", format_score(speedup, 1) + "x"),
        ],
        title="Materialised partial paths (Section 4.6, item 2)",
    )

    title = "Section 4.6: complexity and materialisation measurements"
    return ExperimentResult(
        experiment_id="complexity",
        title=title,
        text=f"{title}\n\n{scaling_table}\n\n{cache_table}",
        data={
            "scaling": scaling_records,
            "materialization": {
                "cold_s": t_cold,
                "warm_s": t_warm,
                "speedup": speedup,
            },
        },
    )
