"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table4
    python -m repro.experiments all [--seed 7]

Each experiment prints the rows/series of the corresponding paper table
or figure (see DESIGN.md for the per-experiment index).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .registry import all_experiments, get_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of 'Relevance Search in "
            "Heterogeneous Networks' (HeteSim, EDBT 2012)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="an experiment id, 'all', 'list', or 'report'",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dataset seed (default 0)"
    )
    parser.add_argument(
        "--output",
        default="EXPERIMENTS.md",
        help="output path for 'report' (default EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in all_experiments():
            print(experiment_id)
        return 0

    if args.experiment == "report":
        from .report import generate_report

        content = generate_report(seed=args.seed)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {args.output}")
        return 0

    if args.experiment == "all":
        targets = all_experiments()
    else:
        targets = [args.experiment]

    for experiment_id in targets:
        runner = get_experiment(experiment_id)
        start = time.perf_counter()
        result = runner(seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.text)
        print(f"\n[{experiment_id} completed in {elapsed:.2f}s]")
        print("\n" + "#" * 72 + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
