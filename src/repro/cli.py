"""General-purpose relevance-search CLI over saved graphs.

Workflows::

    # One relevance score.
    python -m repro.cli query graph.json --path APC --source Tom --target KDD

    # Top-k ranked search.
    python -m repro.cli topk graph.json --path APC --source Tom -k 5

    # Multi-path profiling.
    python -m repro.cli profile graph.json --source Tom \\
        --paths conferences=APC coauthors=APA

    # Full multi-type profile with automatic path choice.
    python -m repro.cli autoprofile graph.json --type author --key Tom

    # Structural validation report.
    python -m repro.cli validate graph.json

    # Bounded query with graceful degradation (see repro.runtime).
    python -m repro.cli query graph.json --path APVC --source Tom \\
        --target KDD --deadline-ms 50 --on-limit degrade

    # Artefact health checks: graph file + matrix store directory.
    python -m repro.cli doctor graph.json --store store_dir/

    # Static invariant checks over the library source (repro-lint);
    # exit 1 on unbaselined findings, so CI can block on it.
    python -m repro.cli lint [PATHS ...] --format json

    # Materialisation-planner execution stats (per-step nnz/time,
    # prefix reuse, evictions) under an optional cache byte budget.
    python -m repro.cli cache-stats graph.json --paths APC APVC \\
        --budget-kb 64 --repeat 2

    # Off-line warm-up: pre-materialise (and optionally persist) the
    # half matrices of frequently-served paths.
    python -m repro.cli serve-warm graph.json --paths APC APVC \\
        --workers 4 --store store_dir/

    # Batched serving: many queries answered with group-by-path block
    # GEMM scoring (SOURCE:PATH items); --trace prints the span tree.
    # --backend process shards the block GEMMs across worker processes
    # with shared-memory half matrices (multi-core, GIL-free).
    python -m repro.cli serve-batch graph.json \\
        --queries Tom:APC Mary:APC Tom:APVC -k 5 --workers 4 --trace
    python -m repro.cli serve-batch graph.json \\
        --queries Tom:APC Mary:APC -k 5 --workers 4 --backend process

    # Network serving: async HTTP tier with per-tenant API keys, token
    # buckets, a bounded admission queue and graceful SIGTERM drain.
    # Overload degrades through the resilience ladder (provenance in
    # X-Repro-* headers) instead of failing.
    python -m repro.cli serve-http graph.json --port 8080 \\
        --tenants tenants.json --workers 4 --deadline-ms 250

    # Observability exports: run a warm+batch workload, then emit the
    # metric registry (Prometheus text or JSON) or the recorded spans.
    python -m repro.cli metrics graph.json --paths APC APVC --format json
    python -m repro.cli trace graph.json --paths APC --workers 2

Graphs are the JSON documents produced by
:func:`repro.hin.io.save_graph`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.engine import HeteSimEngine
from .hin.errors import ReproError
from .hin.io import load_graph
from .hin.validation import graph_report

__all__ = ["main"]


def _add_limit_arguments(command: argparse.ArgumentParser) -> None:
    """Resilient-runtime flags shared by ``query`` and ``topk``."""
    command.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        dest="deadline_ms",
        help="wall-clock deadline per attempt (milliseconds)",
    )
    command.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        dest="max_bytes",
        help="cumulative byte budget for materialised intermediates",
    )
    command.add_argument(
        "--on-limit",
        choices=("degrade", "fail"),
        default="degrade",
        dest="on_limit",
        help="on breach: retry through cheaper strategies (degrade) "
        "or raise the typed error (fail)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="HeteSim relevance search over a saved graph.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="score one object pair")
    query.add_argument("graph", help="graph JSON file (see repro.hin.io)")
    query.add_argument("--path", required=True, help="path spec, e.g. APC")
    query.add_argument("--source", required=True)
    query.add_argument("--target", required=True)
    query.add_argument(
        "--raw", action="store_true",
        help="report the raw meeting probability instead of the cosine",
    )
    query.add_argument(
        "--measure",
        default="hetesim",
        help="relevance measure plugin (see the 'measures' command); "
        "non-default measures run limits in fail mode",
    )
    _add_limit_arguments(query)

    topk = commands.add_parser("topk", help="rank targets for one source")
    topk.add_argument("graph")
    topk.add_argument("--path", required=True)
    topk.add_argument("--source", required=True)
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument(
        "--measure",
        default="hetesim",
        help="relevance measure plugin (see the 'measures' command); "
        "non-default measures run limits in fail mode",
    )
    _add_limit_arguments(topk)

    profile = commands.add_parser(
        "profile", help="top objects along several labelled paths"
    )
    profile.add_argument("graph")
    profile.add_argument("--source", required=True)
    profile.add_argument(
        "--paths",
        required=True,
        nargs="+",
        metavar="LABEL=PATH",
        help="labelled path specs, e.g. conferences=APC coauthors=APA",
    )
    profile.add_argument("-k", type=int, default=5)

    explain = commands.add_parser(
        "explain", help="top contributing middle objects for one pair"
    )
    explain.add_argument("graph")
    explain.add_argument("--path", required=True)
    explain.add_argument("--source", required=True)
    explain.add_argument("--target", required=True)
    explain.add_argument("-k", type=int, default=5)

    autoprofile = commands.add_parser(
        "autoprofile",
        help="profile an object against every reachable type",
    )
    autoprofile.add_argument("graph")
    autoprofile.add_argument("--type", required=True, dest="object_type")
    autoprofile.add_argument("--key", required=True, dest="object_key")
    autoprofile.add_argument("-k", type=int, default=5)
    autoprofile.add_argument(
        "--max-path-length", type=int, default=4, dest="max_path_length"
    )

    paths = commands.add_parser(
        "paths", help="enumerate relevance paths between two types"
    )
    paths.add_argument("graph")
    paths.add_argument("--source", required=True, dest="source_type")
    paths.add_argument("--target", required=True, dest="target_type")
    paths.add_argument(
        "--max-length", type=int, default=4, dest="max_length"
    )

    stats = commands.add_parser(
        "stats", help="degree/density statistics and path cost estimates"
    )
    stats.add_argument("graph")
    stats.add_argument(
        "--path", default=None,
        help="optional path spec to estimate computation cost for",
    )

    cache_stats = commands.add_parser(
        "cache-stats",
        help="materialise paths and report the planner's execution stats",
    )
    cache_stats.add_argument("graph")
    cache_stats.add_argument(
        "--paths",
        required=True,
        nargs="+",
        metavar="PATH",
        help="path specs to materialise, e.g. APC APVC APVCVPA",
    )
    cache_stats.add_argument(
        "--budget-kb",
        type=int,
        default=None,
        dest="budget_kb",
        help="optional cache byte budget in KiB (LRU eviction)",
    )
    cache_stats.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="materialise the path list this many times (shows cache hits)",
    )

    serve_warm = commands.add_parser(
        "serve-warm",
        help="pre-materialise half matrices for frequently-served paths",
    )
    serve_warm.add_argument("graph")
    serve_warm.add_argument(
        "--paths",
        required=True,
        nargs="+",
        metavar="PATH",
        help="path specs to warm, e.g. APC APVC",
    )
    serve_warm.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent materialisation threads",
    )
    serve_warm.add_argument(
        "--store",
        default=None,
        dest="store_dir",
        help="persist the half-path matrices to this store directory",
    )
    serve_warm.add_argument(
        "--backend",
        choices=("auto", "thread", "process"),
        default="auto",
        help="execution tier: threads, worker processes with "
        "shared-memory halves, or auto (pick per host and workload)",
    )

    serve_batch = commands.add_parser(
        "serve-batch",
        help="answer many queries with group-by-path batch scoring",
    )
    serve_batch.add_argument("graph")
    serve_batch.add_argument(
        "--queries",
        required=True,
        nargs="+",
        metavar="SOURCE:PATH[@MEASURE]",
        help="queries as SOURCE:PATH items, e.g. Tom:APC Mary:APVC; "
        "append @MEASURE to route one query to another measure "
        "plugin, e.g. Tom:APCPA@pathsim",
    )
    serve_batch.add_argument("-k", type=int, default=10)
    serve_batch.add_argument(
        "--measure",
        default="hetesim",
        help="default measure for items without an @MEASURE suffix",
    )
    serve_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent path-group workers",
    )
    serve_batch.add_argument(
        "--backend",
        choices=("auto", "thread", "process"),
        default="auto",
        help="execution tier: threads, worker processes with "
        "shared-memory halves, or auto (pick per host and workload)",
    )
    serve_batch.add_argument(
        "--raw", action="store_true",
        help="rank by raw meeting probability instead of the cosine",
    )
    serve_batch.add_argument(
        "--trace", action="store_true",
        help="record execution spans and print the span tree to stderr",
    )

    serve_http = commands.add_parser(
        "serve-http",
        help="serve relevance queries over HTTP with admission control",
    )
    serve_http.add_argument("graph")
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8080)
    serve_http.add_argument(
        "--workers",
        type=int,
        default=4,
        help="CPU worker threads query execution is offloaded to",
    )
    serve_http.add_argument(
        "--tenants",
        default=None,
        help="JSON tenant table: API keys mapped to rate limits and "
        "per-tenant execution limits",
    )
    serve_http.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        dest="queue_capacity",
        help="bounded admission queue; excess load is shed with 503",
    )
    serve_http.add_argument(
        "--allow-anonymous",
        action="store_true",
        dest="allow_anonymous",
        help="accept requests without an API key as the 'anonymous' "
        "tenant even when a tenant table is configured",
    )
    serve_http.add_argument(
        "--store",
        default=None,
        dest="store_dir",
        help="matrix store directory checked by GET /doctor",
    )
    serve_http.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        dest="deadline_ms",
        help="server-wide default deadline per request (milliseconds)",
    )
    serve_http.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        dest="max_bytes",
        help="server-wide default byte budget per request",
    )

    commands.add_parser(
        "measures",
        help="list the registered relevance measure plugins",
    )

    metrics = commands.add_parser(
        "metrics",
        help="run a warm+batch workload and export the obs metrics",
    )
    metrics.add_argument("graph")
    metrics.add_argument(
        "--paths",
        required=True,
        nargs="+",
        metavar="PATH",
        help="path specs to warm and serve, e.g. APC APVC",
    )
    metrics.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent materialisation/scoring threads",
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        dest="output_format",
        help="export format: Prometheus text (prom) or JSON",
    )

    trace = commands.add_parser(
        "trace",
        help="run a warm+batch workload and print the recorded span trees",
    )
    trace.add_argument("graph")
    trace.add_argument(
        "--paths",
        required=True,
        nargs="+",
        metavar="PATH",
        help="path specs to warm and serve, e.g. APC APVC",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent materialisation/scoring threads",
    )
    trace.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="span-tree rendering (indented text or JSON)",
    )

    validate = commands.add_parser(
        "validate", help="structural validation report"
    )
    validate.add_argument("graph")

    doctor = commands.add_parser(
        "doctor",
        help="validate a graph file and (optionally) a matrix store",
    )
    doctor.add_argument("graph")
    doctor.add_argument(
        "--store",
        default=None,
        dest="store_dir",
        help="matrix-store directory to check (index/payload/checksums)",
    )

    lint = commands.add_parser(
        "lint",
        help="run the repro-lint static invariant checks (repro.analysis)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (text for humans, json for CI)",
    )
    lint.add_argument(
        "--baseline",
        default="lint_baseline.toml",
        help="justification-required allowlist (TOML); ignored if absent",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        dest="no_baseline",
        help="report every finding, even baselined ones",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        dest="write_baseline",
        help="write the current findings to --baseline and exit 0 "
        "(every generated entry still needs a real justification)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="parse worker threads (0 = auto)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively "
        "(e.g. RPR010,RPR011)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code (0 ok, 2 usage error)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _limits_from(args: argparse.Namespace):
    """Build ExecutionLimits from CLI flags; None when no flag given."""
    if args.deadline_ms is None and args.max_bytes is None:
        return None
    from .runtime.limits import ExecutionLimits

    return ExecutionLimits(
        deadline_ms=args.deadline_ms, max_bytes=args.max_bytes
    )


def _run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: no graph involved, pure static analysis."""
    from pathlib import Path

    from .analysis import (
        load_baseline,
        render_json,
        render_text,
        run_lint,
        write_baseline,
    )

    baseline = None
    previous = None
    baseline_path = Path(args.baseline)
    if baseline_path.is_file():
        if args.write_baseline:
            # Regenerating: keep the old entries around so findings that
            # persist inherit their human-written reasons.
            previous = load_baseline(baseline_path)
        elif not args.no_baseline:
            baseline = load_baseline(baseline_path)

    def _rule_ids(raw):
        return [part.strip() for part in raw.split(",") if part.strip()]

    select = _rule_ids(args.select) if args.select else None
    ignore = _rule_ids(args.ignore) if args.ignore else ()

    # Finding paths (what baseline entries match on) are anchored at
    # the baseline file's directory, so `hetesim lint --baseline
    # repo/lint_baseline.toml` works from any working directory.
    root = baseline_path.resolve().parent
    result = run_lint(
        args.paths,
        root=root,
        baseline=baseline,
        jobs=args.jobs,
        select=select,
        ignore=ignore,
    )

    if args.write_baseline:
        count = write_baseline(result.findings, baseline_path, previous)
        print(
            f"wrote {count} suppression(s) to {baseline_path} -- "
            "fill in each 'reason' before committing"
        )
        return 0

    if args.output_format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _exercise_workload(graph, specs, workers: int):
    """Warm, re-query and batch-serve ``specs`` on a fresh engine.

    The shared workload behind the ``metrics`` and ``trace`` commands:
    it touches every instrumented layer -- half materialisation
    (warm), the path-matrix cache including full-key hits (a second
    materialisation pass), and group-by-path batch scoring with its
    block GEMMs -- so the exported series are all nonzero on any
    non-trivial graph.
    """
    from .core.hetesim import half_reach_matrices
    from .serve import BatchRequest, Query, QueryServer

    engine = HeteSimEngine(graph)
    engine.warm(specs, workers=workers)
    for _ in range(2):  # second pass = full-key cache hits
        for spec in specs:
            half_reach_matrices(graph, engine.path(spec), cache=engine.cache)
    queries = []
    for spec in specs:
        meta = engine.path(spec)
        keys = graph.node_keys(meta.source_type.name)
        if keys:
            queries.append(Query(keys[0], spec, k=5))
    if queries:
        QueryServer(engine).run(
            BatchRequest(queries, workers=workers)
        )
    return engine


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "lint":
        return _run_lint(args)

    if args.command == "measures":
        from .core.measures import available_measures

        for name, description in available_measures().items():
            print(f"{name:10s} {description}")
        return 0

    if args.command == "doctor":
        from .runtime.doctor import run_doctor

        report = run_doctor(args.graph, args.store_dir)
        print(report.summary())
        return 0 if report.ok else 1

    graph = load_graph(args.graph)

    if args.command == "validate":
        report = graph_report(graph)
        print(report.summary())
        return 1 if report.has_errors else 0

    if args.command == "paths":
        from .hin.enumerate import enumerate_paths

        for path in enumerate_paths(
            graph.schema, args.source_type, args.target_type,
            max_length=args.max_length,
        ):
            names = " -> ".join(r.name for r in path.relations)
            print(f"{path.code()}  ({names})")
        return 0

    if args.command == "stats":
        from .hin.stats import network_stats, path_cost_estimate

        for name, stats in network_stats(graph).items():
            print(
                f"{name}: {stats.num_edges} edges, density "
                f"{stats.density:.4f}, out-degree mean/max "
                f"{stats.mean_out_degree:.2f}/{stats.max_out_degree}, "
                f"in-degree mean/max "
                f"{stats.mean_in_degree:.2f}/{stats.max_in_degree}"
            )
        if args.path:
            flops, cells = path_cost_estimate(graph, args.path)
            print(
                f"path {args.path}: ~{flops} flops, "
                f"{cells} result cells"
            )
        return 0

    if args.command == "cache-stats":
        from .core.hetesim import half_reach_matrices

        budget = (
            args.budget_kb * 1024 if args.budget_kb is not None else None
        )
        engine = HeteSimEngine(graph, byte_budget=budget)
        for _ in range(max(1, args.repeat)):
            for spec in args.paths:
                # Query the budgeted cache directly (not the engine's
                # per-path half memo) so --repeat exercises cache hits.
                half_reach_matrices(
                    graph, engine.path(spec), cache=engine.cache
                )
        print(engine.plan_report())
        return 0

    if args.command == "serve-warm":
        engine = HeteSimEngine(graph)
        store = None
        if args.store_dir is not None:
            from .core.store import MatrixStore

            store = MatrixStore(args.store_dir)
        report = engine.warm(
            args.paths,
            workers=args.workers,
            store=store,
            backend=args.backend,
        )
        print(report.summary())
        return 0

    if args.command == "serve-batch":
        from .serve import BatchRequest, Query, QueryServer

        queries = []
        for item in args.queries:
            source, sep, spec = item.rpartition(":")
            spec, at, measure = spec.partition("@")
            if not sep or not source or not spec or (at and not measure):
                print(
                    f"error: bad --queries item {item!r} "
                    "(expected SOURCE:PATH[@MEASURE])",
                    file=sys.stderr,
                )
                return 2
            queries.append(
                Query(
                    source,
                    spec,
                    k=args.k,
                    normalized=not args.raw,
                    measure=measure if at else args.measure,
                )
            )
        server = QueryServer(HeteSimEngine(graph))
        if args.trace:
            from .obs import TRACER

            TRACER.enable()
        try:
            result = server.run(
                BatchRequest(
                    queries,
                    workers=args.workers,
                    backend=args.backend,
                )
            )
        finally:
            if args.trace:
                TRACER.disable()
        for answer in result.results:
            print(f"{answer.query.source} | {answer.query.path}:")
            for rank, (key, score) in enumerate(
                answer.ranking, start=1
            ):
                print(f"  {rank:3d}  {key}  {score:.6f}")
        print(result.stats.summary(), file=sys.stderr)
        if args.trace:
            for root in TRACER.roots:
                print(root.render(), file=sys.stderr)
        return 0

    if args.command == "serve-http":
        import signal
        import threading

        from .serve.admission import (
            AdmissionController,
            Tenant,
            load_tenants,
        )
        from .serve.http import HttpServer

        tenants = load_tenants(args.tenants) if args.tenants else {}
        anonymous = (
            Tenant("anonymous")
            if (args.allow_anonymous or not tenants)
            else None
        )
        server = HttpServer(
            HeteSimEngine(graph),
            admission=AdmissionController(
                tenants,
                queue_capacity=args.queue_capacity,
                anonymous=anonymous,
            ),
            host=args.host,
            port=args.port,
            default_limits=_limits_from(args),
            workers=args.workers,
            graph_path=args.graph,
            store_dir=args.store_dir,
        )
        server.start()
        print(
            f"serving on {server.url} "
            "(SIGTERM or Ctrl-C drains and exits)"
        )
        stop = threading.Event()

        def _request_stop(signum: int, frame: object) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
        stop.wait()
        print("draining in-flight requests...", file=sys.stderr)
        server.stop(drain=True)
        return 0

    if args.command == "metrics":
        from .obs import prometheus_text, render_json

        _exercise_workload(graph, args.paths, args.workers)
        if args.output_format == "json":
            print(render_json())
        else:
            print(prometheus_text(), end="")
        return 0

    if args.command == "trace":
        import json as _json

        from .obs import TRACER

        TRACER.enable()
        try:
            _exercise_workload(graph, args.paths, args.workers)
        finally:
            TRACER.disable()
        if args.output_format == "json":
            print(
                _json.dumps(
                    [root.to_dict() for root in TRACER.roots], indent=2
                )
            )
        else:
            for root in TRACER.roots:
                print(root.render())
        return 0

    engine = HeteSimEngine(graph)

    if args.command == "query" and args.measure != "hetesim":
        from .core.measures import get_measure

        measure = get_measure(args.measure)
        kind = "raw" if args.raw else "normalized"
        limits = _limits_from(args)
        if limits is not None:
            from .runtime.limits import execution_scope

            with execution_scope(tracker=limits.tracker()):
                score = measure.pair(
                    engine.measures, args.path, args.source,
                    args.target, normalized=not args.raw,
                )
        else:
            score = measure.pair(
                engine.measures, args.path, args.source, args.target,
                normalized=not args.raw,
            )
        print(
            f"{args.measure}({args.source}, {args.target} | "
            f"{args.path}) [{kind}] = {score:.6f}"
        )
        return 0

    if args.command == "topk" and args.measure != "hetesim":
        from .core.measures import get_measure

        measure = get_measure(args.measure)
        limits = _limits_from(args)
        if limits is not None:
            from .runtime.limits import execution_scope

            with execution_scope(tracker=limits.tracker()):
                ranking = measure.top_k(
                    engine.measures, args.path, args.source, k=args.k
                )
        else:
            ranking = measure.top_k(
                engine.measures, args.path, args.source, k=args.k
            )
        for rank, (key, score) in enumerate(ranking, start=1):
            print(f"{rank:3d}  {key}  {score:.6f}")
        return 0

    if args.command == "query":
        limits = _limits_from(args)
        kind = "raw" if args.raw else "normalized"
        if limits is not None:
            runtime = engine.runtime(limits=limits, on_limit=args.on_limit)
            result = runtime.relevance(
                args.source, args.target, args.path,
                normalized=not args.raw,
            )
            score = result.value
            if result.degraded:
                print(result.summary(), file=sys.stderr)
        else:
            score = engine.relevance(
                args.source, args.target, args.path,
                normalized=not args.raw,
            )
        print(
            f"HeteSim({args.source}, {args.target} | {args.path}) "
            f"[{kind}] = {score:.6f}"
        )
        return 0

    if args.command == "topk":
        limits = _limits_from(args)
        if limits is not None:
            runtime = engine.runtime(limits=limits, on_limit=args.on_limit)
            result = runtime.top_k(args.source, args.path, k=args.k)
            ranking = result.value
            if result.degraded:
                print(result.summary(), file=sys.stderr)
        else:
            ranking = engine.top_k(args.source, args.path, k=args.k)
        for rank, (key, score) in enumerate(ranking, start=1):
            print(f"{rank:3d}  {key}  {score:.6f}")
        return 0

    if args.command == "explain":
        contributions = engine.explain(
            args.source, args.target, args.path, k=args.k
        )
        if not contributions:
            print("no connection: the pair's relevance is 0")
            return 0
        score = engine.relevance(args.source, args.target, args.path)
        print(
            f"HeteSim({args.source}, {args.target} | {args.path}) = "
            f"{score:.6f}; top contributing middle objects:"
        )
        for contribution in contributions:
            middle = contribution.middle
            if isinstance(middle, tuple):
                middle = " -> ".join(middle)
            print(
                f"  {middle}  share={contribution.share:.1%}  "
                f"(fwd {contribution.forward_probability:.4f} x "
                f"bwd {contribution.backward_probability:.4f})"
            )
        return 0

    if args.command == "autoprofile":
        from .core.profiles import build_profile

        profile = build_profile(
            engine,
            args.object_type,
            args.object_key,
            k=args.k,
            max_path_length=args.max_path_length,
        )
        print(profile.to_text())
        return 0

    if args.command == "profile":
        labelled = {}
        for item in args.paths:
            label, _, spec = item.partition("=")
            if not label or not spec:
                print(
                    f"error: bad --paths item {item!r} "
                    "(expected LABEL=PATH)",
                    file=sys.stderr,
                )
                return 2
            labelled[label] = spec
        for label, ranking in engine.profile(
            args.source, labelled, k=args.k
        ).items():
            print(f"{label}:")
            for rank, (key, score) in enumerate(ranking, start=1):
                print(f"  {rank:2d}  {key}  {score:.6f}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
