"""Admission control for the network serving tier.

The HTTP front-end (:mod:`repro.serve.http`) answers untrusted
multi-tenant traffic over one CPU-bound engine, so *who may run what,
and when* is decided here, before any sparse matrix work starts:

* :class:`Tenant` -- one API key's identity: a token-bucket rate
  (sustained requests/second plus a burst allowance) and the
  :class:`~repro.runtime.limits.ExecutionLimits` envelope its queries
  run under.  Tenant limits compose with the server's default envelope
  through :meth:`ExecutionLimits.intersect
  <repro.runtime.limits.ExecutionLimits.intersect>` -- the stricter
  bound always wins.
* :class:`TokenBucket` -- the classic refill-at-``rate`` bucket with a
  monotonic clock (RPR003: never wall-clock).  A failed acquire
  reports *when* to retry, which the HTTP tier surfaces as a
  ``Retry-After`` header instead of a bare rejection.
* :class:`AdmissionController` -- key -> tenant authentication, one
  bucket per tenant, and a bounded request queue shared by every
  tenant.  When the queue is full the request is **shed** (HTTP 503)
  rather than buffered without bound: under sustained overload a
  bounded queue keeps latency finite and lets the degradation ladder
  answer the traffic that *is* admitted.

Everything is thread-safe and allocation-light: admission runs on the
event loop's hot path for every request.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Union

from ..hin.errors import QueryError
from ..obs.metrics import REGISTRY
from ..runtime.limits import ExecutionLimits

_SHED = REGISTRY.counter(
    "repro_http_shed_total",
    "Requests refused by admission control, by reason.",
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_http_queue_depth",
    "Admitted requests currently queued or executing.",
)

__all__ = [
    "Tenant",
    "TokenBucket",
    "Admission",
    "AdmissionController",
    "tenants_from_config",
    "load_tenants",
]

Clock = Callable[[], float]


@dataclass(frozen=True)
class Tenant:
    """One API key's serving contract.

    ``rate`` is the sustained request rate (tokens per second) and
    ``burst`` the bucket capacity -- how many requests may arrive
    back-to-back after an idle period.  ``limits`` is the tenant's
    :class:`~repro.runtime.limits.ExecutionLimits` envelope; the HTTP
    tier intersects it with the server-wide default so a tenant can
    only ever tighten, never widen, the operator's bounds.
    """

    name: str
    rate: float = math.inf
    burst: float = 16.0
    limits: Optional[ExecutionLimits] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("a tenant needs a non-empty name")
        if self.rate <= 0:
            raise QueryError(
                f"tenant {self.name!r}: rate must be > 0, got {self.rate}"
            )
        if self.burst < 1:
            raise QueryError(
                f"tenant {self.name!r}: burst must be >= 1, "
                f"got {self.burst}"
            )

    def resolved_limits(
        self, default: Optional[ExecutionLimits]
    ) -> Optional[ExecutionLimits]:
        """The effective envelope: tenant limits ∩ server default."""
        if self.limits is None:
            return default
        return self.limits.intersect(default)


class TokenBucket:
    """Thread-safe token bucket over a monotonic clock.

    The bucket starts full (``burst`` tokens) and refills continuously
    at ``rate`` tokens per second up to ``burst``.  :meth:`try_acquire`
    either takes a token and returns ``0.0``, or leaves the bucket
    untouched and returns the seconds until one token will be
    available -- the ``Retry-After`` the caller should advertise.
    An infinite ``rate`` always admits.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Clock = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise QueryError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise QueryError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if math.isinf(self.rate):
            self._tokens = self.burst
        else:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now, or report seconds until they exist."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            if math.isinf(self.rate):  # pragma: no cover - burst >= 1
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class Admission:
    """One admission decision.

    ``admitted`` requests hold a queue slot the caller must give back
    via :meth:`AdmissionController.release`.  Refusals carry the
    ``reason`` (``"rate"``, ``"queue"`` or ``"draining"``) and a
    ``retry_after`` hint in seconds (0 when retrying immediately is
    reasonable, e.g. after a shed under a momentarily full queue).
    """

    admitted: bool
    reason: Optional[str] = None
    retry_after: float = 0.0


@dataclass(frozen=True)
class _TenantEntry:
    tenant: Tenant
    bucket: TokenBucket


class AdmissionController:
    """Authentication, per-tenant rate limiting and load shedding.

    Parameters
    ----------
    tenants:
        ``api_key -> Tenant`` mapping.  Keys are opaque strings; the
        HTTP tier reads them from the ``X-API-Key`` header (or a
        ``Bearer`` token).
    queue_capacity:
        Upper bound on requests admitted but not yet answered, across
        all tenants.  ``0`` sheds every admission-controlled request --
        useful for drain tests and emergency lockout.
    anonymous:
        Optional tenant served to requests carrying *no* key.  ``None``
        (the default) makes authentication mandatory.
    clock:
        Injectable monotonic clock shared by every tenant bucket
        (deterministic tests).
    """

    def __init__(
        self,
        tenants: Mapping[str, Tenant],
        queue_capacity: int = 64,
        anonymous: Optional[Tenant] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        if queue_capacity < 0:
            raise QueryError(
                f"queue_capacity must be >= 0, got {queue_capacity}"
            )
        names = [tenant.name for tenant in tenants.values()]
        if anonymous is not None:
            names.append(anonymous.name)
        if len(set(names)) != len(names):
            raise QueryError(
                f"tenant names must be unique, got {sorted(names)}"
            )
        self.queue_capacity = queue_capacity
        self._clock = clock
        self._entries: Dict[str, _TenantEntry] = {
            key: _TenantEntry(tenant, self._bucket(tenant))
            for key, tenant in tenants.items()
        }
        self._anonymous: Optional[_TenantEntry] = (
            _TenantEntry(anonymous, self._bucket(anonymous))
            if anonymous is not None
            else None
        )
        self._depth = 0
        self._depth_lock = threading.Lock()
        _QUEUE_DEPTH.set(0.0)

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        return TokenBucket(
            tenant.rate, tenant.burst, clock=self._clock
        )

    # -- authentication ------------------------------------------------
    def authenticate(self, api_key: Optional[str]) -> Optional[Tenant]:
        """The tenant behind ``api_key``, or None (-> HTTP 401).

        A missing key resolves to the anonymous tenant when one is
        configured; an *unknown* key never does -- a client that sends
        credentials gets a verdict on those credentials.
        """
        if api_key is None or api_key == "":
            entry = self._anonymous
            return entry.tenant if entry is not None else None
        entry = self._entries.get(api_key)
        return entry.tenant if entry is not None else None

    def _entry_for(self, tenant: Tenant) -> Optional[_TenantEntry]:
        if (
            self._anonymous is not None
            and self._anonymous.tenant.name == tenant.name
        ):
            return self._anonymous
        for entry in self._entries.values():
            if entry.tenant.name == tenant.name:
                return entry
        return None

    # -- admission -----------------------------------------------------
    def admit(self, tenant: Tenant) -> Admission:
        """Rate-limit then queue-bound one request for ``tenant``.

        On success the caller holds one queue slot and must call
        :meth:`release` exactly once when the request finishes (any
        outcome).  Order matters: the bucket is consulted first so a
        rate-limited tenant cannot occupy queue capacity, and the slot
        is only taken when the bucket admits, so a shed never burns a
        token the client will want for the retry.
        """
        entry = self._entry_for(tenant)
        if entry is None:
            raise QueryError(f"unknown tenant {tenant.name!r}")
        retry_after = entry.bucket.try_acquire()
        if retry_after > 0:
            _SHED.labels(reason="rate").inc()
            return Admission(
                admitted=False, reason="rate", retry_after=retry_after
            )
        with self._depth_lock:
            if self._depth >= self.queue_capacity:
                depth = self._depth
            else:
                self._depth += 1
                depth = -1
        if depth >= 0:
            _SHED.labels(reason="queue").inc()
            return Admission(admitted=False, reason="queue")
        _QUEUE_DEPTH.inc()
        return Admission(admitted=True)

    def shed_draining(self) -> Admission:
        """Record a drain-time refusal (the server is shutting down)."""
        _SHED.labels(reason="draining").inc()
        return Admission(admitted=False, reason="draining")

    def release(self) -> None:
        """Give back one queue slot taken by an admitted request."""
        with self._depth_lock:
            if self._depth <= 0:
                raise QueryError(
                    "release() without a matching admitted request"
                )
            self._depth -= 1
        _QUEUE_DEPTH.dec()

    @property
    def depth(self) -> int:
        """Requests currently holding queue slots."""
        with self._depth_lock:
            return self._depth


def tenants_from_config(
    config: Mapping[str, object],
) -> Dict[str, Tenant]:
    """``api_key -> Tenant`` from a plain configuration mapping.

    The document shape (JSON-friendly, see ``docs/api.md``)::

        {"tenants": {
            "key-alpha": {"name": "alpha", "rate": 50, "burst": 10,
                           "deadline_ms": 200, "max_bytes": 33554432},
            "key-beta":  {"name": "beta"}
        }}

    ``rate`` defaults to unlimited, ``burst`` to 16; the four limit
    fields (``deadline_ms``, ``max_nnz``, ``max_bytes``,
    ``max_densified_cells``) are optional and become the tenant's
    :class:`~repro.runtime.limits.ExecutionLimits`.
    """
    raw = config.get("tenants")
    if not isinstance(raw, Mapping) or not raw:
        raise QueryError(
            "tenant config needs a non-empty 'tenants' mapping"
        )
    tenants: Dict[str, Tenant] = {}
    for api_key, spec in raw.items():
        if not isinstance(spec, Mapping):
            raise QueryError(
                f"tenant entry for key {api_key!r} must be a mapping"
            )
        unknown = set(spec) - {
            "name",
            "rate",
            "burst",
            "deadline_ms",
            "max_nnz",
            "max_bytes",
            "max_densified_cells",
        }
        if unknown:
            raise QueryError(
                f"tenant entry for key {api_key!r} has unknown "
                f"field(s) {sorted(unknown)}"
            )
        name = spec.get("name")
        if not isinstance(name, str) or not name:
            raise QueryError(
                f"tenant entry for key {api_key!r} needs a 'name'"
            )
        limits = ExecutionLimits(
            deadline_ms=_number(spec, "deadline_ms"),
            max_nnz=_integer(spec, "max_nnz"),
            max_bytes=_integer(spec, "max_bytes"),
            max_densified_cells=_integer(spec, "max_densified_cells"),
        )
        tenants[str(api_key)] = Tenant(
            name=name,
            rate=float(_number(spec, "rate") or math.inf),
            burst=float(_number(spec, "burst") or 16.0),
            limits=None if limits.unlimited else limits,
        )
    return tenants


def load_tenants(path: Union[str, Path]) -> Dict[str, Tenant]:
    """:func:`tenants_from_config` over a JSON file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise QueryError(
            f"could not load tenant config {path}: {exc}"
        ) from exc
    if not isinstance(document, Mapping):
        raise QueryError(
            f"tenant config {path} must be a JSON object"
        )
    return tenants_from_config(document)


def _number(spec: Mapping[str, object], key: str) -> Optional[float]:
    value = spec.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"tenant field {key!r} must be a number")
    return float(value)


def _integer(spec: Mapping[str, object], key: str) -> Optional[int]:
    value = spec.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise QueryError(f"tenant field {key!r} must be an integer")
    return int(value)
