"""Async HTTP/1.1 serving tier with admission control.

A stdlib-only network front end over one
:class:`~repro.core.engine.HeteSimEngine` (no third-party web
framework, no event-loop dependency beyond :mod:`asyncio`):

* **Endpoints** -- ``POST /query`` (one pair relevance), ``POST
  /topk`` (one ranked query), ``POST /batch`` (a
  :class:`~repro.serve.batch.BatchRequest` over the wire), ``POST
  /warm`` (pre-materialise half matrices), ``GET /healthz``, ``GET
  /metrics`` (byte-stable Prometheus text,
  :data:`~repro.obs.export.PROMETHEUS_CONTENT_TYPE`), ``GET
  /metrics/json`` (the JSON snapshot) and ``GET /doctor``.
* **Admission control** -- every POST authenticates via ``X-API-Key``
  (or ``Authorization: Bearer``) against the
  :class:`~repro.serve.admission.AdmissionController`'s tenant table,
  then passes a per-tenant token bucket (429 + ``Retry-After``) and a
  bounded concurrency queue (503 shed).  Admitted work runs under the
  tenant's :class:`~repro.runtime.limits.ExecutionLimits` intersected
  with the server default (strictest wins).
* **Overload degrades, it does not 500** -- single-query endpoints run
  the full exact→truncate→prune→lowrank degradation ladder
  (:class:`~repro.runtime.resilience.ResilientRuntime`); batch runs
  exact under the tenant tracker and, on a
  :class:`~repro.hin.errors.ResourceLimitError`, retries once under
  the unenforced truncation floor.  Degraded answers carry provenance
  headers (``X-Repro-Strategy``, ``X-Repro-Tripped``,
  ``X-Repro-Degraded``) so clients can tell an approximate 200 from an
  exact one.
* **Graceful drain** -- :meth:`HttpServer.stop` (and the CLI's
  SIGTERM handler) stops accepting connections, lets in-flight
  requests finish within a grace period, then closes the loop.  While
  draining, new requests on kept-alive connections get a 503 with
  ``Connection: close``.

The event loop runs in a dedicated background thread; CPU-bound query
work is offloaded to a worker pool whose tasks adopt the submitter's
ambient execution context, so the loop stays responsive for health
checks and metric scrapes even while large GEMMs run.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from ..core.engine import HeteSimEngine
from ..hin.errors import (
    GraphError,
    PathError,
    QueryError,
    ReproError,
    ResourceLimitError,
    SchemaError,
)
from ..obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_text,
    render_json,
)
from ..obs.metrics import REGISTRY
from ..obs.trace import span as trace_span
from ..runtime.limits import (
    ExecutionLimits,
    adopt_context,
    current_context,
    execution_scope,
)
from .admission import Admission, AdmissionController, Tenant
from .batch import BatchRequest, BatchResult, Query, QueryServer

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
]

#: Truncation floor used for the batch endpoint's last-resort retry
#: after the exact attempt trips a tenant limit (mirrors the
#: degradation ladder's ``truncate-final`` rung).
FLOOR_EPS = 1e-4

_MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_LINE_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests answered, by endpoint and status code.",
)
_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request latency (parse to response written), by endpoint.",
)
_DEGRADED = REGISTRY.counter(
    "repro_http_degraded_total",
    "HTTP answers produced by a degraded strategy, by strategy.",
)


class _HttpError(Exception):
    """Internal control-flow error carrying a ready HTTP answer."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
        error: str = "bad_request",
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers
        self.error = error


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP answer: status, body and extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()

    def encode(self, close: bool) -> bytes:
        """Serialise to wire bytes (HTTP/1.1, explicit length)."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


def _json_response(
    status: int,
    payload: Dict[str, Any],
    headers: Tuple[Tuple[str, str], ...] = (),
) -> HttpResponse:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return HttpResponse(status=status, body=body, headers=headers)


def _error_payload(error: str, detail: str) -> Dict[str, Any]:
    return {"error": error, "detail": detail}


def _require_str(payload: Dict[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise _HttpError(
            400, f"body field {key!r} must be a non-empty string"
        )
    return value


def _optional_int(
    payload: Dict[str, Any], key: str, default: int
) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _HttpError(400, f"body field {key!r} must be an integer")
    return value


def _optional_bool(
    payload: Dict[str, Any], key: str, default: bool
) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise _HttpError(400, f"body field {key!r} must be a boolean")
    return value


def _provenance_headers(
    strategy: str, degraded: bool, tripped: Optional[str]
) -> Tuple[Tuple[str, str], ...]:
    """The degradation provenance carried on every answered query."""
    headers: List[Tuple[str, str]] = [
        ("X-Repro-Strategy", strategy),
        ("X-Repro-Degraded", "true" if degraded else "false"),
    ]
    if tripped:
        headers.append(("X-Repro-Tripped", tripped))
    return tuple(headers)


class HttpServer:
    """The serving tier: asyncio front end over one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.HeteSimEngine` to serve.
    admission:
        Tenant table + rate limits + bounded queue.  ``None`` builds a
        permissive controller (anonymous tenant, unlimited rate,
        64-deep queue) suitable for local use.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    default_limits:
        Server-wide :class:`~repro.runtime.limits.ExecutionLimits`
        intersected with each tenant's own (strictest wins).
    workers:
        Size of the CPU worker pool query work is offloaded to.
    graph_path / store_dir:
        When given, ``GET /doctor`` runs the full store doctor
        (:func:`~repro.runtime.doctor.run_doctor`); otherwise it
        reports in-memory graph validation only.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` threaded into
        single-query runtimes (deterministic failure drills).
    drain_grace_s:
        How long :meth:`stop` waits for in-flight requests.
    """

    def __init__(
        self,
        engine: HeteSimEngine,
        admission: Optional[AdmissionController] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_limits: Optional[ExecutionLimits] = None,
        workers: int = 4,
        graph_path: Optional[str] = None,
        store_dir: Optional[str] = None,
        faults: Optional[object] = None,
        drain_grace_s: float = 10.0,
    ) -> None:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.server = QueryServer(engine)
        self.admission = admission or AdmissionController(
            {}, queue_capacity=64, anonymous=Tenant("anonymous")
        )
        self.host = host
        self._requested_port = port
        self.default_limits = default_limits
        self.workers = workers
        self.graph_path = graph_path
        self.store_dir = store_dir
        self.faults = faults
        self.drain_grace_s = drain_grace_s

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._offload: Optional[
            Callable[[Callable[[], HttpResponse]], Awaitable[HttpResponse]]
        ] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._inflight = 0
        self._draining = False
        self._port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._port is None:
            raise QueryError("server is not running")
        return self._port

    @property
    def url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """True once :meth:`stop` has begun refusing new work."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently being processed."""
        return self._inflight

    def start(self) -> "HttpServer":
        """Bind the socket and serve from a background event loop."""
        if self._loop is not None:
            raise QueryError("server already started")
        loop = asyncio.new_event_loop()
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-http"
        )

        # Every task submitted to the pool adopts the submitter's
        # ambient ExecutionContext, so limit scopes installed around
        # start()/test harnesses propagate into worker threads.
        def offload(
            handler: Callable[[], HttpResponse],
        ) -> Awaitable[HttpResponse]:
            context = current_context()

            def task() -> HttpResponse:
                with adopt_context(context):
                    return handler()

            return loop.run_in_executor(pool, task)

        self._pool = pool
        self._offload = offload
        self._loop = loop
        self._thread = threading.Thread(
            target=loop.run_forever, name="repro-http-loop", daemon=True
        )
        self._thread.start()

        async def bind() -> asyncio.AbstractServer:
            return await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self._requested_port,
                limit=_MAX_LINE_BYTES,
            )

        self._server = asyncio.run_coroutine_threadsafe(
            bind(), loop
        ).result(timeout=30)
        sockets = self._server.sockets or []
        if not sockets:
            raise QueryError("server failed to bind")
        self._port = int(sockets[0].getsockname()[1])
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` let in-flight work finish."""
        loop = self._loop
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._shutdown(drain), loop
        ).result(timeout=self.drain_grace_s + 30)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        loop.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._loop = None
        self._thread = None
        self._server = None
        self._pool = None
        self._offload = None
        self._port = None

    async def _shutdown(self, drain: bool) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            try:
                await asyncio.wait_for(
                    self._drained(), timeout=self.drain_grace_s
                )
            except asyncio.TimeoutError:
                pass
        for writer in list(self._writers):
            writer.close()

    async def _drained(self) -> None:
        while self._inflight > 0:
            await asyncio.sleep(0.01)

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                close = (
                    request.header("connection").lower() == "close"
                    or self._draining
                )
                self._inflight += 1
                started = time.perf_counter()
                try:
                    endpoint, response = await self._respond(request)
                except _HttpError as exc:
                    endpoint, response = "unknown", _json_response(
                        exc.status,
                        _error_payload(exc.error, exc.message),
                        headers=exc.headers,
                    )
                except Exception as exc:  # safety net: answer, never drop
                    endpoint, response = "unknown", _json_response(
                        500,
                        _error_payload(type(exc).__name__, str(exc)),
                    )
                finally:
                    self._inflight -= 1
                _REQUESTS.labels(
                    endpoint=endpoint, status=str(response.status)
                ).inc()
                _LATENCY.labels(endpoint=endpoint).observe(
                    time.perf_counter() - started
                )
                writer.write(response.encode(close))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpRequest]:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            text = raw.decode("latin-1").strip()
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            return HttpRequest(
                method=method,
                path="\x00payload-too-large",
                headers=headers,
                body=b"",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return HttpRequest(
            method=method, path=path, headers=headers, body=body
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _respond(
        self, request: HttpRequest
    ) -> Tuple[str, HttpResponse]:
        """Route one request; returns (endpoint label, response)."""
        if request.path == "\x00payload-too-large":
            return "unknown", _json_response(
                413, _error_payload("payload_too_large", "body too large")
            )
        gets: Dict[str, Callable[[], HttpResponse]] = {
            "/healthz": self._handle_healthz,
            "/metrics": self._handle_metrics,
            "/metrics/json": self._handle_metrics_json,
        }
        posts: Dict[
            str, Callable[[Tenant, Dict[str, Any]], HttpResponse]
        ] = {
            "/query": self._handle_query,
            "/topk": self._handle_topk,
            "/batch": self._handle_batch,
            "/warm": self._handle_warm,
        }
        endpoint = request.path.lstrip("/") or "unknown"
        if request.path in gets or request.path == "/doctor":
            if request.method != "GET":
                return endpoint, _json_response(
                    405,
                    _error_payload("method_not_allowed", "use GET"),
                    headers=(("Allow", "GET"),),
                )
            if request.path == "/doctor":
                return endpoint, await self._offload_call(
                    self._handle_doctor
                )
            return endpoint, gets[request.path]()
        if request.path in posts:
            if request.method != "POST":
                return endpoint, _json_response(
                    405,
                    _error_payload("method_not_allowed", "use POST"),
                    headers=(("Allow", "POST"),),
                )
            return endpoint, await self._admit_and_run(
                endpoint, request, posts[request.path]
            )
        return "unknown", _json_response(
            404, _error_payload("not_found", request.path)
        )

    async def _offload_call(
        self, handler: Callable[[], HttpResponse]
    ) -> HttpResponse:
        offload = self._offload
        if offload is None:
            raise QueryError("server is not running")
        return await offload(handler)

    async def _admit_and_run(
        self,
        endpoint: str,
        request: HttpRequest,
        handler: Callable[[Tenant, Dict[str, Any]], HttpResponse],
    ) -> HttpResponse:
        if self._draining:
            return self._shed_response(self.admission.shed_draining())
        tenant = self.admission.authenticate(self._api_key(request))
        if tenant is None:
            return _json_response(
                401,
                _error_payload("unauthorized", "unknown API key"),
                headers=(("WWW-Authenticate", "ApiKey"),),
            )
        admission = self.admission.admit(tenant)
        if not admission.admitted:
            return self._shed_response(admission)
        try:
            payload = self._parse_json(request)

            def work() -> HttpResponse:
                with trace_span(
                    "http.request",
                    endpoint=endpoint,
                    tenant=tenant.name,
                ):
                    return handler(tenant, payload)

            return await self._offload_call(work)
        except _HttpError as exc:
            return _json_response(
                exc.status,
                _error_payload(exc.error, exc.message),
                headers=exc.headers,
            )
        finally:
            self.admission.release()

    @staticmethod
    def _api_key(request: HttpRequest) -> Optional[str]:
        key = request.header("x-api-key")
        if key:
            return key
        auth = request.header("authorization")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None

    @staticmethod
    def _shed_response(admission: Admission) -> HttpResponse:
        if admission.reason == "rate":
            retry = max(admission.retry_after, 0.001)
            return _json_response(
                429,
                _error_payload("rate_limited", "token bucket empty"),
                headers=(("Retry-After", f"{retry:.3f}"),),
            )
        if admission.reason == "draining":
            return _json_response(
                503,
                _error_payload("draining", "server is draining"),
                headers=(("Retry-After", "1"),),
            )
        return _json_response(
            503,
            _error_payload("overloaded", "admission queue full"),
            headers=(("Retry-After", "1"),),
        )

    @staticmethod
    def _parse_json(request: HttpRequest) -> Dict[str, Any]:
        if not request.body:
            return {}
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    # ------------------------------------------------------------------
    # GET endpoints (served on the loop thread; all cheap)
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> HttpResponse:
        return _json_response(
            200,
            {
                "status": "draining" if self._draining else "ok",
                "inflight": self._inflight,
                "queue_depth": self.admission.depth,
            },
        )

    def _handle_metrics(self) -> HttpResponse:
        return HttpResponse(
            status=200,
            body=prometheus_text().encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def _handle_metrics_json(self) -> HttpResponse:
        return HttpResponse(
            status=200, body=render_json().encode("utf-8")
        )

    def _handle_doctor(self) -> HttpResponse:
        if self.graph_path is not None:
            from ..runtime.doctor import run_doctor

            report = run_doctor(self.graph_path, self.store_dir)
            return _json_response(
                200 if report.ok else 503,
                {
                    "ok": report.ok,
                    "checks": [
                        {
                            "name": check.name,
                            "ok": check.ok,
                            "detail": check.detail,
                            "error": check.error,
                        }
                        for check in report.checks
                    ],
                },
            )
        from ..hin.validation import graph_report

        report_mem = graph_report(self.engine.graph)
        ok = not report_mem.has_errors
        return _json_response(
            200 if ok else 503,
            {"ok": ok, "summary": report_mem.summary()},
        )

    # ------------------------------------------------------------------
    # POST endpoints (run in the worker pool)
    # ------------------------------------------------------------------
    def _handle_query(
        self, tenant: Tenant, payload: Dict[str, Any]
    ) -> HttpResponse:
        source = _require_str(payload, "source")
        target = _require_str(payload, "target")
        path = _require_str(payload, "path")
        normalized = _optional_bool(payload, "normalized", True)
        measure = payload.get("measure", "hetesim")
        if measure != "hetesim":
            raise _HttpError(
                400,
                "pair queries over HTTP support only the hetesim "
                f"measure, got {measure!r} (use /batch)",
            )
        limits = tenant.resolved_limits(self.default_limits)
        runtime = self.engine.runtime(
            limits=limits, on_limit="degrade", faults=self.faults
        )
        try:
            result = runtime.relevance(
                source, target, path, normalized=normalized
            )
        except ReproError as exc:
            return self._repro_error(exc)
        if result.degraded:
            _DEGRADED.labels(strategy=result.strategy).inc()
        return _json_response(
            200,
            {
                "source": source,
                "target": target,
                "path": path,
                "score": float(result.value),
                "strategy": result.strategy,
                "degraded": result.degraded,
                "tripped": result.tripped,
            },
            headers=_provenance_headers(
                result.strategy, result.degraded, result.tripped
            ),
        )

    def _handle_topk(
        self, tenant: Tenant, payload: Dict[str, Any]
    ) -> HttpResponse:
        source = _require_str(payload, "source")
        path = _require_str(payload, "path")
        k = _optional_int(payload, "k", 10)
        normalized = _optional_bool(payload, "normalized", True)
        measure = payload.get("measure", "hetesim")
        if not isinstance(measure, str):
            raise _HttpError(400, "body field 'measure' must be a string")
        if measure != "hetesim":
            return self._run_batch(
                tenant,
                BatchRequest(
                    [
                        Query(
                            source=source,
                            path=path,
                            k=k,
                            normalized=normalized,
                            measure=measure,
                        )
                    ]
                ),
                single=True,
            )
        limits = tenant.resolved_limits(self.default_limits)
        runtime = self.engine.runtime(
            limits=limits, on_limit="degrade", faults=self.faults
        )
        try:
            result = runtime.top_k(source, path, k=k, normalized=normalized)
        except ReproError as exc:
            return self._repro_error(exc)
        if result.degraded:
            _DEGRADED.labels(strategy=result.strategy).inc()
        ranking = [
            [key, float(score)] for key, score in result.value
        ]
        return _json_response(
            200,
            {
                "source": source,
                "path": path,
                "k": k,
                "ranking": ranking,
                "strategy": result.strategy,
                "degraded": result.degraded,
                "tripped": result.tripped,
            },
            headers=_provenance_headers(
                result.strategy, result.degraded, result.tripped
            ),
        )

    def _handle_batch(
        self, tenant: Tenant, payload: Dict[str, Any]
    ) -> HttpResponse:
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, list):
            raise _HttpError(400, "body field 'queries' must be a list")
        queries: List[Query] = []
        for index, entry in enumerate(raw_queries):
            if not isinstance(entry, dict):
                raise _HttpError(
                    400, f"queries[{index}] must be an object"
                )
            source = _require_str(entry, "source")
            path = _require_str(entry, "path")
            k_value = entry.get("k", 10)
            if k_value is not None and (
                isinstance(k_value, bool) or not isinstance(k_value, int)
            ):
                raise _HttpError(
                    400, f"queries[{index}].k must be an integer or null"
                )
            queries.append(
                Query(
                    source=source,
                    path=path,
                    k=k_value,
                    normalized=_optional_bool(entry, "normalized", True),
                    measure=str(entry.get("measure", "hetesim")),
                )
            )
        workers = _optional_int(payload, "workers", 1)
        backend = payload.get("backend", "auto")
        if not isinstance(backend, str):
            raise _HttpError(400, "body field 'backend' must be a string")
        try:
            request = BatchRequest(
                queries, workers=workers, backend=backend
            )
        except QueryError as exc:
            raise _HttpError(400, str(exc)) from exc
        return self._run_batch(tenant, request, single=False)

    def _run_batch(
        self, tenant: Tenant, request: BatchRequest, single: bool
    ) -> HttpResponse:
        limits = tenant.resolved_limits(self.default_limits)
        strategy, tripped = "exact", None
        try:
            try:
                result = self.server.run(request, limits=limits)
            except ResourceLimitError as exc:
                # Last-resort floor: rerun once under the unenforced
                # truncation floor so overload degrades instead of
                # failing (mirrors the ladder's truncate-final rung).
                strategy, tripped = "truncate-final", exc.limit
                with execution_scope(truncate_eps=FLOOR_EPS):
                    result = self.server.run(request)
                _DEGRADED.labels(strategy=strategy).inc()
        except ReproError as exc:
            return self._repro_error(exc)
        return self._batch_response(result, strategy, tripped, single)

    def _batch_response(
        self,
        result: BatchResult,
        strategy: str,
        tripped: Optional[str],
        single: bool,
    ) -> HttpResponse:
        degraded = strategy != "exact"
        headers = _provenance_headers(strategy, degraded, tripped)
        entries = [
            {
                "source": item.query.source,
                "measure": item.query.measure,
                "ranking": [
                    [key, float(score)] for key, score in item.ranking
                ],
            }
            for item in result.results
        ]
        stats = result.stats
        body: Dict[str, Any] = {
            "stats": {
                "num_queries": stats.num_queries,
                "num_groups": stats.num_groups,
                "workers": stats.workers,
                "backend": stats.backend,
                "halves_materialised": stats.halves_materialised,
                "seconds": stats.seconds,
            },
            "strategy": strategy,
            "degraded": degraded,
            "tripped": tripped,
        }
        if single and entries:
            body["ranking"] = entries[0]["ranking"]
        body["results"] = entries
        return _json_response(200, body, headers=headers)

    def _handle_warm(
        self, tenant: Tenant, payload: Dict[str, Any]
    ) -> HttpResponse:
        raw_paths = payload.get("paths")
        if not isinstance(raw_paths, list) or not all(
            isinstance(item, str) for item in raw_paths
        ):
            raise _HttpError(
                400, "body field 'paths' must be a list of strings"
            )
        workers = _optional_int(payload, "workers", 1)
        if workers < 1:
            raise _HttpError(400, "body field 'workers' must be >= 1")
        try:
            report = self.server.warm(raw_paths, workers=workers)
        except ReproError as exc:
            return self._repro_error(exc)
        return _json_response(
            200,
            {
                "paths": list(report.paths),
                "persisted": list(report.persisted),
                "skipped": list(report.skipped),
                "workers": report.workers,
                "backend": report.backend,
                "seconds": report.seconds,
            },
        )

    @staticmethod
    def _repro_error(exc: ReproError) -> HttpResponse:
        """Map typed library errors to HTTP answers (never a bare 500)."""
        if isinstance(exc, ResourceLimitError):
            return _json_response(
                503,
                _error_payload("resource_limit", str(exc)),
                headers=(
                    ("Retry-After", "1"),
                    ("X-Repro-Tripped", exc.limit),
                ),
            )
        if isinstance(
            exc, (QueryError, PathError, GraphError, SchemaError)
        ):
            return _json_response(
                400, _error_payload(type(exc).__name__, str(exc))
            )
        return _json_response(
            500, _error_payload(type(exc).__name__, str(exc))
        )
