"""Batched, parallel query serving (Section 4.6 at serving scale).

The paper splits relevance search into an off-line materialisation
stage and an on-line query stage; this package makes the on-line stage
fast under *many-query* load:

* :class:`BatchRequest` / :class:`BatchResult` / :class:`QueryServer`
  -- group queries by meta path, materialise each path's halves exactly
  once, score every source of a group with a single block sparse GEMM,
  and select each query's top-k without sorting the target axis
  (:mod:`repro.serve.batch`);
* :class:`Dispatcher` / :class:`SingleFlight` -- thread-pool execution
  of independent materialisations with ambient execution-context
  propagation (limits and fault plans keep applying inside workers) and
  in-flight deduplication (:mod:`repro.serve.dispatch`);
* :class:`ProcessDispatcher` / :func:`resolve_backend` -- the
  process-parallel tier (:mod:`repro.serve.procs`): CPU-bound block
  GEMMs shard across a process pool with halves published through
  :mod:`multiprocessing.shared_memory`, limits/faults/metrics/spans
  carried over the boundary; ``backend="auto"`` picks the tier per
  host and workload;
* :class:`WarmReport` / :meth:`HeteSimEngine.warm
  <repro.core.engine.HeteSimEngine.warm>` -- the off-line stage as an
  API: pre-materialise half matrices and persist them through
  :class:`~repro.core.store.MatrixStore`.

* :class:`HttpServer` / :class:`AdmissionController` -- the network
  tier (:mod:`repro.serve.http`, :mod:`repro.serve.admission`): a
  stdlib-only async HTTP/1.1 front end with per-tenant API keys,
  token-bucket rate limits, a bounded admission queue with
  load-shedding, per-tenant execution limits, degradation-ladder
  overload answers (provenance in ``X-Repro-*`` headers) and graceful
  SIGTERM drain.

The CLI exposes the same functionality as ``serve-warm``,
``serve-batch`` and ``serve-http`` commands.
"""

from __future__ import annotations

from .admission import (
    Admission,
    AdmissionController,
    Tenant,
    TokenBucket,
    load_tenants,
    tenants_from_config,
)
from .batch import (
    BatchRequest,
    BatchResult,
    BatchStats,
    Query,
    QueryResult,
    QueryServer,
    serve_batch,
)
from .dispatch import Dispatcher, SingleFlight, WarmReport
from .http import HttpRequest, HttpResponse, HttpServer
from .procs import ProcessDispatcher, resolve_backend, usable_cpus

__all__ = [
    "Admission",
    "AdmissionController",
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "Dispatcher",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "ProcessDispatcher",
    "Query",
    "QueryResult",
    "QueryServer",
    "SingleFlight",
    "Tenant",
    "TokenBucket",
    "WarmReport",
    "load_tenants",
    "resolve_backend",
    "serve_batch",
    "tenants_from_config",
    "usable_cpus",
]
