"""Batched, parallel query serving (Section 4.6 at serving scale).

The paper splits relevance search into an off-line materialisation
stage and an on-line query stage; this package makes the on-line stage
fast under *many-query* load:

* :class:`BatchRequest` / :class:`BatchResult` / :class:`QueryServer`
  -- group queries by meta path, materialise each path's halves exactly
  once, score every source of a group with a single block sparse GEMM,
  and select each query's top-k without sorting the target axis
  (:mod:`repro.serve.batch`);
* :class:`Dispatcher` / :class:`SingleFlight` -- thread-pool execution
  of independent materialisations with ambient execution-context
  propagation (limits and fault plans keep applying inside workers) and
  in-flight deduplication (:mod:`repro.serve.dispatch`);
* :class:`ProcessDispatcher` / :func:`resolve_backend` -- the
  process-parallel tier (:mod:`repro.serve.procs`): CPU-bound block
  GEMMs shard across a process pool with halves published through
  :mod:`multiprocessing.shared_memory`, limits/faults/metrics/spans
  carried over the boundary; ``backend="auto"`` picks the tier per
  host and workload;
* :class:`WarmReport` / :meth:`HeteSimEngine.warm
  <repro.core.engine.HeteSimEngine.warm>` -- the off-line stage as an
  API: pre-materialise half matrices and persist them through
  :class:`~repro.core.store.MatrixStore`.

The CLI exposes the same functionality as ``serve-warm`` and
``serve-batch`` commands.
"""

from __future__ import annotations

from .batch import (
    BatchRequest,
    BatchResult,
    BatchStats,
    Query,
    QueryResult,
    QueryServer,
    serve_batch,
)
from .dispatch import Dispatcher, SingleFlight, WarmReport
from .procs import ProcessDispatcher, resolve_backend, usable_cpus

__all__ = [
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "Dispatcher",
    "ProcessDispatcher",
    "Query",
    "QueryResult",
    "QueryServer",
    "SingleFlight",
    "WarmReport",
    "resolve_backend",
    "serve_batch",
    "usable_cpus",
]
