"""Batched, parallel query serving (Section 4.6 at serving scale).

The paper splits relevance search into an off-line materialisation
stage and an on-line query stage; this package makes the on-line stage
fast under *many-query* load:

* :class:`BatchRequest` / :class:`BatchResult` / :class:`QueryServer`
  -- group queries by meta path, materialise each path's halves exactly
  once, score every source of a group with a single block sparse GEMM,
  and select each query's top-k without sorting the target axis
  (:mod:`repro.serve.batch`);
* :class:`Dispatcher` / :class:`SingleFlight` -- thread-pool execution
  of independent materialisations with ambient execution-context
  propagation (limits and fault plans keep applying inside workers) and
  in-flight deduplication (:mod:`repro.serve.dispatch`);
* :class:`WarmReport` / :meth:`HeteSimEngine.warm
  <repro.core.engine.HeteSimEngine.warm>` -- the off-line stage as an
  API: pre-materialise half matrices and persist them through
  :class:`~repro.core.store.MatrixStore`.

The CLI exposes the same functionality as ``serve-warm`` and
``serve-batch`` commands.
"""

from __future__ import annotations

from .batch import (
    BatchRequest,
    BatchResult,
    BatchStats,
    Query,
    QueryResult,
    QueryServer,
    serve_batch,
)
from .dispatch import Dispatcher, SingleFlight, WarmReport

__all__ = [
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "Dispatcher",
    "Query",
    "QueryResult",
    "QueryServer",
    "SingleFlight",
    "WarmReport",
    "serve_batch",
]
