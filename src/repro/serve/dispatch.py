"""Concurrent materialisation dispatch for the serving layer.

Two primitives:

* :class:`Dispatcher` -- a thin :class:`~concurrent.futures.ThreadPoolExecutor`
  front that runs independent tasks (per-path half materialisation,
  per-group batch scoring) in parallel while **propagating the ambient
  execution context** into every worker.  :mod:`contextvars` values do
  not cross thread boundaries, so without the propagation a deadline or
  fault plan installed by :func:`~repro.runtime.limits.execution_scope`
  in the submitting thread would silently stop applying inside the
  pool; the dispatcher captures :func:`~repro.runtime.limits.current_context`
  at submit time and wraps each task in
  :func:`~repro.runtime.limits.adopt_context`, so the *same* tracker
  (shared deadline, cumulative budgets) and the same
  :class:`~repro.runtime.faults.FaultPlan` counters keep firing.

* :class:`SingleFlight` -- generic in-flight deduplication by key:
  concurrent calls for one key share a single computation (the first
  caller computes, the rest wait on its future).  The engine's
  per-path-key half memoisation uses the same discipline internally;
  this class is for callers composing their own keyed work.

Threads (not processes) are the right pool here: scipy releases the
GIL inside sparse matrix products, which is where batch serving spends
its time.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..hin.errors import QueryError
from ..obs.trace import adopt_span, current_span
from ..runtime.limits import adopt_context, current_context

__all__ = ["Dispatcher", "SingleFlight", "WarmReport"]

T = TypeVar("T")
R = TypeVar("R")


class Dispatcher:
    """Run independent tasks on a thread pool with context propagation.

    ``workers=1`` (the default) degrades to a plain sequential loop in
    the calling thread -- no pool, no context juggling -- so the
    single-worker execution is byte-for-byte the reference semantics
    that parallel runs are tested against.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> List[R]:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results keep the input order regardless of completion order.
        A task that raises re-raises in the caller after all tasks have
        been scheduled; the ambient execution context of the *calling*
        thread is installed around every task, so limits and fault
        injection behave as if the tasks ran inline.
        """
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        context = current_context()
        parent_span = current_span()

        def run(item: T) -> R:
            with adopt_context(context), adopt_span(parent_span):
                return fn(item)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, item) for item in items]
            return [future.result() for future in futures]


class SingleFlight:
    """Deduplicate concurrent computations by key.

    :meth:`do` runs ``fn`` for a key at most once among concurrent
    callers: the first caller computes while the rest block on the
    shared future and receive the same result (or the same exception).
    Once no call is in flight the key computes fresh again -- this is
    in-flight deduplication, not a cache.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Future] = {}

    def do(
        self,
        key: Hashable,
        fn: Callable[[], R],
        timeout: Optional[float] = None,
    ) -> R:
        """Return ``fn()``, shared with concurrent callers of ``key``.

        ``timeout`` (seconds) bounds how long a follower waits on the
        leader's future.  A leader that dies without resolving its
        future -- a thread killed mid-``fn``, an interpreter-level
        error between registration and ``set_result`` -- would
        otherwise park every follower forever.  On timeout the stale
        future is evicted (only if it is still the registered one:
        a *resolved-and-replaced* future must not evict its
        successor) and the caller re-enters the election, becoming
        the new leader or following a fresh one.  ``None`` preserves
        the original wait-forever behaviour.
        """
        while True:
            with self._lock:
                future = self._inflight.get(key)
                if future is None:
                    future = Future()
                    self._inflight[key] = future
                    owner = True
                else:
                    owner = False
            if not owner:
                try:
                    return future.result(timeout)
                except FutureTimeout:
                    with self._lock:
                        if self._inflight.get(key) is future:
                            self._inflight.pop(key, None)
                    continue
            try:
                result = fn()
            except BaseException as exc:  # propagate to every waiter
                future.set_exception(exc)
                raise
            else:
                future.set_result(result)
                return result
            finally:
                with self._lock:
                    self._inflight.pop(key, None)


@dataclass(frozen=True)
class WarmReport:
    """What :meth:`HeteSimEngine.warm <repro.core.engine.HeteSimEngine.warm>`
    did: which paths were pre-materialised, which half-path matrices
    were persisted, which paths could not be persisted, and how long
    the warm-up took.

    ``skipped`` lists odd (edge-object) paths whose transition halves
    cannot round-trip through a matrix store: they were memoised for
    this process but a fresh process must recompute them.  An empty
    tuple when no store was given or every path persisted fully.

    ``backend`` records the execution tier that actually ran
    (``"thread"`` or ``"process"`` -- an ``"auto"`` request resolves
    before work starts).
    """

    paths: Tuple[str, ...]
    persisted: Tuple[str, ...]
    workers: int
    seconds: float
    skipped: Tuple[str, ...] = ()
    backend: str = "thread"

    def summary(self) -> str:
        """One-line rendering (the ``serve-warm`` CLI output)."""
        persisted = (
            f", persisted {len(self.persisted)} half matrices"
            if self.persisted
            else ""
        )
        skipped = (
            f", skipped persisting {len(self.skipped)} odd path(s) "
            f"[{', '.join(self.skipped)}]"
            if self.skipped
            else ""
        )
        backend = (
            f" [{self.backend} backend]"
            if self.backend != "thread"
            else ""
        )
        return (
            f"warmed {len(self.paths)} path(s) "
            f"[{', '.join(self.paths)}] with {self.workers} worker(s)"
            f"{backend} in {self.seconds * 1e3:.1f} ms{persisted}{skipped}"
        )
