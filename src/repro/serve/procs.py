"""Process-parallel execution tier: true multi-core for CPU-bound GEMM.

The thread :class:`~repro.serve.dispatch.Dispatcher` relies on scipy
releasing the GIL inside sparse products, but the Python glue around
each product (slicing, norm handling, memo bookkeeping) still
serialises -- ``BENCH_serve.json`` recorded a workers=4 *slowdown* on
pure materialisation.  This module adds the tier that actually escapes
the GIL:

* :class:`ProcessDispatcher` -- a seeded, deterministic
  :class:`~concurrent.futures.ProcessPoolExecutor` front.  Workers are
  bootstrapped once with the graph (inherited copy-on-write under the
  default ``fork`` start method; pickled -- see
  ``HeteroGraph.__getstate__`` -- under ``spawn``) and build a
  worker-local :class:`~repro.core.engine.HeteSimEngine` labelled
  ``engine="worker"``.
* **Task envelopes** -- every task returns a :class:`_TaskEnvelope`
  carrying its result *or* exception plus the worker-side registry
  delta, tracker charges, fault-plan progress and recorded spans, so
  observability and provenance survive the boundary even when the task
  raises.  The parent merges each envelope before re-raising.
* **Context propagation** -- the ambient
  :class:`~repro.runtime.limits.ExecutionContext` crosses the boundary
  via :func:`~repro.runtime.limits.export_context` /
  :func:`~repro.runtime.limits.adopt_exported_context`: deadlines keep
  the parent's clock origin (``CLOCK_MONOTONIC`` is system-wide),
  budgets continue from the bytes already charged, and fault plans
  continue the parent's per-site occurrence counts.  When a tracker or
  fault plan is ambient, tasks dispatch **sequentially** (absorbing
  each task's progress before exporting for the next), so cumulative
  budgets and ``(site, occurrence)`` matching stay byte-identical to
  in-process execution; the unconstrained fast path fans out fully.
* **Shared-memory data plane** -- matrices cross via
  :mod:`repro.core.shm` manifests, never pickles: the parent publishes
  a group's halves once and every shard worker reattaches zero-copy.

``resolve_backend`` is the ``backend="auto"`` heuristic
:meth:`~repro.core.engine.HeteSimEngine.warm` and
:func:`~repro.serve.batch.serve_batch` default to: the process tier is
selected only when the host has real parallelism (``usable_cpus() >=
2`` -- affinity clamped by the cgroup CPU quota, so a containerised
single-core host is not mistaken for a 4-core one) and the graph is
large enough for the fork/publish overhead to pay off.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..obs import metrics as obs_metrics
from ..obs.trace import TRACER, Span, current_span, span as trace_span
from ..runtime.faults import FaultPlan
from ..runtime.limits import (
    ContextExport,
    adopt_exported_context,
    current_context,
    export_context,
)
from ..core.shm import (
    HalvesManifest,
    ShmLease,
    attach_halves,
    open_segment,
    publish_halves,
)

__all__ = [
    "ProcessDispatcher",
    "usable_cpus",
    "graph_work_nnz",
    "resolve_backend",
    "warm_via_processes",
    "score_groups_via_processes",
    "PROCESS_MIN_EDGES",
]

#: Below this many graph edges the auto heuristic stays on threads:
#: fork + shared-memory publication costs milliseconds, which only a
#: GEMM of real size amortises.
PROCESS_MIN_EDGES = 20_000

_PROC_TASKS = obs_metrics.REGISTRY.counter(
    "repro_procs_tasks_total",
    "Tasks executed by the process tier, by kind.",
)
_PROC_TASK_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_procs_task_seconds",
    "Wall time of one process-tier task, parent-observed.",
    buckets=obs_metrics.SECONDS_BUCKETS,
)


# ----------------------------------------------------------------------
# host introspection / backend resolution
# ----------------------------------------------------------------------
def usable_cpus() -> int:
    """CPUs this process can actually burn in parallel.

    Scheduler affinity, clamped by the cgroup-v2 CPU quota when one is
    set: a container pinned to one core frequently still *sees* every
    host CPU in its affinity mask, and sizing a process pool off that
    number buys pure overhead.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    try:
        with open("/sys/fs/cgroup/cpu.max", "r", encoding="ascii") as fh:
            quota_text, period_text = fh.read().split()[:2]
        if quota_text != "max":
            cpus = min(
                cpus, max(1, int(quota_text) // int(period_text))
            )
    except (OSError, ValueError, IndexError):
        pass
    return max(1, cpus)


def graph_work_nnz(graph: HeteroGraph) -> int:
    """Total edges across all relations -- the auto heuristic's proxy
    for how much GEMM work a materialisation over ``graph`` implies."""
    return sum(
        graph.num_edges(relation.name)
        for relation in graph.schema.relations
    )


def resolve_backend(
    backend: str,
    workers: int,
    items: int,
    work_nnz: int,
    prefer_thread: bool = False,
) -> str:
    """Resolve ``"auto"`` to the tier that will actually be faster.

    Explicit ``"thread"`` / ``"process"`` pass through untouched (the
    process tier is always *correct*, just not always a win).  Auto
    picks processes only when every one of these holds:

    * more than one worker is requested and there is more than one
      independent item to spread;
    * the host has at least two usable CPUs (quota-aware, see
      :func:`usable_cpus`) -- on a single-core host a process pool is
      the thread dispatcher's 0.86x regression with extra fork cost;
    * the graph carries at least :data:`PROCESS_MIN_EDGES` edges;
    * the caller did not flag a thread-affine follow-up
      (``prefer_thread`` -- e.g. warm-with-store, whose persistence
      reads the parent cache only the thread tier populates).
    """
    if backend not in ("auto", "thread", "process"):
        raise QueryError(
            f"unknown backend {backend!r} "
            "(expected 'auto', 'thread' or 'process')"
        )
    if backend != "auto":
        return backend
    if workers < 2 or items < 2 or prefer_thread:
        return "thread"
    if usable_cpus() < 2:
        return "thread"
    if work_nnz < PROCESS_MIN_EDGES:
        return "thread"
    return "process"


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_WORKER_ENGINE = None


def _bootstrap_worker(graph: HeteroGraph) -> None:
    """Pool initializer: build the worker-local engine exactly once.

    The fixed ``obs_label="worker"`` keeps the merged registry's label
    cardinality bounded no matter how many pools and workers a process
    tree spawns.
    """
    global _WORKER_ENGINE
    from ..core.engine import HeteSimEngine

    _WORKER_ENGINE = HeteSimEngine(graph, obs_label="worker")


def _require_worker_engine():
    if _WORKER_ENGINE is None:
        raise QueryError(
            "process-tier task ran outside a bootstrapped worker"
        )
    return _WORKER_ENGINE


def _warm_task(path_code: str) -> HalvesManifest:
    """Materialise one path's halves and publish them for the parent.

    Runs under the adopted execution context, so the backend's
    ``executor.step`` fault sites and deadline/budget checks fire here,
    in the worker, with parent-continued provenance.  The published
    segments are handed off un-unlinked; the parent (the manifest
    holder) attaches, copies, and destroys them.
    """
    engine = _require_worker_engine()
    halves = engine.halves(engine.path(path_code))
    lease = ShmLease(owner=True)
    try:
        manifest = publish_halves(halves, lease)
    except BaseException:
        lease.release()
        raise
    lease.handoff()
    return manifest


def _score_shard_task(
    payload: Tuple[HalvesManifest, Sequence[int], Tuple[bool, ...]],
) -> Tuple[Dict[bool, np.ndarray], int]:
    """Score one row shard against published halves.

    Reattaches the halves zero-copy, runs the same
    :func:`~repro.core.measures.hetesim.raw_block` /
    :func:`~repro.core.measures.hetesim.normalise_block` code the
    in-process tier uses (bit-identical by row independence of CSR
    matmul), and returns dense blocks -- plain arrays, safe to pickle
    back after the shared mappings close.
    """
    from ..core.measures.hetesim import normalise_block, raw_block

    manifest, rows, flags = payload
    with ShmLease(owner=False) as lease:
        left, right, left_norms, right_norms = attach_halves(
            manifest, lease
        )
        block, nnz = raw_block(left, right, rows)
        blocks: Dict[bool, np.ndarray] = {}
        for flag in flags:
            blocks[flag] = (
                normalise_block(block, rows, left_norms, right_norms)
                if flag
                else block
            )
    return blocks, nnz


_TASKS: Dict[str, Callable] = {
    "warm": _warm_task,
    "score_shard": _score_shard_task,
}


@dataclass
class _TaskEnvelope:
    """Everything one worker task sends home.

    ``payload`` is the task's return value when ``ok``, else the
    exception it raised (the typed errors define ``__reduce__``, so
    they cross the pickle boundary intact).  The remaining fields are
    the worker-side state the parent must merge *regardless of
    outcome*: a failed task's limit trips, fired faults and metrics
    still happened.
    """

    ok: bool
    payload: object
    obs_delta: Dict[str, Dict[str, object]]
    tracker_delta: Tuple[int, int, int] = (0, 0, 0)
    truncated_mass: float = 0.0
    fault_counters: Dict[str, int] = field(default_factory=dict)
    fault_fired: List[Tuple[str, int, str]] = field(
        default_factory=list
    )
    span: Optional[Dict[str, object]] = None


def _run_task(
    kind: str,
    payload: object,
    export: Optional[ContextExport],
    trace_enabled: bool,
) -> _TaskEnvelope:
    """Worker-side task harness: adopt context, run, envelope the world."""
    before = obs_metrics.export_state()
    if trace_enabled:
        TRACER.enable()
        TRACER.reset()
    ok, result = True, None
    context = None
    try:
        with adopt_exported_context(export) as context:
            with trace_span(f"procs.{kind}", pid=os.getpid()):
                result = _TASKS[kind](payload)
    except BaseException as exc:
        ok, result = False, exc
    tracker_delta = (0, 0, 0)
    truncated_mass = 0.0
    fault_counters: Dict[str, int] = {}
    fault_fired: List[Tuple[str, int, str]] = []
    if context is not None:
        tracker = context.tracker
        if tracker is not None and export is not None:
            tracker_delta = (
                tracker.nnz_charged - export.nnz_charged,
                tracker.bytes_charged - export.bytes_charged,
                tracker.steps_executed,
            )
        if isinstance(context.faults, FaultPlan):
            fault_counters = context.faults.export().counters
            fault_fired = list(context.faults.fired)
        truncated_mass = context.truncated_mass
    span_dict = None
    if trace_enabled and TRACER.roots:
        span_dict = TRACER.roots[-1].to_dict()
        TRACER.reset()
    return _TaskEnvelope(
        ok=ok,
        payload=result,
        obs_delta=obs_metrics.diff_states(
            obs_metrics.export_state(), before
        ),
        tracker_delta=tracker_delta,
        truncated_mass=truncated_mass,
        fault_counters=fault_counters,
        fault_fired=fault_fired,
        span=span_dict,
    )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessDispatcher:
    """Run ``(kind, payload)`` tasks on a bootstrapped process pool.

    Mirrors the thread :class:`~repro.serve.dispatch.Dispatcher`
    contract -- input order preserved, the first failure re-raised in
    the caller, ambient limits/faults/spans kept coherent -- across a
    process boundary.  Deterministic by construction: results are
    collected in submission order, and contextful runs (an ambient
    tracker or fault plan) dispatch one task at a time so provenance
    matches in-process execution exactly.

    The pool is created lazily on first use and must be closed
    (``with`` or :meth:`close`); workers persist across calls, so the
    per-task cost after the first is pickle + envelope, not fork.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.graph = graph
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._mp_context = multiprocessing.get_context(start_method)
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the pool uses."""
        return self._mp_context.get_start_method()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context,
                initializer=_bootstrap_worker,
                initargs=(self.graph,),
            )
        return self._pool

    def map(
        self,
        tasks: Sequence[Tuple[str, object]],
        cleanup: Optional[Callable[[object], None]] = None,
    ) -> List[object]:
        """Run every task; return results in input order.

        On failure the first exception re-raises *after* every
        completed envelope has been merged (observability is never
        dropped); ``cleanup`` then runs on each successful result so
        callers can reclaim resources (e.g. unlink worker-published
        segments) that the raised error orphans.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        context = current_context()
        sequential = context is not None and (
            context.tracker is not None or context.faults is not None
        )
        trace_enabled = TRACER.enabled
        pool = self._ensure_pool()
        envelopes: List[_TaskEnvelope] = []
        if sequential:
            for kind, payload in tasks:
                envelope = self._dispatch_one(
                    pool, kind, payload, context, trace_enabled
                )
                envelopes.append(envelope)
                if not envelope.ok:
                    break
        else:
            export = export_context(context)
            tick = time.perf_counter()
            futures = [
                pool.submit(
                    _run_task, kind, payload, export, trace_enabled
                )
                for kind, payload in tasks
            ]
            for (kind, _), future in zip(tasks, futures):
                envelope = future.result()
                self._absorb(context, kind, envelope, trace_enabled)
                _PROC_TASK_SECONDS.labels(kind=kind).observe(
                    time.perf_counter() - tick
                )
                envelopes.append(envelope)

        results: List[object] = []
        first_error: Optional[BaseException] = None
        for envelope in envelopes:
            if envelope.ok:
                results.append(envelope.payload)
            elif first_error is None:
                first_error = envelope.payload
        if first_error is not None:
            if cleanup is not None:
                for result in results:
                    cleanup(result)
            raise first_error
        return results

    def _dispatch_one(
        self, pool, kind, payload, context, trace_enabled
    ) -> _TaskEnvelope:
        """One sequential round trip: fresh export, run, absorb.

        Re-exporting per task is what carries the previous task's
        charges and fault occurrences into the next one -- the
        cumulative semantics a single in-process tracker gives for
        free.
        """
        export = export_context(context)
        tick = time.perf_counter()
        envelope = pool.submit(
            _run_task, kind, payload, export, trace_enabled
        ).result()
        self._absorb(context, kind, envelope, trace_enabled)
        _PROC_TASK_SECONDS.labels(kind=kind).observe(
            time.perf_counter() - tick
        )
        return envelope

    def _absorb(
        self, context, kind, envelope: _TaskEnvelope, trace_enabled
    ) -> None:
        """Merge one envelope's worker-side state into this process."""
        _PROC_TASKS.labels(kind=kind).inc()
        obs_metrics.merge_delta(envelope.obs_delta)
        if context is not None:
            if context.tracker is not None and any(
                envelope.tracker_delta
            ):
                context.tracker.absorb(*envelope.tracker_delta)
            if isinstance(context.faults, FaultPlan) and (
                envelope.fault_counters or envelope.fault_fired
            ):
                context.faults.absorb(
                    envelope.fault_counters, envelope.fault_fired
                )
            context.truncated_mass += envelope.truncated_mass
        if trace_enabled and envelope.span is not None:
            graft = Span.from_dict(envelope.span)
            parent = current_span()
            if parent is not None:
                parent.add_child(graft)
            else:
                TRACER._retain_root(graft)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# high-level flows
# ----------------------------------------------------------------------
def _unlink_manifest(manifest: HalvesManifest) -> None:
    """Destroy a handed-off manifest's segments (already-gone is fine)."""
    with ShmLease(owner=True) as lease:
        for name in manifest.segment_names():
            try:
                open_segment(name, lease)
            except FileNotFoundError:
                pass


def _adopt_manifest(engine, meta, manifest: HalvesManifest) -> None:
    """Copy worker-published halves into the engine memo and unlink."""
    key = tuple(relation.name for relation in meta.relations)
    signature = engine.graph.relations_signature(key)
    with ShmLease(owner=True) as lease:
        halves = attach_halves(manifest, lease, copy=True)
    engine.adopt_halves(key, signature, halves)


def warm_via_processes(engine, metas, workers: int) -> int:
    """Materialise halves for ``metas`` in worker processes.

    Paths already fresh in the engine memo are skipped; the rest
    materialise in the pool (in parallel on the fast path, one at a
    time under ambient limits/faults) and are adopted -- copied out of
    shared memory into the parent memo, segments destroyed.  Returns
    the number of paths adopted.
    """
    pending = [meta for meta in metas if not engine.has_halves(meta)]
    if not pending:
        return 0
    with ProcessDispatcher(engine.graph, workers) as pool:
        manifests = pool.map(
            [("warm", meta.code()) for meta in pending],
            cleanup=_unlink_manifest,
        )
        for meta, manifest in zip(pending, manifests):
            _adopt_manifest(engine, meta, manifest)
    return len(pending)


def _partition(rows: Sequence[int], shards: int) -> List[List[int]]:
    """Contiguous near-even split preserving order (and determinism)."""
    rows = list(rows)
    shards = max(1, min(shards, len(rows)))
    base, extra = divmod(len(rows), shards)
    out: List[List[int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(rows[start : start + size])
        start += size
    return out


def score_groups_via_processes(server, groups, workers: int):
    """The batch server's process-tier scoring loop.

    Each HeteSim group's row-block GEMM is sharded across the pool
    (halves published to shared memory once per group); measures
    without a shardable half-matrix form (combined, PPR, ...) score
    in-parent through the server's own ``_score_group``, so a mixed
    batch routes through one tier without changing results.  Groups
    run one after another -- the parallelism that pays is inside the
    block GEMM, and sequential groups keep fault provenance and the
    memo-adoption order deterministic.
    """
    engine = server.engine
    rankings = []
    with ProcessDispatcher(engine.graph, workers) as pool:
        for group in groups:
            if group.measure.name == "hetesim":
                rankings.append(
                    _score_hetesim_group(server, pool, group, workers)
                )
            else:
                rankings.append(server._score_group(group))
    return rankings


def _score_hetesim_group(server, pool, group, workers: int):
    """Shard one HeteSim group's block GEMM across the pool."""
    engine = server.engine
    meta = engine.path(group.spec)
    with trace_span(
        "batch.score_group",
        measure=group.measure.name,
        path=group.shape.display,
        size=len(group.members),
        backend="process",
    ) as group_span:
        if not engine.has_halves(meta):
            # Cold group: the materialisation GEMM itself runs in a
            # worker (limits and fault sites fire there), then the
            # parent adopts the published halves.
            manifests = pool.map(
                [("warm", meta.code())], cleanup=_unlink_manifest
            )
            _adopt_manifest(engine, meta, manifests[0])
        halves = engine.halves(meta)

        rows = sorted({row for _, _, row in group.members})
        flags = tuple(
            sorted({query.normalized for _, query, _ in group.members})
        )
        shards = _partition(rows, workers)
        tick = time.perf_counter()
        with ShmLease(owner=True) as lease:
            manifest = publish_halves(halves, lease)
            outputs = pool.map(
                [
                    ("score_shard", (manifest, shard, flags))
                    for shard in shards
                ]
            )
        # Shards partition the sorted row list contiguously, so
        # stacking in shard order reassembles exactly the full block.
        blocks = {
            flag: np.vstack(
                [shard_blocks[flag] for shard_blocks, _ in outputs]
            )
            for flag in flags
        }
        nnz = sum(shard_nnz for _, shard_nnz in outputs)
        gemm_seconds = time.perf_counter() - tick
        server._observe_group(group, gemm_seconds, nnz)
        group_span.set(gemm_ms=round(gemm_seconds * 1e3, 3), nnz=nnz)
        keys = engine.graph.node_keys(group.shape.target_type)
        return server._select(group, rows, blocks, keys)
