"""Batched query serving: group-by-(measure, path) block scoring.

The on-line half of Section 4.6 at serving scale.  A
:class:`BatchRequest` carries many independent top-k queries -- each
naming the relevance :class:`~repro.core.measures.base.Measure` that
should answer it; the server answers them by

1. **grouping** the queries by ``(measure, group key)``, where the
   group key comes from the measure's cheap
   :meth:`~repro.core.measures.base.Measure.resolve` (for path-based
   measures the relation-name tuple; for the path-blind PPR the
   endpoint-type pair, so ``APC`` and ``APVC`` queries share one walk);
2. **preparing** each group's scoring state exactly once through the
   shared :class:`~repro.core.measures.base.MeasureContext` -- for
   HeteSim (and every HeteSim component of a ``combined`` query) that
   is the engine's single-flight half-matrix memo, so a mixed batch
   materialises each path's halves once -- concurrently across groups
   when ``workers > 1`` (scipy releases the GIL inside sparse
   products);
3. **scoring** all of a group's distinct sources with a single block
   pass (:meth:`~repro.core.measures.base.PreparedMeasure.score_rows`:
   one sparse GEMM plus vectorised normalisation for HeteSim) -- one
   matrix product instead of one product per query;
4. **selecting** each query's top-k with
   :func:`~repro.core.search.select_top_k` (argpartition, never a full
   sort of the target axis, deterministic key-order tie-break).

Results are element-wise identical to running each measure's
single-query functions per query, at a fraction of the cost: the
scoring state is built once per group instead of once per query, and
the block pass batches every row of a group.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.metapath import PathSpec
from ..core.engine import HeteSimEngine
from ..core.measures import Measure, QueryShape, get_measure
from ..core.search import select_top_k
from ..obs.metrics import (
    GROUP_SIZE_BUCKETS,
    NNZ_BUCKETS,
    REGISTRY,
    SECONDS_BUCKETS,
)
from ..obs.trace import span as trace_span

_BATCH_QUERIES = REGISTRY.counter(
    "repro_batch_queries_total", "Queries answered by batch serving."
)
_BATCH_GROUPS = REGISTRY.counter(
    "repro_batch_groups_total", "Distinct (measure, path) groups scored."
)
_GROUP_SIZES = REGISTRY.histogram(
    "repro_batch_group_size",
    "Queries per distinct (measure, path) group within one batch.",
    buckets=GROUP_SIZE_BUCKETS,
)
_GEMM_SECONDS = REGISTRY.histogram(
    "repro_batch_gemm_seconds",
    "Wall time of one group's block scoring pass.",
    buckets=SECONDS_BUCKETS,
)
_GEMM_NNZ = REGISTRY.histogram(
    "repro_batch_gemm_nnz",
    "Nonzeros of one group's block score matrix.",
    buckets=NNZ_BUCKETS,
)

__all__ = [
    "Query",
    "BatchRequest",
    "QueryResult",
    "BatchStats",
    "BatchResult",
    "QueryServer",
    "serve_batch",
]


@dataclass(frozen=True)
class Query:
    """One top-k relevance query inside a batch.

    ``path`` accepts any :data:`~repro.hin.metapath.PathSpec` form
    (code string, relation names, :class:`~repro.hin.metapath.MetaPath`)
    -- or, for multi-path measures like ``combined``, a weighted path
    set such as ``"APC=0.7,APVC=0.3"``.  ``measure`` names any
    registered measure plugin (default HeteSim); ``k=None`` asks for
    the full ranking of the target type.  ``k`` clamps like a slice
    (``k <= 0`` yields an empty ranking, oversized ``k`` the full
    one), matching :func:`~repro.core.search.select_top_k`.
    """

    source: str
    path: PathSpec
    k: Optional[int] = 10
    normalized: bool = True
    measure: str = "hetesim"


@dataclass(frozen=True)
class BatchRequest:
    """A batch of queries plus the execution tier and concurrency.

    An empty ``queries`` sequence is a valid (if trivial) batch: the
    server answers it with a well-formed empty
    :class:`BatchResult` rather than raising, so callers that build
    batches from filtered inputs need no special casing.

    ``workers`` bounds the pool that materialises (and scores)
    distinct groups in parallel; ``workers=1`` runs everything
    sequentially in the calling thread and is the reference semantics
    -- parallel runs return identical results.

    ``backend`` selects the execution tier: ``"thread"`` (the
    in-process dispatcher), ``"process"`` (the
    :mod:`repro.serve.procs` tier -- HeteSim groups shard their block
    GEMM across a process pool via shared-memory halves), or
    ``"auto"`` (default), which resolves per
    :func:`~repro.serve.procs.resolve_backend` -- processes only when
    the host has usable multi-core parallelism and the graph is large
    enough to amortise the fork.  Every backend returns byte-identical
    results.
    """

    queries: Tuple[Query, ...]
    workers: int = 1
    backend: str = "auto"

    def __init__(
        self,
        queries: Sequence[Query],
        workers: int = 1,
        backend: str = "auto",
    ) -> None:
        queries = tuple(queries)
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if backend not in ("auto", "thread", "process"):
            raise QueryError(
                f"unknown backend {backend!r} "
                "(expected 'auto', 'thread' or 'process')"
            )
        object.__setattr__(self, "queries", queries)
        object.__setattr__(self, "workers", workers)
        object.__setattr__(self, "backend", backend)


@dataclass(frozen=True)
class QueryResult:
    """One query's answer: ``(target_key, score)`` pairs, best first."""

    query: Query
    ranking: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class BatchStats:
    """How a batch was executed (per-request observability).

    ``halves_materialised`` counts the half-matrix materialisation
    *events* the batch actually triggered, read as a delta of the
    engine's ``repro_halves_materialisations_total`` plus
    ``repro_halves_adoptions_total`` counters around the dispatch (the
    process tier materialises in a worker and *adopts* the published
    result, which is still one event this batch caused) -- on a warm
    engine it is 0, on a cold one it equals the number of distinct
    paths HeteSim-family groups (including ``combined`` components)
    needed.  Counting events (rather than pre-probing ``has_halves``
    before dispatch) keeps the number honest when concurrent traffic
    or a racing ``warm()`` materialises a group's halves between the
    probe and the scoring.
    """

    num_queries: int
    num_groups: int
    group_sizes: Tuple[int, ...]
    halves_materialised: int
    workers: int
    seconds: float
    backend: str = "thread"

    def summary(self) -> str:
        """One-line rendering (the ``serve-batch`` CLI footer)."""
        backend = (
            f" [{self.backend} backend]"
            if self.backend != "thread"
            else ""
        )
        return (
            f"batch: {self.num_queries} queries in {self.num_groups} "
            f"group(s) {list(self.group_sizes)}, "
            f"{self.halves_materialised} half materialisation(s), "
            f"{self.workers} worker(s){backend}, "
            f"{self.seconds * 1e3:.1f} ms"
        )


@dataclass(frozen=True)
class BatchResult:
    """Answers in request order plus execution stats."""

    results: Tuple[QueryResult, ...]
    stats: BatchStats

    def rankings(self) -> List[Tuple[Tuple[str, float], ...]]:
        """Just the rankings, aligned with the request's query order."""
        return [result.ranking for result in self.results]


@dataclass
class _Group:
    """All queries of one ``(measure, group key)``, with positions."""

    measure: Measure
    shape: QueryShape
    spec: PathSpec
    members: List[Tuple[int, Query, int]] = field(default_factory=list)


class QueryServer:
    """Batched relevance serving over one :class:`HeteSimEngine`.

    The server owns no state beyond the engine it wraps, so one engine
    can back both a server and ad-hoc single queries; everything the
    batch materialises lands in the engine's caches and accelerates
    later traffic.

    Examples
    --------
    >>> server = QueryServer(engine)                     # doctest: +SKIP
    >>> request = BatchRequest(
    ...     [Query("Tom", "APC", k=5),
    ...      Query("Mary", "APCPA", k=5, measure="pathsim")],
    ...     workers=4,
    ... )                                                # doctest: +SKIP
    >>> result = server.run(request)                     # doctest: +SKIP
    >>> result.results[0].ranking[0]                     # doctest: +SKIP
    ('KDD', 1.0)
    """

    def __init__(self, engine: HeteSimEngine) -> None:
        self.engine = engine

    @classmethod
    def for_graph(
        cls, graph: HeteroGraph, byte_budget: Optional[int] = None
    ) -> "QueryServer":
        """Build a server (and its engine) directly from a graph."""
        return cls(HeteSimEngine(graph, byte_budget=byte_budget))

    def warm(
        self, paths, workers: int = 1, store=None, backend: str = "auto"
    ):
        """Pre-materialise halves for ``paths`` (§4.6 off-line stage).

        Delegates to :meth:`HeteSimEngine.warm
        <repro.core.engine.HeteSimEngine.warm>`; see there for the
        ``store`` persistence contract and the ``backend`` tiers.
        """
        return self.engine.warm(
            paths, workers=workers, store=store, backend=backend
        )

    def run(self, request: BatchRequest, limits=None) -> BatchResult:
        """Answer every query of ``request``; order is preserved.

        An empty batch is answered, not rejected: the result carries
        zero :class:`QueryResult` entries and well-formed stats
        (``num_queries=0``, ``num_groups=0``).

        ``limits`` (an :class:`~repro.runtime.limits.ExecutionLimits`)
        bounds the whole batch with one shared tracker: the deadline
        and cumulative budgets apply across all groups and workers, and
        a breach raises the typed
        :class:`~repro.hin.errors.ResourceLimitError` faults.  Without
        ``limits`` the batch still honours any ambient
        :func:`~repro.runtime.limits.execution_scope`.
        """
        if limits is not None:
            from ..runtime.limits import execution_scope

            with execution_scope(tracker=limits.tracker()):
                return self.run(request)

        from .dispatch import Dispatcher
        from .procs import (
            graph_work_nnz,
            resolve_backend,
            score_groups_via_processes,
        )

        started = time.perf_counter()
        groups = self._group(request.queries)
        for group in groups:
            _BATCH_QUERIES.labels(measure=group.measure.name).inc(
                len(group.members)
            )
            _BATCH_GROUPS.labels(measure=group.measure.name).inc()
            _GROUP_SIZES.labels(measure=group.measure.name).observe(
                len(group.members)
            )
        backend = resolve_backend(
            request.backend,
            request.workers,
            items=len(request.queries),
            work_nnz=graph_work_nnz(self.engine.graph),
        )
        before = (
            self.engine.materialisation_count
            + self.engine.adoption_count
        )
        with trace_span(
            "batch.run",
            queries=len(request.queries),
            groups=len(groups),
            workers=request.workers,
            backend=backend,
        ):
            if backend == "process":
                rankings_per_group = score_groups_via_processes(
                    self, groups, request.workers
                )
            else:
                rankings_per_group = Dispatcher(request.workers).map(
                    self._score_group, groups
                )
        materialised = (
            self.engine.materialisation_count
            + self.engine.adoption_count
            - before
        )

        results: List[Optional[QueryResult]] = [None] * len(
            request.queries
        )
        for group, rankings in zip(groups, rankings_per_group):
            for (position, query, _), ranking in zip(
                group.members, rankings
            ):
                results[position] = QueryResult(
                    query=query, ranking=ranking
                )
        stats = BatchStats(
            num_queries=len(request.queries),
            num_groups=len(groups),
            group_sizes=tuple(
                len(group.members) for group in groups
            ),
            halves_materialised=materialised,
            workers=request.workers,
            seconds=time.perf_counter() - started,
            backend=backend,
        )
        return BatchResult(results=tuple(results), stats=stats)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group(self, queries: Sequence[Query]) -> List[_Group]:
        """Resolve measures/paths/sources up front and bucket queries.

        Resolution happens before any materialisation so a malformed
        query fails the batch fast, naming its position.  The bucket
        key is ``(measure name, measure group key)``: what may share
        one prepared scoring state is the measure's own call.
        """
        ctx = self.engine.measures
        groups: Dict[Tuple[str, tuple], _Group] = {}
        for position, query in enumerate(queries):
            try:
                measure = get_measure(query.measure)
                shape = measure.resolve(ctx, query.path)
                row = self.engine.graph.node_index(
                    shape.source_type, query.source
                )
            except QueryError:
                raise
            except Exception as exc:
                raise QueryError(
                    f"query #{position} ({query.source!r} | "
                    f"{query.path!r}) is invalid: {exc}"
                ) from exc
            key = (measure.name, shape.group_key)
            groups.setdefault(
                key,
                _Group(measure=measure, shape=shape, spec=query.path),
            ).members.append((position, query, row))
        return list(groups.values())

    def _score_group(
        self, group: _Group
    ) -> List[Tuple[Tuple[str, float], ...]]:
        """One block scoring pass for all of a group's sources, then
        per-query top-k selection."""
        with trace_span(
            "batch.score_group",
            measure=group.measure.name,
            path=group.shape.display,
            size=len(group.members),
        ) as group_span:
            prepared = group.measure.prepare(
                self.engine.measures, group.spec
            )
            rows = sorted({row for _, _, row in group.members})
            flags = sorted(
                {query.normalized for _, query, _ in group.members}
            )
            tick = time.perf_counter()
            blocks = {
                flag: prepared.score_rows(rows, normalized=flag)
                for flag in flags
            }
            gemm_seconds = time.perf_counter() - tick
            # HeteSim-family prepared states expose the sparse product's
            # nnz; for dense-scoring measures count the block directly.
            nnz = getattr(prepared, "last_block_nnz", None)
            if nnz is None:
                nnz = int(np.count_nonzero(blocks[flags[0]]))
            self._observe_group(group, gemm_seconds, nnz)
            group_span.set(
                gemm_ms=round(gemm_seconds * 1e3, 3), nnz=nnz
            )
            keys = prepared.target_keys()
            return self._select(group, rows, blocks, keys)

    def _observe_group(self, group: _Group, gemm_seconds, nnz) -> None:
        """Record one group's block-pass metrics (any backend)."""
        measure_label = group.measure.name
        _GEMM_SECONDS.labels(measure=measure_label).observe(
            gemm_seconds
        )
        _GEMM_NNZ.labels(measure=measure_label).observe(nnz)

    def _select(
        self,
        group: _Group,
        rows: Sequence[int],
        blocks: Dict[bool, np.ndarray],
        keys: Sequence[str],
    ) -> List[Tuple[Tuple[str, float], ...]]:
        """Per-query top-k selection over a group's scored blocks.

        Shared by the thread and process tiers (the process tier
        reassembles its shard blocks into the same ``rows``-ordered
        layout first), so the deterministic (-score, key) selection
        cannot drift between backends.
        """
        row_position = {row: i for i, row in enumerate(rows)}
        rankings: List[Tuple[Tuple[str, float], ...]] = []
        for _, query, row in group.members:
            scores = blocks[query.normalized][row_position[row]]
            k = len(keys) if query.k is None else query.k
            rankings.append(tuple(select_top_k(scores, keys, k)))
        return rankings


def serve_batch(
    engine: HeteSimEngine, request: BatchRequest, limits=None
) -> BatchResult:
    """Functional form of :meth:`QueryServer.run` for one-off batches."""
    return QueryServer(engine).run(request, limits=limits)
