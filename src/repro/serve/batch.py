"""Batched query serving: group-by-path block GEMM scoring.

The on-line half of Section 4.6 at serving scale.  A
:class:`BatchRequest` carries many independent top-k queries; the
server answers them by

1. **grouping** the queries by meta path (distinct paths are the unit
   of materialisation work);
2. **materialising** each group's half matrices exactly once through
   the engine's :class:`~repro.core.cache.PathMatrixCache`-backed memo
   -- concurrently across groups when ``workers > 1`` (scipy releases
   the GIL inside sparse products);
3. **scoring** all of a group's distinct sources with a single block
   sparse GEMM ``left[rows] @ right.T`` plus vectorised cosine
   normalisation -- one matrix product instead of one product per
   query;
4. **selecting** each query's top-k with
   :func:`~repro.core.search.select_top_k` (argpartition, never a full
   sort of the target axis, deterministic key-order tie-break).

Results are element-wise identical to running
:func:`~repro.core.hetesim.hetesim_all_targets` per query, at a
fraction of the cost: the halves are built once per path instead of
once per query, and the GEMM batches every row of a group.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hin.errors import QueryError
from ..hin.graph import HeteroGraph
from ..hin.matrices import safe_reciprocal
from ..hin.metapath import MetaPath, PathSpec
from ..core.engine import HeteSimEngine
from ..core.search import select_top_k
from ..obs.metrics import (
    GROUP_SIZE_BUCKETS,
    NNZ_BUCKETS,
    REGISTRY,
    SECONDS_BUCKETS,
)
from ..obs.trace import span as trace_span

_BATCH_QUERIES = REGISTRY.counter(
    "repro_batch_queries_total", "Queries answered by batch serving."
)
_BATCH_GROUPS = REGISTRY.counter(
    "repro_batch_groups_total", "Distinct path groups scored."
)
_GROUP_SIZES = REGISTRY.histogram(
    "repro_batch_group_size",
    "Queries per distinct-path group within one batch.",
    buckets=GROUP_SIZE_BUCKETS,
)
_GEMM_SECONDS = REGISTRY.histogram(
    "repro_batch_gemm_seconds",
    "Wall time of one group's block GEMM.",
    buckets=SECONDS_BUCKETS,
)
_GEMM_NNZ = REGISTRY.histogram(
    "repro_batch_gemm_nnz",
    "Nonzeros of one group's block GEMM product.",
    buckets=NNZ_BUCKETS,
)

__all__ = [
    "Query",
    "BatchRequest",
    "QueryResult",
    "BatchStats",
    "BatchResult",
    "QueryServer",
    "serve_batch",
]


@dataclass(frozen=True)
class Query:
    """One top-k relevance query inside a batch.

    ``path`` accepts any :data:`~repro.hin.metapath.PathSpec` form
    (code string, relation names, :class:`~repro.hin.metapath.MetaPath`);
    ``k=None`` asks for the full ranking of the target type.
    """

    source: str
    path: PathSpec
    k: Optional[int] = 10
    normalized: bool = True

    def __post_init__(self) -> None:
        if self.k is not None and self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class BatchRequest:
    """A batch of queries plus the materialisation concurrency to use.

    ``workers`` bounds the thread pool that materialises (and scores)
    distinct path groups in parallel; ``workers=1`` runs everything
    sequentially in the calling thread and is the reference semantics
    -- parallel runs return identical results.
    """

    queries: Tuple[Query, ...]
    workers: int = 1

    def __init__(
        self, queries: Sequence[Query], workers: int = 1
    ) -> None:
        queries = tuple(queries)
        if not queries:
            raise QueryError("a batch must contain at least one query")
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        object.__setattr__(self, "queries", queries)
        object.__setattr__(self, "workers", workers)


@dataclass(frozen=True)
class QueryResult:
    """One query's answer: ``(target_key, score)`` pairs, best first."""

    query: Query
    ranking: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class BatchStats:
    """How a batch was executed (per-request observability).

    ``halves_materialised`` counts the materialisation *events* the
    batch actually triggered, read as a delta of the engine's
    ``repro_halves_materialisations_total`` counter around the
    dispatch -- on a warm engine it is 0, on a cold one it equals
    ``num_groups``.  Counting events (rather than pre-probing
    ``has_halves`` before dispatch) keeps the number honest when
    concurrent traffic or a racing ``warm()`` materialises a group's
    halves between the probe and the scoring.
    """

    num_queries: int
    num_groups: int
    group_sizes: Tuple[int, ...]
    halves_materialised: int
    workers: int
    seconds: float

    def summary(self) -> str:
        """One-line rendering (the ``serve-batch`` CLI footer)."""
        return (
            f"batch: {self.num_queries} queries in {self.num_groups} "
            f"path group(s) {list(self.group_sizes)}, "
            f"{self.halves_materialised} half materialisation(s), "
            f"{self.workers} worker(s), {self.seconds * 1e3:.1f} ms"
        )


@dataclass(frozen=True)
class BatchResult:
    """Answers in request order plus execution stats."""

    results: Tuple[QueryResult, ...]
    stats: BatchStats

    def rankings(self) -> List[Tuple[Tuple[str, float], ...]]:
        """Just the rankings, aligned with the request's query order."""
        return [result.ranking for result in self.results]


@dataclass
class _Group:
    """All queries of one distinct meta path, with request positions."""

    meta: MetaPath
    members: List[Tuple[int, Query, int]] = field(default_factory=list)


class QueryServer:
    """Batched relevance serving over one :class:`HeteSimEngine`.

    The server owns no state beyond the engine it wraps, so one engine
    can back both a server and ad-hoc single queries; everything the
    batch materialises lands in the engine's caches and accelerates
    later traffic.

    Examples
    --------
    >>> server = QueryServer(engine)                     # doctest: +SKIP
    >>> request = BatchRequest(
    ...     [Query("Tom", "APC", k=5), Query("Mary", "APC", k=5)],
    ...     workers=4,
    ... )                                                # doctest: +SKIP
    >>> result = server.run(request)                     # doctest: +SKIP
    >>> result.results[0].ranking[0]                     # doctest: +SKIP
    ('KDD', 1.0)
    """

    def __init__(self, engine: HeteSimEngine) -> None:
        self.engine = engine

    @classmethod
    def for_graph(
        cls, graph: HeteroGraph, byte_budget: Optional[int] = None
    ) -> "QueryServer":
        """Build a server (and its engine) directly from a graph."""
        return cls(HeteSimEngine(graph, byte_budget=byte_budget))

    def warm(self, paths, workers: int = 1, store=None):
        """Pre-materialise halves for ``paths`` (§4.6 off-line stage).

        Delegates to :meth:`HeteSimEngine.warm
        <repro.core.engine.HeteSimEngine.warm>`; see there for the
        ``store`` persistence contract.
        """
        return self.engine.warm(paths, workers=workers, store=store)

    def run(self, request: BatchRequest, limits=None) -> BatchResult:
        """Answer every query of ``request``; order is preserved.

        ``limits`` (an :class:`~repro.runtime.limits.ExecutionLimits`)
        bounds the whole batch with one shared tracker: the deadline
        and cumulative budgets apply across all groups and workers, and
        a breach raises the typed
        :class:`~repro.hin.errors.ResourceLimitError` faults.  Without
        ``limits`` the batch still honours any ambient
        :func:`~repro.runtime.limits.execution_scope`.
        """
        if limits is not None:
            from ..runtime.limits import execution_scope

            with execution_scope(tracker=limits.tracker()):
                return self.run(request)

        from .dispatch import Dispatcher

        started = time.perf_counter()
        groups = self._group(request.queries)
        _BATCH_QUERIES.inc(len(request.queries))
        _BATCH_GROUPS.inc(len(groups))
        for group in groups:
            _GROUP_SIZES.observe(len(group.members))
        before = self.engine.materialisation_count
        with trace_span(
            "batch.run",
            queries=len(request.queries),
            groups=len(groups),
            workers=request.workers,
        ):
            rankings_per_group = Dispatcher(request.workers).map(
                self._score_group, groups
            )
        materialised = self.engine.materialisation_count - before

        results: List[Optional[QueryResult]] = [None] * len(
            request.queries
        )
        for group, rankings in zip(groups, rankings_per_group):
            for (position, query, _), ranking in zip(
                group.members, rankings
            ):
                results[position] = QueryResult(
                    query=query, ranking=ranking
                )
        stats = BatchStats(
            num_queries=len(request.queries),
            num_groups=len(groups),
            group_sizes=tuple(
                len(group.members) for group in groups
            ),
            halves_materialised=materialised,
            workers=request.workers,
            seconds=time.perf_counter() - started,
        )
        return BatchResult(results=tuple(results), stats=stats)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group(self, queries: Sequence[Query]) -> List[_Group]:
        """Resolve paths/sources up front and bucket by path key.

        Resolution happens before any materialisation so a malformed
        query fails the batch fast, naming its position.
        """
        groups: Dict[Tuple[str, ...], _Group] = {}
        for position, query in enumerate(queries):
            try:
                meta = self.engine.path(query.path)
                row = self.engine.graph.node_index(
                    meta.source_type.name, query.source
                )
            except QueryError:
                raise
            except Exception as exc:
                raise QueryError(
                    f"query #{position} ({query.source!r} | "
                    f"{query.path!r}) is invalid: {exc}"
                ) from exc
            key = tuple(r.name for r in meta.relations)
            groups.setdefault(key, _Group(meta=meta)).members.append(
                (position, query, row)
            )
        return list(groups.values())

    def _score_group(
        self, group: _Group
    ) -> List[Tuple[Tuple[str, float], ...]]:
        """One block GEMM for all of a group's sources, then per-query
        normalisation and top-k selection."""
        with trace_span(
            "batch.score_group",
            path=group.meta.code(),
            size=len(group.members),
        ) as group_span:
            left, right, left_norms, right_norms = self.engine.halves(
                group.meta
            )
            rows = sorted({row for _, _, row in group.members})
            row_position = {row: i for i, row in enumerate(rows)}
            tick = time.perf_counter()
            product = left[rows, :] @ right.T
            gemm_seconds = time.perf_counter() - tick
            _GEMM_SECONDS.observe(gemm_seconds)
            _GEMM_NNZ.observe(product.nnz)
            group_span.set(
                gemm_ms=round(gemm_seconds * 1e3, 3), nnz=product.nnz
            )
            block = product.toarray()
            keys = self.engine.graph.node_keys(
                group.meta.target_type.name
            )
            scale_right = safe_reciprocal(right_norms)

            rankings: List[Tuple[Tuple[str, float], ...]] = []
            for _, query, row in group.members:
                raw = block[row_position[row]]
                if not query.normalized:
                    scores = raw
                elif left_norms[row] == 0:
                    scores = np.zeros_like(raw)
                else:
                    scores = raw * (scale_right / left_norms[row])
                k = len(keys) if query.k is None else query.k
                rankings.append(tuple(select_top_k(scores, keys, k)))
            return rankings


def serve_batch(
    engine: HeteSimEngine, request: BatchRequest, limits=None
) -> BatchResult:
    """Functional form of :meth:`QueryServer.run` for one-off batches."""
    return QueryServer(engine).run(request, limits=limits)
