"""RPR007: two-step unlocked access pairing separate ``_``-dicts.

The stale-halves bug fixed in PR 5 had this exact shape: a fast path
read ``self._halves.get(key)`` and then, in a *second* unlocked step,
validated it against ``self._half_signatures.get(key)``.  Each read is
individually atomic under the GIL, but nothing makes the *pair* atomic:
a writer can replace both entries between the two reads, letting the
caller pair a stale cached value with a fresh signature.  The fix is
structural -- store one ``(signature, value)`` tuple per key so a
single read yields a consistent pair.

This rule machine-checks for the hazard: within one method of a
lock-disciplined class (the same notion :mod:`repro.analysis.lockgraph`
uses -- a class that assigns a ``Lock``/``RLock`` to ``self._*`` or
declares itself thread-safe), it flags *keyed accesses to two distinct
``_``-prefixed mapping attributes with the same key expression, where
both accesses happen with no lock held*.  "Keyed access" covers
``self._d[key]`` in any context and ``self._d.get/pop/setdefault(key,
...)``; key expressions are compared structurally (``ast.dump``), so
``self._a[k]`` pairs with ``self._b.get(k)`` but not with
``self._b[other]``.

Guaranteed-held propagation is shared with RPR004: a private helper
whose every intra-class call site holds the lock is analysed as
lock-held, so ``_materialise_under_lock`` patterns need no baseline.
Like every repro-lint rule, genuinely safe occurrences (e.g. pairs made
consistent by an external protocol) are suppressed via
``lint_baseline.toml`` with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from .core import BaseRule, Finding, SourceFile, register
from .lockgraph import CONSTRUCTION_METHODS, _guaranteed_held, _scan_class, _self_attr

__all__ = ["PairedStateRule"]

#: Mapping methods whose first positional argument is a key.
KEYED_METHODS = frozenset({"get", "pop", "setdefault"})


@dataclass(frozen=True)
class _KeyedAccess:
    """One keyed read/write of a ``_``-prefixed mapping attribute."""

    attr: str
    key: str
    line: int


@register
class PairedStateRule(BaseRule):
    """RPR007: unlocked same-key accesses to two separate ``_``-dicts.

    See the module docstring of :mod:`repro.analysis.pairs` for the
    exact model (keyed-access forms, structural key identity, shared
    guaranteed-held propagation with RPR004).
    """

    rule_id = "RPR007"
    summary = (
        "two-step unlocked access pairing separate _-prefixed dicts by "
        "one key in a thread-safe class"
    )

    def check(self, file: SourceFile) -> List[Finding]:
        """Flag unlocked same-key pairs in each lock-disciplined class."""
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _scan_class(node, file.rel)
            if info is None:
                continue
            guaranteed = _guaranteed_held(info)
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name in CONSTRUCTION_METHODS:
                    continue
                base = guaranteed.get(item.name, frozenset())
                accesses: List[_KeyedAccess] = []
                for statement in item.body:
                    _collect(
                        statement, base, info.lock_attrs, accesses
                    )
                findings.extend(
                    self._pairs(file, node.name, item.name, accesses)
                )
        return findings

    def _pairs(
        self,
        file: SourceFile,
        class_name: str,
        method_name: str,
        accesses: List[_KeyedAccess],
    ) -> List[Finding]:
        """One finding per key expression touching >= 2 distinct dicts."""
        by_key: Dict[str, List[_KeyedAccess]] = {}
        for access in accesses:
            by_key.setdefault(access.key, []).append(access)
        findings: List[Finding] = []
        for group in by_key.values():
            attrs = sorted({access.attr for access in group})
            if len(attrs) < 2:
                continue
            line = max(
                min(a.line for a in group if a.attr == attr)
                for attr in attrs
            )
            names = ", ".join(f"self.{attr}" for attr in attrs)
            findings.append(
                Finding(
                    path=file.rel,
                    line=line,
                    rule=self.rule_id,
                    severity="error",
                    message=(
                        f"{class_name}.{method_name}: unlocked accesses "
                        f"to {names} with the same key are not atomic "
                        "as a pair -- a concurrent writer can interleave "
                        "between the two steps; hold the lock, or fuse "
                        "the dicts into one entry holding a consistent "
                        "tuple"
                    ),
                )
            )
        return findings


def _collect(
    node: ast.AST,
    held: FrozenSet[str],
    lock_attrs: FrozenSet[str],
    accesses: List[_KeyedAccess],
) -> None:
    """Record keyed accesses reached with no lock held.

    Mirrors the held-set tracking of :func:`repro.analysis.lockgraph._scan`:
    ``with self.<lock>`` extends the held set lexically, and nested
    callables restart from an empty set (they may run later, on another
    thread, without the enclosing locks).
    """
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: Set[str] = set()
        for item in node.items:
            _collect(item.context_expr, held, lock_attrs, accesses)
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in lock_attrs:
                acquired.add(attr)
        inner = held | acquired
        for statement in node.body:
            _collect(statement, inner, lock_attrs, accesses)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        body = node.body if isinstance(node.body, list) else [node.body]
        for statement in body:
            _collect(statement, frozenset(), lock_attrs, accesses)
        return

    access = _keyed_access(node)
    if access is not None and not held:
        accesses.append(access)
    for child in ast.iter_child_nodes(node):
        _collect(child, held, lock_attrs, accesses)


def _keyed_access(node: ast.AST) -> Optional[_KeyedAccess]:
    """The keyed-access event of one node, if it is one.

    ``self._d[key]`` (any expression context) and
    ``self._d.get/pop/setdefault(key, ...)`` both count; the key is
    identified structurally via :func:`ast.dump`.
    """
    receiver: Optional[ast.expr] = None
    key: Optional[ast.expr] = None
    line = 0
    if isinstance(node, ast.Subscript):
        receiver = node.value
        key = node.slice
        line = node.lineno
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in KEYED_METHODS
        and node.args
    ):
        receiver = node.func.value
        key = node.args[0]
        line = node.lineno
    if receiver is None or key is None:
        return None
    attr = _self_attr(receiver)
    if attr is None or not attr.startswith("_"):
        return None
    return _KeyedAccess(attr=attr, key=ast.dump(key), line=line)
