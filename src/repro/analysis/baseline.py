"""Justification-required baseline allowlist (``lint_baseline.toml``).

A baseline entry *suppresses* findings it matches -- but every entry
must carry a one-line ``reason``, so each grandfathered violation is a
reviewed decision rather than silent debt.  The file is an array of
tables::

    [[suppression]]
    rule = "RPR001"
    path = "src/repro/core/engine.py"
    reason = "row/pair-level densifications: outputs are O(n) results"

Optional narrowing keys: ``line`` (exact line match -- precise but
brittle under edits) and ``match`` (substring of the finding message --
survives reformatting).  An entry with neither suppresses every finding
of ``rule`` in ``path``.

Parsing uses :mod:`tomllib` when available (Python 3.11+) and otherwise
a built-in parser for exactly the subset this file uses (``[[table]]``
headers, string/int values, comments) -- the repository supports 3.10
and takes no third-party dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..hin.errors import AnalysisError
from .core import Finding

__all__ = [
    "Suppression",
    "Baseline",
    "PLACEHOLDER_REASON",
    "load_baseline",
    "write_baseline",
]

_ALLOWED_KEYS = {"rule", "path", "reason", "line", "match"}


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: which findings it covers, and why.

    ``rule`` and ``path`` are exact matches; ``line`` (when set) pins
    the finding's line and ``match`` (when set) must be a substring of
    the finding's message.  ``reason`` is mandatory and non-empty.
    """

    rule: str
    path: str
    reason: str
    line: Optional[int] = None
    match: Optional[str] = None

    def covers(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding``."""
        if self.rule != finding.rule or self.path != finding.path:
            return False
        if self.line is not None and self.line != finding.line:
            return False
        if self.match is not None and self.match not in finding.message:
            return False
        return True


class Baseline:
    """An ordered collection of suppressions with match bookkeeping."""

    def __init__(self, suppressions: Iterable[Suppression] = ()) -> None:
        self.suppressions: Tuple[Suppression, ...] = tuple(suppressions)

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Suppression]]:
        """Split findings into ``(unbaselined, suppressed, unused)``.

        ``unused`` lists entries that covered nothing -- stale debt the
        text report surfaces so the baseline shrinks over time.
        """
        unbaselined: List[Finding] = []
        suppressed: List[Finding] = []
        used = [False] * len(self.suppressions)
        for finding in findings:
            covered = False
            for index, entry in enumerate(self.suppressions):
                if entry.covers(finding):
                    used[index] = True
                    covered = True
            if covered:
                suppressed.append(finding)
            else:
                unbaselined.append(finding)
        unused = [
            entry
            for index, entry in enumerate(self.suppressions)
            if not used[index]
        ]
        return unbaselined, suppressed, unused


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read and validate a baseline file.

    Raises :class:`~repro.hin.errors.AnalysisError` on malformed TOML,
    unknown keys, missing ``rule`` / ``path``, or an empty ``reason``
    (justifications are required, not decorative).
    """
    text = Path(path).read_text(encoding="utf-8")
    entries: object
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        entries = _parse_toml_subset(text, str(path)).get("suppression", [])
    else:
        try:
            entries = tomllib.loads(text).get("suppression", [])
        except tomllib.TOMLDecodeError as exc:
            raise AnalysisError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise AnalysisError(
            f"malformed baseline {path}: 'suppression' must be an array "
            "of tables ([[suppression]])"
        )
    suppressions: List[Suppression] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise AnalysisError(
                f"malformed baseline {path}: suppression #{position} is "
                "not a table"
            )
        suppressions.append(_validate_entry(entry, position, str(path)))
    return Baseline(suppressions)


def _validate_entry(
    entry: Dict[str, object], position: int, path: str
) -> Suppression:
    unknown = set(entry) - _ALLOWED_KEYS
    if unknown:
        raise AnalysisError(
            f"baseline {path}: suppression #{position} has unknown "
            f"key(s) {sorted(unknown)} (allowed: {sorted(_ALLOWED_KEYS)})"
        )
    rule = entry.get("rule")
    target = entry.get("path")
    reason = entry.get("reason")
    if not isinstance(rule, str) or not rule:
        raise AnalysisError(
            f"baseline {path}: suppression #{position} needs a 'rule' string"
        )
    if not isinstance(target, str) or not target:
        raise AnalysisError(
            f"baseline {path}: suppression #{position} needs a 'path' string"
        )
    if not isinstance(reason, str) or not reason.strip():
        raise AnalysisError(
            f"baseline {path}: suppression #{position} ({rule} in "
            f"{target}) requires a non-empty 'reason' justification"
        )
    line = entry.get("line")
    if line is not None and not isinstance(line, int):
        raise AnalysisError(
            f"baseline {path}: suppression #{position} 'line' must be an "
            "integer"
        )
    match = entry.get("match")
    if match is not None and not isinstance(match, str):
        raise AnalysisError(
            f"baseline {path}: suppression #{position} 'match' must be a "
            "string"
        )
    return Suppression(
        rule=rule, path=target, reason=reason, line=line, match=match
    )


#: Prefix of the generated reason; the self-audit rejects committed ones.
PLACEHOLDER_REASON = (
    "unreviewed: generated by --write-baseline; "
    "replace with a real justification"
)


def write_baseline(
    findings: Iterable[Finding],
    path: Union[str, Path],
    previous: Optional[Baseline] = None,
) -> int:
    """Write a line-pinned baseline covering ``findings``; returns count.

    Generated entries carry a placeholder reason that passes validation
    but reads as unreviewed -- replace each with a real justification
    (that is the point of the file).  When ``previous`` is given (the
    baseline being regenerated), a finding that an existing entry
    already covers inherits that entry's human-written reason instead
    of being reset to the placeholder, so re-running
    ``--write-baseline`` never destroys reviewed justifications.
    """
    ordered = sorted(set(findings))
    lines: List[str] = [
        "# lint_baseline.toml -- generated by `hetesim lint "
        "--write-baseline`.",
        "# Replace every placeholder reason with a real one-line "
        "justification.",
    ]
    for finding in ordered:
        reason = PLACEHOLDER_REASON
        if previous is not None:
            for entry in previous.suppressions:
                if entry.covers(finding) and not entry.reason.startswith(
                    "unreviewed:"
                ):
                    reason = entry.reason
                    break
        lines.append("")
        lines.append("[[suppression]]")
        lines.append(f"rule = {_toml_string(finding.rule)}")
        lines.append(f"path = {_toml_string(finding.path)}")
        lines.append(f"line = {finding.line}")
        lines.append(f"reason = {_toml_string(reason)}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(ordered)


def _toml_string(value: str) -> str:
    """A double-quoted TOML basic string (escapes round-trip the loader)."""
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )
    return f'"{escaped}"'


# ----------------------------------------------------------------------
# minimal TOML-subset parser (Python 3.10 fallback)
# ----------------------------------------------------------------------
def _parse_toml_subset(
    text: str, path: str
) -> Dict[str, List[Dict[str, object]]]:
    """Parse the exact TOML subset baselines use.

    Supported: ``[[name]]`` array-of-table headers, ``key = "string"``
    (with ``\\"`` / ``\\\\`` escapes), ``key = <int>``, full-line and
    trailing comments, blank lines.  Anything else is a hard error --
    better to reject than to half-parse a suppression file.
    """
    tables: Dict[str, List[Dict[str, object]]] = {}
    current: Optional[Dict[str, object]] = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            if not name:
                raise AnalysisError(
                    f"baseline {path}:{number}: empty table name"
                )
            current = {}
            tables.setdefault(name, []).append(current)
            continue
        if line.startswith("["):
            raise AnalysisError(
                f"baseline {path}:{number}: only [[table]] headers are "
                "supported"
            )
        if current is None:
            raise AnalysisError(
                f"baseline {path}:{number}: key outside any [[table]]"
            )
        key, equals, rest = line.partition("=")
        key = key.strip()
        if not equals or not key:
            raise AnalysisError(
                f"baseline {path}:{number}: expected `key = value`"
            )
        current[key] = _parse_value(rest.strip(), path, number)
    return tables


def _parse_value(token: str, path: str, number: int) -> object:
    """One scalar: a double-quoted string or an integer."""
    if token.startswith('"'):
        value, remainder = _parse_basic_string(token, path, number)
        remainder = remainder.strip()
        if remainder and not remainder.startswith("#"):
            raise AnalysisError(
                f"baseline {path}:{number}: trailing junk after string"
            )
        return value
    token = token.split("#", 1)[0].strip()
    try:
        return int(token)
    except ValueError as exc:
        raise AnalysisError(
            f"baseline {path}:{number}: unsupported value {token!r} "
            "(only strings and integers)"
        ) from exc


def _parse_basic_string(
    token: str, path: str, number: int
) -> Tuple[str, str]:
    """Scan a double-quoted string with ``\\"`` and ``\\\\`` escapes."""
    out: List[str] = []
    index = 1
    while index < len(token):
        char = token[index]
        if char == "\\":
            if index + 1 >= len(token):
                break
            escape = token[index + 1]
            if escape in ('"', "\\"):
                out.append(escape)
            elif escape == "n":
                out.append("\n")
            elif escape == "t":
                out.append("\t")
            else:
                raise AnalysisError(
                    f"baseline {path}:{number}: unsupported escape "
                    f"\\{escape}"
                )
            index += 2
            continue
        if char == '"':
            return "".join(out), token[index + 1 :]
        out.append(char)
        index += 1
    raise AnalysisError(
        f"baseline {path}:{number}: unterminated string"
    )
