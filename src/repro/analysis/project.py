"""Cross-module project context for whole-project rules.

The per-file pass hands every rule one :class:`~repro.analysis.core.
SourceFile` at a time; the project pass hands them a single
:class:`ProjectContext` built over *all* parsed files:

* a **module map** -- dotted module names derived from paths
  (``src/repro/hin/graph.py`` -> ``repro.hin.graph``; ``__init__.py``
  names the package), so rules can reason about the import structure,
* an **import graph** -- one :class:`ImportEdge` per ``import`` /
  ``from ... import`` with relative levels resolved against the
  importing module's package, tagged top-level vs lazy (inside a
  function),
* **class and function indexes** -- declarations by bare name, with
  base-class names and ``__reduce__`` / ``__init__`` details recorded
  for the picklability rule,
* a conservative **call-graph closure** (:meth:`ProjectContext.
  reachable_functions`) -- name-based, in the same spirit as
  :mod:`~repro.analysis.lockgraph`'s intra-class fixpoint: a call site
  ``f(...)`` / ``obj.f(...)`` reaches *every* project function named
  ``f``.  Over-approximate by design; project rules must only use it
  where extra reachability means extra scrutiny, never suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .core import SourceFile, dotted_name

__all__ = [
    "ImportEdge",
    "ModuleInfo",
    "ClassDecl",
    "FunctionDecl",
    "ProjectContext",
    "module_name_for",
]


def module_name_for(rel: str) -> Optional[str]:
    """Dotted module name for a lint-root-relative path, if derivable.

    Leading ``src/`` components are stripped (the import root), and
    ``__init__.py`` names its package.  Non-Python paths yield None.
    """
    if not rel.endswith(".py"):
        return None
    parts = list(Path(rel).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    last = parts[-1][: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    if not parts or any(not part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to an absolute dotted target."""

    target: str
    line: int
    top_level: bool
    #: Names bound by a ``from target import a, b`` (empty for ``import``).
    names: Tuple[str, ...] = ()
    #: The local names the import binds (``asname`` when given).
    bound: Tuple[str, ...] = ()


@dataclass
class ClassDecl:
    """One class declaration: what the picklability rule needs."""

    name: str
    module: str
    rel: str
    line: int
    bases: Tuple[str, ...]
    has_reduce: bool
    init: Optional[ast.FunctionDef]
    node: ast.ClassDef


@dataclass
class FunctionDecl:
    """One function/method declaration, indexed by bare name."""

    name: str
    module: str
    rel: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef


@dataclass
class ModuleInfo:
    """One parsed module and its resolved imports."""

    name: str
    file: SourceFile
    imports: List[ImportEdge] = field(default_factory=list)


class ProjectContext:
    """Everything the project-scoped rules see, built once per run."""

    def __init__(self, files: Sequence[SourceFile], root: Path) -> None:
        self.root = root
        self.files: Tuple[SourceFile, ...] = tuple(files)
        self.modules: Dict[str, ModuleInfo] = {}
        for file in self.files:
            name = module_name_for(file.rel)
            if name is None:
                continue
            info = ModuleInfo(name=name, file=file)
            info.imports = _collect_imports(file, name)
            self.modules[name] = info
        self._classes: Optional[Dict[str, List[ClassDecl]]] = None
        self._functions: Optional[Dict[str, List[FunctionDecl]]] = None

    # -- indexes (lazy; most runs only trigger a subset of rules) ------
    @property
    def classes(self) -> Dict[str, List[ClassDecl]]:
        """Class declarations across the project, by bare class name."""
        if self._classes is None:
            index: Dict[str, List[ClassDecl]] = {}
            for info in self.modules.values():
                for node in ast.walk(info.file.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    index.setdefault(node.name, []).append(
                        _class_decl(node, info)
                    )
            self._classes = index
        return self._classes

    @property
    def functions(self) -> Dict[str, List[FunctionDecl]]:
        """Function/method declarations, by bare name."""
        if self._functions is None:
            index: Dict[str, List[FunctionDecl]] = {}
            for info in self.modules.values():
                for node in ast.walk(info.file.tree):
                    if isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        index.setdefault(node.name, []).append(
                            FunctionDecl(
                                name=node.name,
                                module=info.name,
                                rel=info.file.rel,
                                node=node,
                            )
                        )
            self._functions = index
        return self._functions

    # -- class hierarchy ----------------------------------------------
    def class_chain(self, name: str) -> List[ClassDecl]:
        """``name``'s declarations plus every project base, transitively.

        Bases are matched by bare name; unknown (builtin / third-party)
        bases terminate their branch.  Homonymous classes all
        contribute -- over-approximation, as everywhere here.
        """
        chain: List[ClassDecl] = []
        seen: Set[str] = set()
        pending = [name]
        while pending:
            current = pending.pop()
            if current in seen:
                continue
            seen.add(current)
            for decl in self.classes.get(current, []):
                chain.append(decl)
                pending.extend(decl.bases)
        return chain

    # -- conservative call graph ---------------------------------------
    def reachable_functions(
        self, roots: Iterable[FunctionDecl]
    ) -> List[FunctionDecl]:
        """Name-based reachability closure from ``roots``.

        Every call ``f(...)`` / ``obj.f(...)`` inside a reachable
        function reaches every project function named ``f``.
        Constructor calls ``Cls(...)`` reach ``Cls.__init__``.
        """
        reached: Dict[Tuple[str, str, int], FunctionDecl] = {}
        pending: List[FunctionDecl] = list(roots)
        while pending:
            decl = pending.pop()
            key = (decl.module, decl.name, int(getattr(decl.node, "lineno", 0)))
            if key in reached:
                continue
            reached[key] = decl
            for callee_name in _called_names(decl.node):
                pending.extend(self.functions.get(callee_name, []))
                for class_decl in self.classes.get(callee_name, []):
                    if class_decl.init is not None:
                        pending.append(
                            FunctionDecl(
                                name="__init__",
                                module=class_decl.module,
                                rel=class_decl.rel,
                                node=class_decl.init,
                            )
                        )
        return list(reached.values())


# ----------------------------------------------------------------------
# collection helpers
# ----------------------------------------------------------------------
def _collect_imports(file: SourceFile, module: str) -> List[ImportEdge]:
    is_package = Path(file.rel).name == "__init__.py"
    edges: List[ImportEdge] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if _type_checking_only(file, node):
            # Erased at runtime: no runtime dependency, no cycle; mypy
            # owns whatever the annotations reference.
            continue
        if isinstance(node, ast.Import):
            top = file.enclosing_function(node) is None
            for alias in node.names:
                edges.append(
                    ImportEdge(
                        target=alias.name,
                        line=int(node.lineno),
                        top_level=top,
                    )
                )
        else:
            top = file.enclosing_function(node) is None
            target = _resolve_from(node, module, is_package)
            if target is None:
                continue
            names = tuple(alias.name for alias in node.names)
            bound = tuple(
                alias.asname or alias.name for alias in node.names
            )
            edges.append(
                ImportEdge(
                    target=target,
                    line=int(node.lineno),
                    top_level=top,
                    names=names,
                    bound=bound,
                )
            )
    return edges


def _type_checking_only(file: SourceFile, node: ast.AST) -> bool:
    """Whether an import sits under an ``if TYPE_CHECKING:`` guard."""
    for ancestor in file.ancestors(node):
        if isinstance(ancestor, ast.If):
            test = ancestor.test
            name = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if name == "TYPE_CHECKING":
                return True
    return False


def _resolve_from(
    node: ast.ImportFrom, module: str, is_package: bool
) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    # level=1 is the importing module's own package: the module itself
    # for an ``__init__.py``, the containing package otherwise; each
    # extra level climbs one package higher.
    package = module.split(".") if is_package else module.split(".")[:-1]
    climb = node.level - 1
    if climb > len(package):
        return None
    base = package[: len(package) - climb]
    if node.module:
        base = base + node.module.split(".")
    if not base:
        return None
    return ".".join(base)


def _class_decl(node: ast.ClassDef, info: ModuleInfo) -> ClassDecl:
    bases: List[str] = []
    for base in node.bases:
        dotted = dotted_name(base)
        if dotted is not None:
            bases.append(dotted.rsplit(".", 1)[-1])
    has_reduce = False
    init: Optional[ast.FunctionDef] = None
    for member in node.body:
        if isinstance(member, ast.FunctionDef):
            if member.name in ("__reduce__", "__reduce_ex__", "__getnewargs__"):
                has_reduce = True
            elif member.name == "__init__":
                init = member
    return ClassDecl(
        name=node.name,
        module=info.name,
        rel=info.file.rel,
        line=int(node.lineno),
        bases=tuple(bases),
        has_reduce=has_reduce,
        init=init,
        node=node,
    )


def _called_names(func: ast.AST) -> FrozenSet[str]:
    """Bare names of everything called inside one function body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None:
                names.add(dotted.rsplit(".", 1)[-1])
            elif isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
    return frozenset(names)
