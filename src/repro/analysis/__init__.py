"""repro-lint: AST-based invariant checking for this repository.

PRs 1-3 introduced invariants enforced only by convention: densify only
through the planned backend step, raise only typed
:class:`~repro.hin.errors.ReproError` subclasses, seed every RNG,
propagate the ambient :class:`~repro.runtime.limits.ExecutionContext`
into worker threads, and guard shared state with locks.  This package
makes those invariants machine-checked on every push:

* :mod:`repro.analysis.core` -- the framework: :class:`Finding`,
  the :class:`Rule` protocol, the registry, single-parse-per-file
  :class:`SourceFile` handling.
* :mod:`repro.analysis.rules` -- the local rule pack (RPR001 unbudgeted
  densification, RPR002 typed errors, RPR003 nondeterminism, RPR005
  context propagation, RPR006 float-literal equality).
* :mod:`repro.analysis.lockgraph` -- RPR004 lock discipline: static
  guaranteed-held analysis plus lock-order cycle detection.
* :mod:`repro.analysis.pairs` -- RPR007 paired-state atomicity:
  unlocked same-key accesses to two separate ``_``-prefixed dicts
  (the stale-halves TOCTOU shape fixed in PR 5).
* :mod:`repro.analysis.cfg` / :mod:`~repro.analysis.dataflow` -- the
  semantic substrate: per-function control-flow graphs (exception
  edges, ``finally`` routing) and a generic forward/backward dataflow
  framework (reaching definitions, all-paths must-analysis).
* :mod:`repro.analysis.lifetime` -- RPR010 resource lifetime and
  RPR011 contextvar-token hygiene, path-sensitive over the CFG.
* :mod:`repro.analysis.project` -- the whole-project view: module
  naming, the resolved import graph, class/function indexes, and
  conservative call-graph reachability.
* :mod:`repro.analysis.consistency` -- the project rule pack (RPR012
  metrics-catalogue consistency, RPR013 import layering, RPR014
  picklable worker errors).
* :mod:`repro.analysis.runner` / :mod:`~repro.analysis.report` -- the
  driver and the text/JSON emitters behind ``hetesim lint``.
* :mod:`repro.analysis.baseline` -- the justification-required
  allowlist (``lint_baseline.toml``).

The package imports only the standard library, so the linter runs in
any environment that can run the tests.  Usage::

    hetesim lint                      # text report, exit 1 on findings
    hetesim lint --format json        # machine-readable
    hetesim lint --write-baseline     # grandfather the current tree
"""

from .baseline import (
    Baseline,
    PLACEHOLDER_REASON,
    Suppression,
    load_baseline,
    write_baseline,
)
from .cfg import CFG, build_cfg
from .consistency import (
    ImportLayeringRule,
    MetricsCatalogueRule,
    PicklableWorkerErrorRule,
)
from .core import (
    Finding,
    BaseRule,
    Rule,
    SourceFile,
    default_rules,
    register,
    registered_rules,
)
from .dataflow import all_paths_hit, reaching_definitions
from .lifetime import ContextTokenRule, ResourceLifetimeRule
from .lockgraph import LockDisciplineRule
from .pairs import PairedStateRule
from .project import ProjectContext
from .report import render_json, render_text
from .rules import (
    ContextPropagationRule,
    DensifyRule,
    FloatEqualityRule,
    MaterialiseImportRule,
    NondeterminismRule,
    SharedMemoryLeaseRule,
    TypedErrorRule,
)
from .runner import LintResult, iter_python_files, run_lint

__all__ = [
    "Baseline",
    "BaseRule",
    "CFG",
    "ContextPropagationRule",
    "ContextTokenRule",
    "DensifyRule",
    "Finding",
    "FloatEqualityRule",
    "ImportLayeringRule",
    "LintResult",
    "LockDisciplineRule",
    "MaterialiseImportRule",
    "MetricsCatalogueRule",
    "NondeterminismRule",
    "PLACEHOLDER_REASON",
    "PairedStateRule",
    "PicklableWorkerErrorRule",
    "ProjectContext",
    "ResourceLifetimeRule",
    "Rule",
    "SharedMemoryLeaseRule",
    "SourceFile",
    "Suppression",
    "TypedErrorRule",
    "all_paths_hit",
    "build_cfg",
    "default_rules",
    "iter_python_files",
    "load_baseline",
    "reaching_definitions",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
