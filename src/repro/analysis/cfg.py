"""Intra-function control-flow graphs built from the AST.

The semantic layer under the path-sensitive rules (RPR010/RPR011): a
:class:`CFG` has one node per statement (compound statements get a node
for their *header* -- the test of an ``if``, the iterable of a ``for``)
plus three synthetic nodes:

* ``entry`` -- where execution starts,
* ``exit`` -- normal completion (falling off the end, ``return``),
* ``raise_exit`` -- completion by an escaping exception.

Edges carry a *kind*: :data:`EDGE_NORMAL` for ordinary control transfer
and :data:`EDGE_EXCEPTION` for transfers taken only when the source
statement raises.  The distinction matters to the lifetime rules: the
exception edge out of an *acquisition* call means the constructor
itself failed, i.e. nothing was acquired, so leak analysis must start
from the acquisition's **normal** successors only.

Modelling decisions (all conservative -- they may add phantom paths,
never remove real ones):

* ``finally`` blocks are built **once** and shared by every
  continuation (normal fallthrough, exception propagation, ``return``
  / ``break`` / ``continue`` unwinding).  The single instance merges
  continuations at the ``FinallyExit`` node, which creates phantom
  paths (e.g. an exceptional entry leaving through the normal
  continuation); a must-pass analysis only gets *more* demanding under
  extra paths, so soundness is preserved.
* ``with`` is ``try``/``finally``-like: a synthetic ``WithExit`` node
  models the guaranteed ``__exit__`` call, and the body's exceptional
  and jump continuations all route through it.
* A statement "may raise" when its header expressions contain a
  ``Call`` / ``Await`` / ``Yield`` / ``YieldFrom`` (a ``yield`` is a
  resumption point where ``throw()`` can inject), plus ``raise`` and
  ``assert`` which raise by construction.  Attribute access and
  arithmetic are deliberately ignored -- the rules target resource
  lifetimes around calls, and treating every expression as raising
  would drown the graph in edges.
* An ``except`` clause whose type is bare, ``Exception`` or
  ``BaseException`` is treated as catching everything; otherwise the
  exception also propagates outward (handler match is not decided
  statically).

Node labels are deterministic (``ClassName@line``, disambiguated with
``#n`` on collision), so tests can assert hand-drawn edge sets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "EDGE_NORMAL",
    "EDGE_EXCEPTION",
    "Node",
    "CFG",
    "build_cfg",
    "statement_expressions",
    "may_raise",
]

#: Edge taken on ordinary control transfer.
EDGE_NORMAL = "normal"
#: Edge taken only when the source statement raises.
EDGE_EXCEPTION = "exception"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Exception types treated as catch-all in ``except`` clauses.
_CATCH_ALL_TYPES = {"Exception", "BaseException"}


@dataclass
class Node:
    """One CFG node: a statement header or a synthetic control point."""

    index: int
    label: str
    stmt: Optional[ast.AST]
    line: int


class CFG:
    """A control-flow graph over one function body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self._normal: Dict[int, Set[int]] = {}
        self._exceptional: Dict[int, Set[int]] = {}
        self._label_counts: Dict[str, int] = {}
        self._by_stmt: Dict[int, Node] = {}
        self.entry = self._add_node("entry", None, 0)
        self.exit = self._add_node("exit", None, 0)
        self.raise_exit = self._add_node("raise_exit", None, 0)

    # -- construction --------------------------------------------------
    def _add_node(self, base: str, stmt: Optional[ast.AST], line: int) -> Node:
        count = self._label_counts.get(base, 0)
        self._label_counts[base] = count + 1
        label = base if count == 0 else f"{base}#{count}"
        node = Node(index=len(self.nodes), label=label, stmt=stmt, line=line)
        self.nodes.append(node)
        self._normal[node.index] = set()
        self._exceptional[node.index] = set()
        if stmt is not None:
            self._by_stmt[id(stmt)] = node
        return node

    def add_statement(self, stmt: ast.AST) -> Node:
        """A node for one statement (or ``except`` clause) header."""
        line = int(getattr(stmt, "lineno", 0))
        return self._add_node(f"{type(stmt).__name__}@{line}", stmt, line)

    def add_synthetic(self, base: str, line: int) -> Node:
        """A synthetic control point (``Finally@n``, ``WithExit@n``)."""
        return self._add_node(f"{base}@{line}", None, line)

    def add_edge(self, src: Node, dst: Node, kind: str = EDGE_NORMAL) -> None:
        """Add one edge; parallel duplicates collapse."""
        table = self._normal if kind == EDGE_NORMAL else self._exceptional
        table[src.index].add(dst.index)

    # -- queries -------------------------------------------------------
    def successors(self, node: Node, kind: Optional[str] = None) -> List[Node]:
        """Successor nodes, optionally restricted to one edge kind."""
        indices: Set[int] = set()
        if kind in (None, EDGE_NORMAL):
            indices |= self._normal[node.index]
        if kind in (None, EDGE_EXCEPTION):
            indices |= self._exceptional[node.index]
        return [self.nodes[i] for i in sorted(indices)]

    def node_for(self, stmt: ast.AST) -> Optional[Node]:
        """The node whose header is ``stmt``, if one exists."""
        return self._by_stmt.get(id(stmt))

    def edges(self) -> Set[Tuple[str, str, str]]:
        """``(src_label, dst_label, kind)`` triples -- the test surface."""
        out: Set[Tuple[str, str, str]] = set()
        for table, kind in (
            (self._normal, EDGE_NORMAL),
            (self._exceptional, EDGE_EXCEPTION),
        ):
            for src, dsts in table.items():
                for dst in dsts:
                    out.add((self.nodes[src].label, self.nodes[dst].label, kind))
        return out


# ----------------------------------------------------------------------
# statement headers and may-raise
# ----------------------------------------------------------------------
def statement_expressions(stmt: ast.AST) -> List[ast.AST]:
    """The expressions *owned* by a statement's CFG node.

    For compound statements this is the header only (the body's
    statements have their own nodes); for simple statements it is the
    whole statement.  Rules use this to decide which node contains a
    given call.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        exprs: List[ast.AST] = [stmt.subject]
        exprs.extend(case.guard for case in stmt.cases if case.guard is not None)
        return exprs
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return list(stmt.decorator_list)
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def may_raise(stmt: ast.AST) -> bool:
    """Whether a statement's header can raise (documented approximation).

    ``raise`` and ``assert`` raise by construction; otherwise the header
    must contain a call or a yield/await resumption point.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for expr in statement_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom)):
                return True
    return False


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
@dataclass
class _FinallyFrame:
    """One active ``finally`` (or ``with``-exit) continuation point."""

    entry: Node
    exit: Node


@dataclass
class _HandlerFrame:
    """The handlers of one ``try`` while its body is being built."""

    entries: List[Node]
    catch_all: bool


_ProtectionFrame = Union[_FinallyFrame, _HandlerFrame]


@dataclass
class _LoopFrame:
    """One active loop: where ``continue`` and ``break`` go."""

    header: Node
    protection_depth: int
    break_sources: List[Node] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._protection: List[_ProtectionFrame] = []
        self._loops: List[_LoopFrame] = []

    # -- routing -------------------------------------------------------
    def _route_exception(self, source: Node) -> None:
        """Wire ``source``'s exceptional continuation through the stack."""
        current = source
        for frame in reversed(self._protection):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(current, frame.entry, EDGE_EXCEPTION)
                current = frame.exit
            else:
                for handler_entry in frame.entries:
                    self.cfg.add_edge(current, handler_entry, EDGE_EXCEPTION)
                if frame.catch_all:
                    return
        self.cfg.add_edge(current, self.cfg.raise_exit, EDGE_EXCEPTION)

    def _route_jump(
        self, source: Node, target: Optional[Node], down_to: int = 0
    ) -> Node:
        """Wire a ``return``/``break``/``continue`` through active finallies.

        Unwinds every :class:`_FinallyFrame` pushed at depth >=
        ``down_to`` (innermost first), then connects to ``target`` when
        given.  Returns the final source node (the last finally exit, or
        ``source`` itself) so deferred targets (``break``) can be wired
        once the loop's continuation is known.
        """
        current = source
        for depth in range(len(self._protection) - 1, down_to - 1, -1):
            frame = self._protection[depth]
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(current, frame.entry, EDGE_NORMAL)
                current = frame.exit
        if target is not None:
            self.cfg.add_edge(current, target, EDGE_NORMAL)
        return current

    # -- statement lists ----------------------------------------------
    def build_stmts(
        self, stmts: Sequence[ast.stmt], frontier: List[Node]
    ) -> List[Node]:
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def _connect(self, frontier: List[Node], node: Node) -> None:
        for pred in frontier:
            self.cfg.add_edge(pred, node, EDGE_NORMAL)

    # -- one statement -------------------------------------------------
    def build_stmt(self, stmt: ast.stmt, frontier: List[Node]) -> List[Node]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self.cfg.add_statement(stmt)
            self._connect(frontier, node)
            if may_raise(stmt):
                self._route_exception(node)
            self._route_jump(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg.add_statement(stmt)
            self._connect(frontier, node)
            self._route_exception(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg.add_statement(stmt)
            self._connect(frontier, node)
            loop = self._loops[-1]
            source = self._route_jump(node, None, down_to=loop.protection_depth)
            loop.break_sources.append(source)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg.add_statement(stmt)
            self._connect(frontier, node)
            loop = self._loops[-1]
            self._route_jump(node, loop.header, down_to=loop.protection_depth)
            return []
        # Simple statements (including nested def/class, whose bodies are
        # *not* part of this function's flow).
        node = self.cfg.add_statement(stmt)
        self._connect(frontier, node)
        if may_raise(stmt):
            self._route_exception(node)
        return [node]

    def _build_if(self, stmt: ast.If, frontier: List[Node]) -> List[Node]:
        node = self.cfg.add_statement(stmt)
        self._connect(frontier, node)
        if may_raise(stmt):
            self._route_exception(node)
        then_frontier = self.build_stmts(stmt.body, [node])
        if stmt.orelse:
            else_frontier = self.build_stmts(stmt.orelse, [node])
        else:
            else_frontier = [node]
        return then_frontier + else_frontier

    def _build_loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        frontier: List[Node],
    ) -> List[Node]:
        header = self.cfg.add_statement(stmt)
        self._connect(frontier, header)
        if may_raise(stmt):
            self._route_exception(header)
        loop = _LoopFrame(header=header, protection_depth=len(self._protection))
        self._loops.append(loop)
        body_frontier = self.build_stmts(stmt.body, [header])
        for node in body_frontier:
            self.cfg.add_edge(node, header, EDGE_NORMAL)
        self._loops.pop()
        # Condition-false / iterator-exhausted continuation: the else
        # clause when present, the fallthrough otherwise.  break jumps
        # past the else clause.
        if stmt.orelse:
            out = self.build_stmts(stmt.orelse, [header])
        else:
            out = [header]
        return out + loop.break_sources

    def _build_with(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: List[Node]
    ) -> List[Node]:
        node = self.cfg.add_statement(stmt)
        self._connect(frontier, node)
        if may_raise(stmt):
            # The context-manager construction itself failing: __exit__
            # does not run for managers never entered.
            self._route_exception(node)
        exit_node = self.cfg.add_synthetic("WithExit", int(stmt.lineno))
        frame = _FinallyFrame(entry=exit_node, exit=exit_node)
        self._protection.append(frame)
        body_frontier = self.build_stmts(stmt.body, [node])
        self._protection.pop()
        for pred in body_frontier:
            self.cfg.add_edge(pred, exit_node, EDGE_NORMAL)
        return [exit_node]

    def _build_match(self, stmt: ast.Match, frontier: List[Node]) -> List[Node]:
        node = self.cfg.add_statement(stmt)
        self._connect(frontier, node)
        if may_raise(stmt):
            self._route_exception(node)
        out: List[Node] = [node]  # no case matched
        for case in stmt.cases:
            out.extend(self.build_stmts(case.body, [node]))
        return out

    def _build_try(self, stmt: ast.Try, frontier: List[Node]) -> List[Node]:
        finally_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            line = int(stmt.finalbody[0].lineno)
            entry = self.cfg.add_synthetic("Finally", line)
            # The finalbody is built in the *enclosing* protection
            # context: exceptions it raises propagate outward, past this
            # try's own handlers.
            body_out = self.build_stmts(stmt.finalbody, [entry])
            exit_node = self.cfg.add_synthetic("FinallyExit", line)
            for pred in body_out:
                self.cfg.add_edge(pred, exit_node, EDGE_NORMAL)
            finally_frame = _FinallyFrame(entry=entry, exit=exit_node)
            self._protection.append(finally_frame)

        handler_nodes: List[Node] = []
        catch_all = False
        for handler in stmt.handlers:
            handler_nodes.append(self.cfg.add_statement(handler))
            catch_all = catch_all or _is_catch_all(handler)
        handler_frame: Optional[_HandlerFrame] = None
        if handler_nodes:
            handler_frame = _HandlerFrame(
                entries=handler_nodes, catch_all=catch_all
            )
            self._protection.append(handler_frame)

        body_frontier = self.build_stmts(stmt.body, frontier)

        if handler_frame is not None:
            self._protection.pop()  # handler bodies re-raise outward

        if stmt.orelse:
            after_sources = self.build_stmts(stmt.orelse, body_frontier)
        else:
            after_sources = body_frontier
        for handler, handler_node in zip(stmt.handlers, handler_nodes):
            after_sources = after_sources + self.build_stmts(
                handler.body, [handler_node]
            )

        if finally_frame is not None:
            self._protection.pop()
            for pred in after_sources:
                self.cfg.add_edge(pred, finally_frame.entry, EDGE_NORMAL)
            return [finally_frame.exit]
        return after_sources


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _CATCH_ALL_TYPES
    if isinstance(handler.type, ast.Attribute):
        return handler.type.attr in _CATCH_ALL_TYPES
    return False


def build_cfg(func: FunctionNode) -> CFG:
    """The control-flow graph of one function definition's body."""
    builder = _Builder()
    frontier = builder.build_stmts(func.body, [builder.cfg.entry])
    for node in frontier:
        builder.cfg.add_edge(node, builder.cfg.exit, EDGE_NORMAL)
    return builder.cfg
