"""Report emitters for lint results: human text and machine JSON.

Text is the developer-facing form (``path:line: RULE severity:
message`` plus a summary line); JSON is what CI and tooling consume
(``hetesim lint --format json``) -- a stable top-level object with the
findings, counters and any stale baseline entries.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from .baseline import Suppression
from .runner import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult) -> str:
    """Multi-line human-readable report (the default CLI output)."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.severity}: "
            f"{finding.message}"
        )
    for entry in result.unused:
        location = entry.path + (
            f":{entry.line}" if entry.line is not None else ""
        )
        lines.append(
            f"note: unused baseline entry {entry.rule} at {location} "
            "(stale -- delete it)"
        )
    lines.append(
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} baselined, "
        f"{result.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON rendering (``--format json``)."""
    payload: Dict[str, object] = {
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "severity": finding.severity,
                "message": finding.message,
            }
            for finding in result.findings
        ],
        "suppressed": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
            }
            for finding in result.suppressed
        ],
        "unused_suppressions": [
            _suppression_payload(entry) for entry in result.unused
        ],
        "files_checked": result.files_checked,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _suppression_payload(
    entry: Suppression,
) -> Dict[str, Union[str, int, None]]:
    """JSON form of one baseline entry."""
    return {
        "rule": entry.rule,
        "path": entry.path,
        "line": entry.line,
        "reason": entry.reason,
    }
