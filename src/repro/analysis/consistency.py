"""Project-scoped consistency rules (RPR012-RPR014).

These rules run in the *project pass*: after every file is parsed, the
runner hands them one :class:`~repro.analysis.project.ProjectContext`
and they check invariants no single file can witness:

* **RPR012** -- the metrics catalogue is consistent: every family is
  registered at exactly one site, all registration sites agree on the
  metric kind, every ``.labels(...)`` site for a family uses the same
  label-key set (a convenience ``inc`` / ``set`` / ``observe`` on the
  family is the empty set -- mixing it with labelled children splits
  the series), and the family name appears in the catalogue table of
  ``docs/observability.md`` (and vice versa: no ghost rows).
* **RPR013** -- import layering: the package's layer DAG is declared in
  :data:`LAYER_RANKS` and every ``repro``-internal import must point at
  the same or a lower layer.  Top-level import cycles between modules
  are reported as well (Tarjan SCC, the same machinery as RPR004's
  lock-order cycles).
* **RPR014** -- exceptions raised in code reachable from the process
  tier's worker module must be picklable: the class (or a base) defines
  ``__reduce__``, or no class in its chain customises ``__init__``
  (default ``cls(*self.args)`` replay works), or every ``__init__`` in
  the chain forwards its positional parameters verbatim to
  ``super().__init__`` (so the replay signature still matches).  A
  worker exception that cannot cross the process boundary surfaces as
  an opaque ``PicklingError`` instead of the real failure.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .core import BaseRule, Finding, SourceFile, dotted_name, register
from .project import ClassDecl, FunctionDecl, ImportEdge, ProjectContext

__all__ = [
    "LAYER_RANKS",
    "MetricsCatalogueRule",
    "ImportLayeringRule",
    "PicklableWorkerErrorRule",
]

#: The declared layer DAG, bottom-up.  ``hin`` (graph model, typed
#: errors) is the foundation; ``obs`` / ``analysis`` / ``datasets``
#: depend only on it; ``core`` (measures, planner, caches) builds on
#: those; ``runtime`` / ``learning`` / ``baselines`` wrap core;
#: ``serve`` orchestrates everything below; ``experiments`` and the
#: CLI sit on top.  An import from a lower to a strictly higher rank
#: is an upward (layer-violating) import.
LAYER_RANKS: Dict[str, int] = {
    "hin": 0,
    "obs": 1,
    "analysis": 1,
    "datasets": 1,
    "core": 2,
    "runtime": 3,
    "learning": 3,
    "baselines": 3,
    "serve": 4,
    "experiments": 5,
    "cli": 5,
}

_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})
_CONVENIENCE = frozenset({"inc", "dec", "set", "observe"})
_DOC_METRIC = re.compile(r"`(repro_[a-z0-9_]+)`")


def _project_finding(
    rule: BaseRule, rel: str, line: int, message: str
) -> Finding:
    return Finding(
        path=rel,
        line=int(line),
        rule=rule.rule_id,
        severity="error",
        message=message,
    )


# ----------------------------------------------------------------------
# RPR012: metrics catalogue consistency
# ----------------------------------------------------------------------
@register
class MetricsCatalogueRule(BaseRule):
    """RPR012: registered once, label sets agree, catalogued in docs."""

    rule_id = "RPR012"
    summary = (
        "metrics-catalogue consistency: single registration site, "
        "agreeing label sets, documented in docs/observability.md"
    )

    def __init__(
        self,
        library_prefix: str = "src/repro",
        catalogue_doc: str = "docs/observability.md",
    ) -> None:
        self.library_prefix = library_prefix
        self.catalogue_doc = catalogue_doc

    def check_project(self, project: ProjectContext) -> List[Finding]:
        """Cross-check every registration/label/doc site of each family.

        Three sweeps: (1) registrations plus the bindings they create
        per module, (2) one import-resolution round so a ``from .base
        import FAMILY`` alias attributes to the defining module's
        family (one hop covers the tree; re-export chains would need a
        fixpoint), (3) label/convenience sites against the merged
        binding tables.
        """
        registrations: Dict[str, List[Tuple[str, int, str]]] = {}
        label_sites: Dict[str, List[Tuple[str, int, FrozenSet[str]]]] = {}
        bindings: Dict[str, Dict[str, str]] = {}
        scanned = [
            info
            for name, info in sorted(project.modules.items())
            if info.file.rel.startswith(self.library_prefix)
        ]
        for info in scanned:
            bindings[info.name] = self._collect_registrations(
                info.file, registrations
            )
        for info in scanned:
            table = bindings[info.name]
            for edge in info.imports:
                exported = bindings.get(edge.target)
                if not exported:
                    continue
                for original, local in zip(edge.names, edge.bound):
                    if original in exported:
                        table.setdefault(local, exported[original])
        for info in scanned:
            self._collect_label_sites(
                info.file, bindings[info.name], label_sites
            )
        findings: List[Finding] = []
        findings.extend(self._check_registrations(registrations))
        findings.extend(self._check_labels(registrations, label_sites))
        findings.extend(self._check_docs(project, registrations))
        return findings

    # -- per-module sweeps --------------------------------------------
    def _collect_registrations(
        self,
        file: SourceFile,
        registrations: Dict[str, List[Tuple[str, int, str]]],
    ) -> Dict[str, str]:
        """Registrations in one module; returns the bindings they create.

        Bindings map a module-level name or a ``self._attr`` attribute
        name to the metric family it holds, so later ``.labels`` /
        convenience calls on that name can be attributed.
        """
        parents = file.parents()
        bindings: Dict[str, str] = {}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            metric = self._registration(node)
            if metric is None:
                continue
            name, kind = metric
            registrations.setdefault(name, []).append(
                (file.rel, int(node.lineno), kind)
            )
            self._bind(parents, node, name, bindings)
        return bindings

    def _collect_label_sites(
        self,
        file: SourceFile,
        bindings: Dict[str, str],
        label_sites: Dict[str, List[Tuple[str, int, FrozenSet[str]]]],
    ) -> None:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            family = self._family_of(node.func.value, bindings)
            if family is None:
                continue
            if node.func.attr == "labels":
                keys = self._label_keys(node)
                if keys is not None:
                    label_sites.setdefault(family, []).append(
                        (file.rel, int(node.lineno), keys)
                    )
            elif node.func.attr in _CONVENIENCE:
                label_sites.setdefault(family, []).append(
                    (file.rel, int(node.lineno), frozenset())
                )

    def _registration(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        """``(metric_name, kind)`` when ``call`` registers a family."""
        if not isinstance(call.func, ast.Attribute):
            return None
        if call.func.attr not in _METRIC_KINDS:
            return None
        receiver = dotted_name(call.func.value)
        if receiver is None or receiver.rsplit(".", 1)[-1] != "REGISTRY":
            return None
        if not call.args or not isinstance(call.args[0], ast.Constant):
            return None
        name = call.args[0].value
        if not isinstance(name, str):
            return None
        return (name, call.func.attr)

    def _bind(
        self,
        parents: Dict[ast.AST, ast.AST],
        registration: ast.Call,
        metric: str,
        bindings: Dict[str, str],
    ) -> None:
        """Record what name (if any) the registration result is bound to.

        ``FAM = REGISTRY.counter(...)`` binds a module-level name;
        ``self._fam = REGISTRY.counter(...)`` binds an attribute name.
        A chained ``REGISTRY.counter(...).labels(...)`` binds a *child*,
        not the family -- the chained ``.labels`` call itself is picked
        up in pass 2 via :meth:`_family_of` on the inline registration.
        """
        parent = parents.get(registration)
        if not isinstance(parent, ast.Assign) or parent.value is not registration:
            return
        for target in parent.targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = metric
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                bindings[f"{target.value.id}.{target.attr}"] = metric

    def _family_of(
        self, receiver: ast.expr, bindings: Dict[str, str]
    ) -> Optional[str]:
        """The metric family a call receiver denotes, if resolvable."""
        inline = self._registration_expr(receiver)
        if inline is not None:
            return inline
        dotted = dotted_name(receiver)
        if dotted is None:
            return None
        if dotted in bindings:
            return bindings[dotted]
        leaf = dotted.rsplit(".", 1)[-1]
        return bindings.get(leaf)

    def _registration_expr(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Call):
            metric = self._registration(expr)
            if metric is not None:
                return metric[0]
        return None

    def _label_keys(self, call: ast.Call) -> Optional[FrozenSet[str]]:
        keys: Set[str] = set()
        for keyword in call.keywords:
            if keyword.arg is None:  # **kwargs: label set unknowable
                return None
        for keyword in call.keywords:
            if keyword.arg is not None:
                keys.add(keyword.arg)
        return frozenset(keys)

    # -- cross-site checks --------------------------------------------
    def _check_registrations(
        self, registrations: Dict[str, List[Tuple[str, int, str]]]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for name, sites in sorted(registrations.items()):
            ordered = sorted(sites)
            kinds = {kind for _, _, kind in ordered}
            if len(ordered) > 1:
                first = ordered[0]
                for rel, line, _ in ordered[1:]:
                    findings.append(
                        _project_finding(
                            self,
                            rel,
                            line,
                            f"metric family `{name}` registered more than "
                            f"once (first at {first[0]}:{first[1]}); "
                            "register once and share the family object",
                        )
                    )
            if len(kinds) > 1:
                for rel, line, kind in ordered:
                    findings.append(
                        _project_finding(
                            self,
                            rel,
                            line,
                            f"metric family `{name}` registered as "
                            f"`{kind}` here but as "
                            f"{sorted(kinds - {kind})} elsewhere",
                        )
                    )
        return findings

    def _check_labels(
        self,
        registrations: Dict[str, List[Tuple[str, int, str]]],
        label_sites: Dict[str, List[Tuple[str, int, FrozenSet[str]]]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(label_sites):
            if name not in registrations:
                continue
            sites = label_sites[name]
            by_keys: Dict[FrozenSet[str], int] = {}
            for _, _, keys in sites:
                by_keys[keys] = by_keys.get(keys, 0) + 1
            if len(by_keys) <= 1:
                continue
            majority = max(
                by_keys.items(), key=lambda item: (item[1], sorted(item[0]))
            )[0]
            for rel, line, keys in sorted(sites):
                if keys == majority:
                    continue
                findings.append(
                    _project_finding(
                        self,
                        rel,
                        line,
                        f"metric family `{name}` used with label set "
                        f"{sorted(keys)} here but {sorted(majority)} at "
                        "its other call sites; series split across "
                        "label schemas",
                    )
                )
        return findings

    def _check_docs(
        self,
        project: ProjectContext,
        registrations: Dict[str, List[Tuple[str, int, str]]],
    ) -> List[Finding]:
        if not registrations:
            # Linting a tree with no metric registrations at all (a
            # test fixture, a subset run): the catalogue belongs to a
            # different tree, so "not registered anywhere" would be
            # vacuously true for every row.
            return []
        doc_path = project.root / self.catalogue_doc
        if not doc_path.is_file():
            return []
        documented: Dict[str, int] = {}
        for number, line in enumerate(
            doc_path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _DOC_METRIC.finditer(line):
                documented.setdefault(match.group(1), number)
        findings: List[Finding] = []
        for name, sites in sorted(registrations.items()):
            if name not in documented:
                rel, line, _ = sorted(sites)[0]
                findings.append(
                    _project_finding(
                        self,
                        rel,
                        line,
                        f"metric family `{name}` is not in the catalogue "
                        f"table of {self.catalogue_doc}; add a row",
                    )
                )
        for name, line in sorted(documented.items()):
            if name not in registrations:
                findings.append(
                    _project_finding(
                        self,
                        self.catalogue_doc,
                        line,
                        f"documented metric `{name}` is not registered "
                        "anywhere; delete the stale catalogue row",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RPR013: import layering
# ----------------------------------------------------------------------
@register
class ImportLayeringRule(BaseRule):
    """RPR013: no upward imports against the declared layer DAG."""

    rule_id = "RPR013"
    summary = (
        "import layering: repro-internal imports must point at the "
        "same or a lower layer; no top-level import cycles"
    )

    def __init__(self, package: str = "repro") -> None:
        self.package = package

    def check_project(self, project: ProjectContext) -> List[Finding]:
        """Flag upward imports and top-level import cycles."""
        findings: List[Finding] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            importer_rank = self._rank(name)
            if importer_rank is None:
                continue
            for edge in info.imports:
                importee_rank = self._rank(edge.target)
                if importee_rank is None or importee_rank <= importer_rank:
                    continue
                flavour = "top-level" if edge.top_level else "lazy"
                findings.append(
                    _project_finding(
                        self,
                        info.file.rel,
                        edge.line,
                        f"{flavour} import of `{edge.target}` "
                        f"(layer {importee_rank}) from layer "
                        f"{importer_rank} module `{name}` inverts the "
                        "declared layer DAG",
                    )
                )
        findings.extend(self._cycles(project))
        return findings

    def _rank(self, module: Optional[str]) -> Optional[int]:
        if module is None:
            return None
        parts = module.split(".")
        if parts[0] != self.package or len(parts) < 2:
            return None
        return LAYER_RANKS.get(parts[1])

    def _resolve_targets(
        self, project: ProjectContext, edge: ImportEdge
    ) -> List[str]:
        """Project modules an import edge depends on."""
        targets: List[str] = []
        if edge.target in project.modules:
            targets.append(edge.target)
        for name in edge.names:
            candidate = f"{edge.target}.{name}"
            if candidate in project.modules:
                targets.append(candidate)
        return targets

    def _cycles(self, project: ProjectContext) -> List[Finding]:
        """Tarjan SCCs over the top-level import graph (size > 1)."""
        graph: Dict[str, Set[str]] = {}
        edge_lines: Dict[Tuple[str, str], int] = {}
        for name, info in project.modules.items():
            graph.setdefault(name, set())
            for edge in info.imports:
                if not edge.top_level:
                    continue
                for target in self._resolve_targets(project, edge):
                    if target == name:
                        continue
                    graph[name].add(target)
                    graph.setdefault(target, set())
                    edge_lines.setdefault((name, target), edge.line)

        index_counter = [0]
        stack: List[str] = []
        on_stack: Set[str] = set()
        indices: Dict[str, int] = {}
        low: Dict[str, int] = {}
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            indices[node] = low[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph[node]):
                if succ not in indices:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], indices[succ])
            if low[node] == indices[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

        for node in sorted(graph):
            if node not in indices:
                strongconnect(node)

        findings: List[Finding] = []
        for component in sorted(components):
            anchor = component[0]
            member_set = set(component)
            line = 1
            for (src, dst), edge_line in sorted(edge_lines.items()):
                if src == anchor and dst in member_set:
                    line = edge_line
                    break
            findings.append(
                _project_finding(
                    self,
                    project.modules[anchor].file.rel,
                    line,
                    "top-level import cycle: "
                    + " -> ".join(component + [component[0]]),
                )
            )
        return findings


# ----------------------------------------------------------------------
# RPR014: picklable worker exceptions
# ----------------------------------------------------------------------
@register
class PicklableWorkerErrorRule(BaseRule):
    """RPR014: exceptions in worker-reachable code must survive pickling."""

    rule_id = "RPR014"
    summary = (
        "exceptions raised in process-worker-reachable code must be "
        "picklable (__reduce__, or an __init__ the default replay "
        "can call)"
    )

    def __init__(self, worker_module: str = "repro.serve.procs") -> None:
        self.worker_module = worker_module

    def check_project(self, project: ProjectContext) -> List[Finding]:
        """Walk the conservative closure from the worker module's code."""
        worker = project.modules.get(self.worker_module)
        if worker is None:
            return []
        roots: List[FunctionDecl] = []
        for node in ast.walk(worker.file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                roots.append(
                    FunctionDecl(
                        name=node.name,
                        module=self.worker_module,
                        rel=worker.file.rel,
                        node=node,
                    )
                )
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        verdicts: Dict[str, Optional[str]] = {}
        for decl in project.reachable_functions(roots):
            for node in ast.walk(decl.node):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                if not isinstance(node.exc, ast.Call):
                    continue
                ctor = dotted_name(node.exc.func)
                if ctor is None:
                    continue
                leaf = ctor.rsplit(".", 1)[-1]
                if leaf not in verdicts:
                    verdicts[leaf] = self._verdict(project, leaf)
                problem = verdicts[leaf]
                if problem is None:
                    continue
                key = (decl.rel, int(node.lineno), leaf)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    _project_finding(
                        self,
                        decl.rel,
                        node.lineno,
                        f"`{leaf}` raised in code reachable from "
                        f"{self.worker_module} workers {problem}; it "
                        "would cross the process boundary as an opaque "
                        "PicklingError (define __reduce__)",
                    )
                )
        findings.sort()
        return findings

    def _verdict(
        self, project: ProjectContext, class_name: str
    ) -> Optional[str]:
        """None when picklable; otherwise why it is not."""
        chain = project.class_chain(class_name)
        if not chain:
            return None  # builtin / third-party: out of scope
        if not self._is_exception(project, chain):
            return None
        if any(decl.has_reduce for decl in chain):
            return None
        inits = [decl for decl in chain if decl.init is not None]
        if not inits:
            return None  # default Exception pickling replays cls(*args)
        for decl in inits:
            assert decl.init is not None
            if not _init_forwards_args(decl.init):
                return (
                    "but its __init__ (in "
                    f"{decl.module}) does not forward its arguments to "
                    "super().__init__"
                )
        return None

    def _is_exception(
        self, project: ProjectContext, chain: List[ClassDecl]
    ) -> bool:
        """Whether the chain plausibly roots in an exception type."""
        for decl in chain:
            for base in decl.bases:
                if base.endswith("Error") or base.endswith("Exception"):
                    return True
        return False


def _init_forwards_args(init: ast.FunctionDef) -> bool:
    """``__init__`` passes each of its positional params, in order, to
    ``super().__init__`` -- so the default ``cls(*self.args)`` replay
    reconstructs an equivalent instance."""
    params = [arg.arg for arg in init.args.args[1:]]  # drop self
    for node in ast.walk(init):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr != "__init__":
            continue
        value = node.func.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
        ):
            continue
        passed: List[str] = []
        for arg in node.args:
            if not isinstance(arg, ast.Name):
                return False
            passed.append(arg.id)
        return passed == params[: len(passed)] and len(passed) == len(params)
    return False
