"""RPR004: static lock-discipline analysis over thread-safe classes.

PRs 2-3 made :class:`~repro.core.cache.PathMatrixCache`,
:class:`~repro.core.engine.HeteSimEngine`,
:class:`~repro.runtime.limits.LimitTracker`,
:class:`~repro.runtime.faults.FaultPlan` and
:class:`~repro.serve.dispatch.SingleFlight` thread-safe by hand-applied
convention: every mutation of ``_``-prefixed shared state happens under
``with self._lock``.  This module machine-checks that convention:

* A class is **lock-disciplined** when a method assigns a
  ``threading.Lock()`` / ``RLock()`` to a ``self._*`` attribute (or its
  docstring says "thread-safe").
* Within such a class, every mutation of a ``_``-prefixed ``self``
  attribute must be *lock-held*: lexically inside ``with self.<lock>``,
  or inside a private helper that is **only ever called** with the lock
  held.  The latter is computed as a fixpoint over the intra-class call
  graph ("guaranteed-held" propagation), so the
  ``freshest_prefix() -> _touch()`` pattern needs no annotations.
* While scanning, the rule records a **lock-acquisition graph**
  (acquiring ``B`` while holding ``A`` adds the edge ``A -> B``,
  including acquisitions made by callees); :meth:`finalize` reports
  every cycle -- the static signature of a potential ABBA deadlock.

Known limits (by design, documented in ``docs/static_analysis.md``):
locks passed around as locals (the engine's per-key half locks) are
invisible -- such sites are baselined with a justification -- and the
call graph is intra-class only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .core import BaseRule, Finding, SourceFile, dotted_name, register

__all__ = ["LockDisciplineRule"]

#: Method names on a ``self._x`` receiver that mutate the receiver.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Methods that run before the object is shared (never flagged).
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


@dataclass
class _Mutation:
    """One write to a ``_``-prefixed shared attribute."""

    attr: str
    line: int
    held: FrozenSet[str]


@dataclass
class _CallSite:
    """One ``self.<method>()`` call inside the class."""

    callee: str
    line: int
    held: FrozenSet[str]


@dataclass
class _Acquisition:
    """One ``with self.<lock>`` entry."""

    lock: str
    line: int
    held: FrozenSet[str]


@dataclass
class _MethodInfo:
    """Everything the analysis recorded about one method body."""

    mutations: List[_Mutation] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    acquisitions: List[_Acquisition] = field(default_factory=list)


@dataclass
class _ClassInfo:
    """One lock-disciplined class, fully scanned."""

    name: str
    rel: str
    line: int
    lock_attrs: FrozenSet[str]
    methods: Dict[str, _MethodInfo]


@register
class LockDisciplineRule(BaseRule):
    """RPR004: shared-state mutations must hold the class lock; the
    acquisition graph must be acyclic.

    See the module docstring of :mod:`repro.analysis.lockgraph` for the
    exact model (guaranteed-held propagation, intra-class call graph,
    cycle detection in :meth:`finalize`).
    """

    rule_id = "RPR004"
    summary = (
        "unlocked mutation of shared state, or a lock-order cycle, in a "
        "thread-safe class"
    )

    def __init__(self) -> None:
        #: ``A -> B`` acquisition edges, with one witness site each.
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def check(self, file: SourceFile) -> List[Finding]:
        """Per-file pass: flag unlocked mutations, collect lock edges."""
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _scan_class(node, file.rel)
            if info is None:
                continue
            findings.extend(self._check_class(file, info))
        return findings

    def finalize(self) -> List[Finding]:
        """Whole-project pass: report cycles in the acquisition graph."""
        findings: List[Finding] = []
        for cycle in _find_cycles(set(self._edges)):
            members = set(cycle)
            witness = min(
                edge
                for edge in self._edges
                if edge[0] in members and edge[1] in members
            )
            rel, line = self._edges[witness]
            chain = " -> ".join([*cycle, cycle[0]])
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    rule=self.rule_id,
                    severity="error",
                    message=(
                        f"lock-order cycle: {chain} (acquire these locks "
                        "in one consistent order to rule out ABBA "
                        "deadlock)"
                    ),
                )
            )
        self._edges.clear()
        return findings

    # ------------------------------------------------------------------
    # per-class analysis
    # ------------------------------------------------------------------
    def _check_class(
        self, file: SourceFile, info: _ClassInfo
    ) -> List[Finding]:
        guaranteed = _guaranteed_held(info)
        acquires = _acquires_closure(info)
        findings: List[Finding] = []
        for method_name, method in sorted(info.methods.items()):
            base = guaranteed.get(method_name, frozenset())
            for mutation in method.mutations:
                if mutation.attr in info.lock_attrs:
                    continue
                if not (mutation.held | base):
                    locks = ", ".join(
                        f"self.{name}" for name in sorted(info.lock_attrs)
                    )
                    findings.append(
                        Finding(
                            path=file.rel,
                            line=mutation.line,
                            rule=self.rule_id,
                            severity="error",
                            message=(
                                f"{info.name}.{method_name}: mutation of "
                                f"shared attribute self.{mutation.attr} "
                                f"outside a `with <lock>` block "
                                f"(class locks: {locks})"
                            ),
                        )
                    )
            for acquisition in method.acquisitions:
                for held in acquisition.held | base:
                    self._edge(
                        info, held, acquisition.lock, file.rel, acquisition.line
                    )
            for call in method.calls:
                for target in acquires.get(call.callee, frozenset()):
                    for held in call.held | base:
                        self._edge(info, held, target, file.rel, call.line)
        return findings

    def _edge(
        self, info: _ClassInfo, src: str, dst: str, rel: str, line: int
    ) -> None:
        if src == dst:
            return  # re-entrant acquisition; RLocks make this legal
        key = (f"{info.name}.{src}", f"{info.name}.{dst}")
        self._edges.setdefault(key, (rel, line))


# ----------------------------------------------------------------------
# class scanning
# ----------------------------------------------------------------------
def _scan_class(node: ast.ClassDef, rel: str) -> Optional[_ClassInfo]:
    """Scan one class; None when it is not lock-disciplined."""
    methods = {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    lock_attrs = _find_lock_attrs(methods.values())
    docstring = ast.get_docstring(node) or ""
    if not lock_attrs and "thread-safe" not in docstring.lower():
        return None
    infos: Dict[str, _MethodInfo] = {}
    for name, method in methods.items():
        if name in CONSTRUCTION_METHODS:
            continue
        info = _MethodInfo()
        for statement in method.body:
            _scan(statement, frozenset(), lock_attrs, info)
        infos[name] = info
    return _ClassInfo(
        name=node.name,
        rel=rel,
        line=node.lineno,
        lock_attrs=lock_attrs,
        methods=infos,
    )


def _find_lock_attrs(
    methods: "Iterable[ast.AST]",
) -> FrozenSet[str]:
    """``self._x`` attributes assigned a ``Lock()`` / ``RLock()``."""
    attrs: Set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            name = dotted_name(value.func)
            if name is None or name.split(".")[-1] not in ("Lock", "RLock"):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is not None and attr.startswith("_"):
                    attrs.add(attr)
    return frozenset(attrs)


def _scan(
    node: ast.AST,
    held: FrozenSet[str],
    lock_attrs: FrozenSet[str],
    info: _MethodInfo,
) -> None:
    """Walk a method body tracking the set of lexically held locks."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: Set[str] = set()
        for item in node.items:
            _scan(item.context_expr, held, lock_attrs, info)
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in lock_attrs:
                info.acquisitions.append(
                    _Acquisition(lock=attr, line=node.lineno, held=held)
                )
                acquired.add(attr)
        inner = held | acquired
        for statement in node.body:
            _scan(statement, inner, lock_attrs, info)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # A nested callable may run later, on another thread, without
        # the enclosing locks: analyse it with an empty held set.
        body = node.body if isinstance(node.body, list) else [node.body]
        for statement in body:
            _scan(statement, frozenset(), lock_attrs, info)
        return

    _record_events(node, held, info)
    for child in ast.iter_child_nodes(node):
        _scan(child, held, lock_attrs, info)


def _record_events(
    node: ast.AST, held: FrozenSet[str], info: _MethodInfo
) -> None:
    """Mutation and intra-class call events for one node."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            _record_target(target, node.lineno, held, info)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        _record_target(node.target, node.lineno, held, info)
    elif isinstance(node, ast.AugAssign):
        _record_target(node.target, node.lineno, held, info)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            _record_target(target, node.lineno, held, info)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        if node.func.attr in MUTATING_METHODS:
            attr = _shared_attr(receiver)
            if attr is not None:
                info.mutations.append(
                    _Mutation(attr=attr, line=node.lineno, held=held)
                )
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
        ):
            info.calls.append(
                _CallSite(
                    callee=node.func.attr, line=node.lineno, held=held
                )
            )


def _record_target(
    target: ast.expr, line: int, held: FrozenSet[str], info: _MethodInfo
) -> None:
    """Register assignment/delete targets that hit shared attributes."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _record_target(element, line, held, info)
        return
    if isinstance(target, ast.Starred):
        _record_target(target.value, line, held, info)
        return
    attr = _shared_attr(target)
    if attr is not None:
        info.mutations.append(_Mutation(attr=attr, line=line, held=held))


def _shared_attr(node: ast.expr) -> Optional[str]:
    """The ``_x`` of ``self._x`` / ``self._x[...]`` targets, else None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr is not None and attr.startswith("_"):
        return attr
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """The attribute name of a plain ``self.<attr>`` expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ----------------------------------------------------------------------
# fixpoints over the intra-class call graph
# ----------------------------------------------------------------------
def _is_private(name: str) -> bool:
    """Private helpers (never dunders) can inherit callers' locks."""
    return name.startswith("_") and not name.startswith("__")


def _guaranteed_held(info: _ClassInfo) -> Dict[str, FrozenSet[str]]:
    """Locks provably held on *every* entry to each method.

    Public methods (and dunders) are callable from outside, so they
    guarantee nothing.  A private helper is guaranteed the intersection
    over all intra-class call sites of (lexically held at the site,
    plus the caller's own guarantee) -- computed as a decreasing
    fixpoint starting from "all locks".
    """
    callers: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for method_name, method in info.methods.items():
        for call in method.calls:
            if call.callee in info.methods:
                callers.setdefault(call.callee, []).append(
                    (method_name, call.held)
                )
    guaranteed: Dict[str, FrozenSet[str]] = {}
    for name in info.methods:
        if _is_private(name) and callers.get(name):
            guaranteed[name] = info.lock_attrs
        else:
            guaranteed[name] = frozenset()
    for _ in range(len(info.methods) + 1):
        changed = False
        for name in info.methods:
            if not (_is_private(name) and callers.get(name)):
                continue
            sites = [
                held | guaranteed[caller]
                for caller, held in callers[name]
            ]
            value: FrozenSet[str] = frozenset.intersection(*sites)
            if value != guaranteed[name]:
                guaranteed[name] = value
                changed = True
        if not changed:
            break
    return guaranteed


def _acquires_closure(info: _ClassInfo) -> Dict[str, FrozenSet[str]]:
    """Locks each method may acquire, directly or through callees."""
    acquires: Dict[str, FrozenSet[str]] = {
        name: frozenset(a.lock for a in method.acquisitions)
        for name, method in info.methods.items()
    }
    for _ in range(len(info.methods) + 1):
        changed = False
        for name, method in info.methods.items():
            value = acquires[name]
            for call in method.calls:
                value = value | acquires.get(call.callee, frozenset())
            if value != acquires[name]:
                acquires[name] = value
                changed = True
        if not changed:
            break
    return acquires


# ----------------------------------------------------------------------
# cycle detection
# ----------------------------------------------------------------------
def _find_cycles(edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Elementary cycles of the acquisition graph, deterministically.

    Tarjan SCC; every component with more than one node is reported as
    one cycle (listed in a stable order starting from its smallest
    node).  Self-loops never occur -- re-entrant acquisitions are
    filtered at edge-recording time.
    """
    graph: Dict[str, List[str]] = {}
    for src, dst in sorted(edges):
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])

    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for successor in graph[node]:
            if successor not in index:
                strongconnect(successor)
                low[node] = min(low[node], low[successor])
            elif successor in on_stack:
                low[node] = min(low[node], index[successor])
        if low[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    cycles: List[List[str]] = []
    for component in components:
        start = min(component)
        ordered = sorted(component)
        ordered.remove(start)
        cycles.append([start, *ordered])
    return sorted(cycles)
